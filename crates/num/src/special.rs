//! Special functions: error function, log-gamma, regularized incomplete
//! gamma, and the inverse standard-normal CDF.
//!
//! These are the primitives behind the normal, χ²/gamma and Weibull
//! distributions used throughout the reliability analysis.

use crate::{NumError, Result};

/// The error function `erf(x)`.
///
/// Implemented via [`erfc`] for large `|x|` and a Maclaurin series for small
/// `|x|`; absolute error below `1e-14` over the real line.
///
/// # Example
///
/// ```
/// use statobd_num::special::erf;
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < 3.0 {
        // Maclaurin series: erf(x) = 2/√π Σ (−1)ⁿ x^(2n+1) / (n!(2n+1)).
        // Alternating-series cancellation costs at most ~3 digits at x = 3,
        // comfortably inside the 1e-13 budget.
        let two_over_sqrt_pi = std::f64::consts::FRAC_2_SQRT_PI;
        let x2 = x * x;
        let mut term = x;
        let mut sum = x;
        for n in 1..200u32 {
            term *= -x2 / n as f64;
            let contrib = term / (2 * n + 1) as f64;
            sum += contrib;
            if contrib.abs() <= 1e-17 * sum.abs() {
                break;
            }
        }
        two_over_sqrt_pi * sum
    } else {
        1.0 - erfc(x)
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Uses a continued-fraction expansion for `x ≥ 0.5` which stays accurate
/// deep into the tail (needed for failure probabilities at the 10⁻⁶ level
/// and beyond).
pub fn erfc(x: f64) -> f64 {
    if x < 3.0 {
        return if x < -6.0 { 2.0 } else { 1.0 - erf(x) };
    }
    // erfc(x) = exp(−x²)/√π · 1/(x + 1/2/(x + 1/(x + 3/2/(x + ...))))
    // Evaluate the continued fraction bottom-up with a fixed depth chosen
    // for f64 accuracy at x ≥ 3.
    let depth = 60;
    let mut f = 0.0;
    for k in (1..=depth).rev() {
        f = 0.5 * k as f64 / (x + f);
    }
    let sqrt_pi = 1.772_453_850_905_516_f64;
    (-x * x).exp() / (sqrt_pi * (x + f))
}

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation (g = 7, 9 coefficients); relative error below
/// `1e-13` for the shapes the χ² approximation produces.
///
/// # Panics
///
/// Panics if `x ≤ 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let xm1 = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (xm1 + i as f64);
    }
    let t = xm1 + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (xm1 + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a,x)/Γ(a)`.
///
/// `P(k/2, x/2)` is the CDF of a χ² distribution with `k` degrees of
/// freedom — exactly what the Yuan–Bentler approximation of the BLOD sample
/// variance needs.
///
/// # Errors
///
/// Returns [`NumError::Domain`] if `a ≤ 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || x < 0.0 || !a.is_finite() || !x.is_finite() {
        return Err(NumError::Domain {
            detail: format!("gamma_p requires a > 0 and x >= 0, got a={a}, x={x}"),
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        Ok(gamma_p_series(a, x))
    } else {
        Ok(1.0 - gamma_q_cf(a, x))
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`,
/// computed directly for tail accuracy.
///
/// # Errors
///
/// Returns [`NumError::Domain`] if `a ≤ 0` or `x < 0`.
pub fn gamma_q(a: f64, x: f64) -> Result<f64> {
    if a <= 0.0 || x < 0.0 || !a.is_finite() || !x.is_finite() {
        return Err(NumError::Domain {
            detail: format!("gamma_q requires a > 0 and x >= 0, got a={a}, x={x}"),
        });
    }
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_p_series(a, x))
    } else {
        Ok(gamma_q_cf(a, x))
    }
}

/// Series expansion of P(a,x), converges fast for x < a+1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let ln_prefix = a * x.ln() - x - ln_gamma(a);
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    (ln_prefix.exp() * sum).clamp(0.0, 1.0)
}

/// Lentz continued fraction for Q(a,x), converges fast for x ≥ a+1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let ln_prefix = a * x.ln() - x - ln_gamma(a);
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (ln_prefix.exp() * h).clamp(0.0, 1.0)
}

/// Inverse of the regularized lower incomplete gamma: solves `P(a, x) = p`.
///
/// Wilson–Hilferty starting guess refined by Newton iterations on `P`.
///
/// # Errors
///
/// Returns [`NumError::Domain`] if `a ≤ 0` or `p ∉ [0, 1)`.
pub fn gamma_p_inv(a: f64, p: f64) -> Result<f64> {
    if a <= 0.0 || !(0.0..1.0).contains(&p) {
        return Err(NumError::Domain {
            detail: format!("gamma_p_inv requires a > 0 and 0 <= p < 1, got a={a}, p={p}"),
        });
    }
    if p == 0.0 {
        return Ok(0.0);
    }
    // Wilson–Hilferty starting guess: x ≈ a (1 − 1/(9a) + z √(1/(9a)))³.
    let z = norm_inv_cdf(p)?;
    let t = 1.0 - 1.0 / (9.0 * a) + z * (1.0 / (9.0 * a)).sqrt();
    let guess = (a * t * t * t).max(1e-280);

    // Bracket the root: P(a, ·) is strictly increasing on (0, ∞).
    let mut lo = guess;
    let mut hi = guess;
    while gamma_p(a, lo)? > p && lo > 1e-290 {
        lo *= 0.0625;
    }
    while gamma_p(a, hi)? < p && hi < 1e12 {
        hi *= 4.0;
    }

    // Bisection in log-space (robust across the huge dynamic range that a
    // small shape produces), then Newton polish for the last digits.
    let mut ln_lo = lo.ln();
    let mut ln_hi = hi.ln();
    for _ in 0..200 {
        let ln_mid = 0.5 * (ln_lo + ln_hi);
        if gamma_p(a, ln_mid.exp())? < p {
            ln_lo = ln_mid;
        } else {
            ln_hi = ln_mid;
        }
        if ln_hi - ln_lo < 1e-13 {
            break;
        }
    }
    let mut x = (0.5 * (ln_lo + ln_hi)).exp();
    for _ in 0..4 {
        let f = gamma_p(a, x)? - p;
        let ln_pdf = (a - 1.0) * x.ln() - x - ln_gamma(a);
        let pdf = ln_pdf.exp();
        if !(pdf > 0.0) {
            break;
        }
        let x_new = x - f / pdf;
        if x_new > 0.0 && x_new.is_finite() {
            x = x_new;
        } else {
            break;
        }
    }
    Ok(x)
}

/// How often [`scaled_exp_grid`] re-anchors the geometric recurrence with
/// an exact `exp` evaluation.
const EXP_GRID_RESYNC: usize = 32;

/// Fills `out[k·stride]` for `k in 0..n` with
/// `scale · exp(rate · (x0 + k·step))` using the geometric recurrence
/// `w[k+1] = w[k] · exp(rate·step)` — one `exp` per [`EXP_GRID_RESYNC`]
/// grid points instead of one per point.
///
/// The recurrence is re-anchored against multiplicative drift every
/// [`EXP_GRID_RESYNC`] points, bounding the relative error at
/// `≈ EXP_GRID_RESYNC · ε ≈ 7e-15` — far below the discretization error
/// of any histogram the grid weights.
///
/// The `stride` parameter lets callers fill interleaved layouts (e.g.
/// `[bin][time]` weight tables) without a transpose; the same
/// `(scale, rate, x0, step)` always yields bit-identical values at every
/// `k` regardless of `stride`.
///
/// At lane widths > 1 (see [`crate::simd`]) the resync anchors are
/// batched through one vectorized [`crate::simd::exp_slice`] call per
/// fill instead of one scalar `exp` per resync block; at width 1 the
/// historical scalar recurrence runs verbatim (bit-identical to previous
/// releases). Both paths keep the stride-independence guarantee.
///
/// # Panics
///
/// Panics if `stride == 0` or `out` is too short for `n` strided writes.
///
/// # Example
///
/// ```
/// use statobd_num::special::scaled_exp_grid;
/// let mut w = vec![0.0; 4];
/// scaled_exp_grid(2.0, 0.5, 1.0, 0.25, 4, &mut w, 1);
/// assert!((w[0] - 2.0 * (0.5f64).exp()).abs() < 1e-14);
/// assert!((w[3] - 2.0 * (0.5f64 * 1.75).exp()).abs() < 1e-14);
/// ```
pub fn scaled_exp_grid(
    scale: f64,
    rate: f64,
    x0: f64,
    step: f64,
    n: usize,
    out: &mut [f64],
    stride: usize,
) {
    assert!(stride > 0, "stride must be positive");
    if n == 0 {
        return;
    }
    assert!(
        out.len() > (n - 1) * stride,
        "output too short: {} slots for {n} strided writes",
        out.len()
    );
    if crate::simd::active_width() == crate::simd::LaneWidth::W1 {
        let ratio = (rate * step).exp();
        let mut w = 0.0;
        for k in 0..n {
            if k % EXP_GRID_RESYNC == 0 {
                w = scale * (rate * (x0 + k as f64 * step)).exp();
            } else {
                w *= ratio;
            }
            out[k * stride] = w;
        }
        return;
    }

    // Lane path: evaluate every resync anchor with one vectorized exp
    // call, then run the geometric recurrence within each block. Values
    // are computed before the strided writes, preserving stride
    // independence.
    let ratio = (rate * step).exp();
    let n_anchor = n.div_ceil(EXP_GRID_RESYNC);
    let args: Vec<f64> = (0..n_anchor)
        .map(|m| rate * (x0 + (m * EXP_GRID_RESYNC) as f64 * step))
        .collect();
    let mut anchors = vec![0.0; n_anchor];
    crate::simd::exp_slice(&args, &mut anchors);
    for (m, &anchor) in anchors.iter().enumerate() {
        let k0 = m * EXP_GRID_RESYNC;
        let k_end = n.min(k0 + EXP_GRID_RESYNC);
        let mut w = scale * anchor;
        out[k0 * stride] = w;
        for k in k0 + 1..k_end {
            w *= ratio;
            out[k * stride] = w;
        }
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal probability density function `φ(x)`.
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse standard normal CDF `Φ⁻¹(p)` (the probit function).
///
/// Acklam's rational approximation refined by one Halley step; absolute
/// error below `1e-13` across `(0, 1)`.
///
/// # Errors
///
/// Returns [`NumError::Domain`] unless `0 < p < 1`.
pub fn norm_inv_cdf(p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) || p == 0.0 || p == 1.0 {
        return Err(NumError::Domain {
            detail: format!("norm_inv_cdf requires 0 < p < 1, got {p}"),
        });
    }
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn scaled_exp_grid_matches_direct_exp() {
        // 400 points spanning many decades of weight: the recurrence must
        // stay within ~resync·ε of the direct evaluation everywhere.
        let (scale, rate, x0, step, n) = (3.7e-4, -5.1, 2.05, 7.3e-4, 400);
        let mut w = vec![0.0; n];
        scaled_exp_grid(scale, rate, x0, step, n, &mut w, 1);
        for (k, &got) in w.iter().enumerate() {
            let exact = scale * (rate * (x0 + k as f64 * step)).exp();
            assert!(
                ((got - exact) / exact).abs() < 1e-13,
                "k={k}: {got:e} vs {exact:e}"
            );
        }
    }

    #[test]
    fn scaled_exp_grid_stride_is_bit_identical_to_dense() {
        let (scale, rate, x0, step, n) = (1.25, 0.83, -1.0, 0.01, 100);
        let mut dense = vec![0.0; n];
        scaled_exp_grid(scale, rate, x0, step, n, &mut dense, 1);
        let stride = 7;
        let mut strided = vec![f64::NAN; (n - 1) * stride + 1];
        scaled_exp_grid(scale, rate, x0, step, n, &mut strided, stride);
        for k in 0..n {
            assert_eq!(dense[k].to_bits(), strided[k * stride].to_bits(), "k={k}");
        }
    }

    #[test]
    fn scaled_exp_grid_handles_empty_and_single() {
        let mut none: Vec<f64> = vec![];
        scaled_exp_grid(1.0, 1.0, 0.0, 1.0, 0, &mut none, 3);
        let mut one = vec![0.0];
        scaled_exp_grid(2.0, 0.0, 5.0, 1.0, 1, &mut one, 1);
        assert_eq!(one[0], 2.0);
    }

    #[test]
    #[should_panic(expected = "output too short")]
    fn scaled_exp_grid_rejects_short_output() {
        let mut w = vec![0.0; 3];
        scaled_exp_grid(1.0, 1.0, 0.0, 1.0, 4, &mut w, 1);
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun.
        assert_close(erf(0.5), 0.520_499_877_813_046_5, 1e-13);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-13);
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-13);
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 1e-13);
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(3) = 2.209049699858544e-5, erfc(5) = 1.5374597944280351e-12.
        assert_close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-18);
        let rel = (erfc(5.0) - 1.537_459_794_428_035e-12).abs() / 1.54e-12;
        assert!(rel < 1e-10, "relative error {rel}");
    }

    #[test]
    fn erf_erfc_complementarity() {
        for &x in &[0.1, 0.7, 1.3, 2.4, 4.0] {
            assert_close(erf(x) + erfc(x), 1.0, 1e-14);
        }
    }

    #[test]
    fn ln_gamma_reference_values() {
        assert_close(ln_gamma(1.0), 0.0, 1e-13);
        assert_close(ln_gamma(2.0), 0.0, 1e-13);
        assert_close(ln_gamma(5.0), 24.0f64.ln(), 1e-12);
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-13);
        // Γ(10) = 362880
        assert_close(ln_gamma(10.0), 362_880.0f64.ln(), 1e-11);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // ln Γ(x+1) = ln x + ln Γ(x).
        for &x in &[0.3, 1.7, 4.2, 11.5, 60.0] {
            assert_close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-11);
        }
    }

    #[test]
    fn gamma_p_chi2_reference() {
        // χ²(k=2) CDF at x: 1 − exp(−x/2).
        for &x in &[0.5, 1.0, 3.0, 8.0] {
            let p = gamma_p(1.0, x / 2.0).unwrap();
            assert_close(p, 1.0 - (-x / 2.0f64).exp(), 1e-13);
        }
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.1, 1.0, 5.0, 30.0, 100.0] {
                let p = gamma_p(a, x).unwrap();
                let q = gamma_q(a, x).unwrap();
                assert_close(p + q, 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn gamma_p_domain_errors() {
        assert!(gamma_p(0.0, 1.0).is_err());
        assert!(gamma_p(1.0, -1.0).is_err());
        assert!(gamma_q(-2.0, 1.0).is_err());
    }

    #[test]
    fn gamma_p_inv_round_trip() {
        for &a in &[0.5, 1.0, 3.7, 20.0] {
            for &p in &[1e-6, 0.01, 0.5, 0.99, 1.0 - 1e-9] {
                let x = gamma_p_inv(a, p).unwrap();
                let p_back = gamma_p(a, x).unwrap();
                assert_close(p_back, p, 1e-9);
            }
        }
    }

    #[test]
    fn norm_cdf_reference() {
        assert_close(norm_cdf(0.0), 0.5, 1e-15);
        assert_close(norm_cdf(1.0), 0.841_344_746_068_542_9, 1e-13);
        assert_close(norm_cdf(-1.959_963_984_540_054), 0.025, 1e-12);
    }

    #[test]
    fn norm_inv_cdf_round_trip() {
        for &p in &[1e-9, 1e-6, 0.025, 0.5, 0.975, 1.0 - 1e-6] {
            let x = norm_inv_cdf(p).unwrap();
            assert_close(norm_cdf(x), p, 1e-12 + 1e-9 * p);
        }
    }

    #[test]
    fn norm_inv_cdf_rejects_bounds() {
        assert!(norm_inv_cdf(0.0).is_err());
        assert!(norm_inv_cdf(1.0).is_err());
        assert!(norm_inv_cdf(-0.1).is_err());
    }

    #[test]
    fn norm_pdf_integrates_to_cdf_slope() {
        // Finite-difference check of d/dx norm_cdf = norm_pdf.
        for &x in &[-2.0, -0.5, 0.0, 1.0, 2.5] {
            let h = 1e-6;
            let slope = (norm_cdf(x + h) - norm_cdf(x - h)) / (2.0 * h);
            assert_close(slope, norm_pdf(x), 1e-8);
        }
    }
}
