//! Chunked parallel map/reduce on scoped threads.
//!
//! All fan-out in the workspace funnels through this module: per-chip
//! Monte-Carlo sampling, per-block quadrature construction, hybrid table
//! builds and the thermal solver's per-cell sweeps. Two properties are
//! deliberate:
//!
//! * **Deterministic results at any thread count.** Work items are
//!   identified by their index; outputs are gathered back into index order
//!   before any reduction, so sums are evaluated in the same order whether
//!   the work ran on one thread or sixteen.
//! * **No spawn below the crossover.** With one resolved thread (or one
//!   work item) everything degrades to a plain serial loop with zero
//!   threading overhead.
//!
//! Thread counts resolve as: explicit request → `STATOBD_THREADS`
//! environment variable → `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves an optional thread-count request against the environment.
///
/// Precedence: `requested` (clamped to ≥ 1), then the `STATOBD_THREADS`
/// environment variable, then the machine's available parallelism.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(text) = std::env::var("STATOBD_THREADS") {
        if let Ok(n) = text.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Evaluates `f(0..n)` across `threads` workers, returning results in
/// index order.
///
/// Workers pull indices from a shared counter (dynamic load balancing), so
/// the schedule varies run to run — but the returned `Vec` is always
/// `[f(0), f(1), …, f(n-1)]`, making any subsequent fold deterministic.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut pairs: Vec<(usize, T)> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            pairs.extend(handle.join().expect("parallel worker panicked"));
        }
    });
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, v)| v).collect()
}

/// Sums `f(i)` over `0..n`, always in index order.
///
/// Floating-point addition is not associative; folding the per-index terms
/// in index order keeps the sum bit-identical at any thread count.
pub fn sum_indexed<F>(n: usize, threads: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    run_indexed(n, threads, f).into_iter().sum()
}

/// Runs `f(chunk_index, chunk)` over `chunk_len`-sized chunks of `data`
/// across `threads` workers.
///
/// Chunk boundaries depend only on `chunk_len`, never on the thread count;
/// callers seed any randomness from the chunk (or derived item) index so
/// the chunk contents are schedule-independent.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let workers = threads.max(1).min(data.len().div_ceil(chunk_len).max(1));
    if workers <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let queue = Mutex::new(data.chunks_mut(chunk_len).enumerate());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let item = queue.lock().expect("chunk queue poisoned").next();
                match item {
                    Some((i, chunk)) => f(i, chunk),
                    None => break,
                }
            });
        }
    });
}

/// Like [`for_each_chunk_mut`] but advances two slices in lock-step:
/// `f(chunk_index, a_chunk, b_chunk)` where chunk `i` covers items
/// `[i · per_chunk, (i+1) · per_chunk)` scaled by each slice's stride.
///
/// This serves consumers that maintain parallel arrays for the same work
/// items (e.g. per-chip failure counts plus per-chip diagnostics).
pub fn for_each_chunk_pair_mut<A, B, F>(
    a: &mut [A],
    stride_a: usize,
    b: &mut [B],
    stride_b: usize,
    per_chunk: usize,
    threads: usize,
    f: F,
) where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert!(per_chunk > 0, "per_chunk must be positive");
    assert!(stride_a > 0 && stride_b > 0, "strides must be positive");
    debug_assert_eq!(a.len() % stride_a, 0);
    debug_assert_eq!(b.len() % stride_b, 0);
    debug_assert_eq!(a.len() / stride_a, b.len() / stride_b);
    let n_chunks = (a.len() / stride_a).div_ceil(per_chunk).max(1);
    let workers = threads.max(1).min(n_chunks);
    if workers <= 1 {
        for (i, (ca, cb)) in a
            .chunks_mut(per_chunk * stride_a)
            .zip(b.chunks_mut(per_chunk * stride_b))
            .enumerate()
        {
            f(i, ca, cb);
        }
        return;
    }
    let queue = Mutex::new(
        a.chunks_mut(per_chunk * stride_a)
            .zip(b.chunks_mut(per_chunk * stride_b))
            .enumerate(),
    );
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let item = queue.lock().expect("chunk queue poisoned").next();
                match item {
                    Some((i, (ca, cb))) => f(i, ca, cb),
                    None => break,
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_preserves_order() {
        for threads in [1, 2, 3, 8] {
            let out = run_indexed(100, threads, |i| i * i);
            assert_eq!(out.len(), 100);
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, i * i, "threads={threads}");
            }
        }
    }

    #[test]
    fn run_indexed_handles_empty_and_single() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn sum_is_bit_identical_across_thread_counts() {
        // Terms of wildly different magnitude expose any reordering.
        let term = |i: usize| (10f64).powi((i % 30) as i32 - 15) * ((i * 2654435761) as f64);
        let reference = sum_indexed(1000, 1, term);
        for threads in [2, 3, 4, 8, 16] {
            let got = sum_indexed(1000, threads, term);
            assert_eq!(got.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn chunked_mutation_touches_every_element_once() {
        for threads in [1, 2, 5] {
            let mut data = vec![0u64; 103];
            for_each_chunk_mut(&mut data, 10, threads, |chunk_idx, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    *v += (chunk_idx * 10 + j) as u64 + 1;
                }
            });
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(v, i as u64 + 1, "threads={threads}");
            }
        }
    }

    #[test]
    fn paired_chunks_stay_in_lockstep() {
        for threads in [1, 2, 4, 8] {
            // 10 items, stride 3 in `a`, stride 2 in `b`, 4 items per chunk.
            let mut a = vec![0usize; 30];
            let mut b = vec![0usize; 20];
            for_each_chunk_pair_mut(&mut a, 3, &mut b, 2, 4, threads, |chunk_idx, ca, cb| {
                assert_eq!(ca.len() / 3, cb.len() / 2);
                for v in ca.iter_mut() {
                    *v = chunk_idx + 1;
                }
                for v in cb.iter_mut() {
                    *v = chunk_idx + 1;
                }
            });
            assert_eq!(&a[..12], &[1; 12]);
            assert_eq!(&a[12..24], &[2; 12]);
            assert_eq!(&a[24..], &[3; 6]);
            assert_eq!(&b[..8], &[1; 8]);
            assert_eq!(&b[8..16], &[2; 8]);
            assert_eq!(&b[16..], &[3; 4]);
        }
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }
}
