//! Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//!
//! The spatial-correlation matrices used by the variation model are dense,
//! symmetric and at most a few hundred rows (one per correlation grid), which
//! is squarely in the regime where Jacobi is simple, numerically excellent
//! (it computes small eigenvalues to high relative accuracy — important
//! because principal components with tiny variance are truncated) and fast
//! enough.

use crate::matrix::DMatrix;
use crate::{NumError, Result};

/// Result of a symmetric eigendecomposition `A = V · diag(λ) · Vᵀ`.
///
/// Eigenvalues are sorted in **descending** order; column `k` of the
/// eigenvector matrix corresponds to eigenvalue `k`. This matches the
/// principal-component convention where the first component explains the
/// most variance.
///
/// # Example
///
/// ```
/// use statobd_num::matrix::DMatrix;
/// use statobd_num::eigen::SymmetricEigen;
///
/// let a = DMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.0]]);
/// let e = SymmetricEigen::new(&a)?;
/// assert_eq!(e.eigenvalues(), &[2.0, 1.0]);
/// # Ok::<(), statobd_num::NumError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    /// Column `k` is the eigenvector for `eigenvalues[k]`.
    eigenvectors: DMatrix,
}

impl SymmetricEigen {
    /// Default tolerance on the off-diagonal Frobenius norm, relative to the
    /// matrix norm.
    pub const DEFAULT_TOL: f64 = 1e-12;

    /// Maximum number of Jacobi sweeps before reporting non-convergence.
    pub const MAX_SWEEPS: usize = 64;

    /// Computes the eigendecomposition of a symmetric matrix.
    ///
    /// # Errors
    ///
    /// * [`NumError::NotSymmetric`] if `a` is not symmetric to `1e-8`
    ///   relative tolerance,
    /// * [`NumError::NoConvergence`] if the Jacobi sweeps do not converge
    ///   (does not occur for finite symmetric input in practice).
    pub fn new(a: &DMatrix) -> Result<Self> {
        let scale = a.frobenius_norm().max(1.0);
        if !a.is_symmetric(1e-8 * scale) {
            return Err(NumError::NotSymmetric);
        }
        Self::decompose(a, Self::DEFAULT_TOL)
    }

    /// Matrices at least this large use the parallel round-robin rotation
    /// ordering; below it the thread fan-out costs more than it saves.
    pub const PARALLEL_MIN_DIM: usize = 64;

    fn decompose(a: &DMatrix, tol: f64) -> Result<Self> {
        let n = a.nrows();
        let mut m = a.clone();
        // Symmetrize exactly so rounding asymmetry cannot accumulate.
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
                m[(i, j)] = avg;
                m[(j, i)] = avg;
            }
        }
        let mut v = DMatrix::identity(n);
        let norm = m.frobenius_norm().max(f64::MIN_POSITIVE);
        let threshold = tol * norm;

        let threads = crate::parallel::resolve_threads(None);
        if n >= Self::PARALLEL_MIN_DIM && threads > 1 {
            Self::sweep_round_robin(&mut m, &mut v, threshold, threads)?;
        } else {
            Self::sweep_cyclic(&mut m, &mut v, threshold)?;
        }

        // Extract and sort (descending by eigenvalue).
        let mut order: Vec<usize> = (0..n).collect();
        let eigenvalues_raw: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        order.sort_by(|&i, &j| {
            eigenvalues_raw[j]
                .partial_cmp(&eigenvalues_raw[i])
                .expect("eigenvalues are finite")
        });
        let eigenvalues: Vec<f64> = order.iter().map(|&i| eigenvalues_raw[i]).collect();
        let eigenvectors = DMatrix::from_fn(n, n, |i, k| v[(i, order[k])]);

        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// The classic sequential cyclic-by-row ordering.
    fn sweep_cyclic(m: &mut DMatrix, v: &mut DMatrix, threshold: f64) -> Result<()> {
        let n = m.nrows();
        let mut sweeps = 0;
        loop {
            let off = off_diagonal_norm(m);
            if off <= threshold {
                return Ok(());
            }
            if sweeps >= Self::MAX_SWEEPS {
                return Err(NumError::NoConvergence {
                    iterations: sweeps,
                    residual: off,
                });
            }
            sweeps += 1;
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= threshold / (n as f64) {
                        continue;
                    }
                    let (c, s) = jacobi_rotation(m[(p, p)], m[(q, q)], apq);
                    apply_rotation(m, v, p, q, c, s);
                }
            }
        }
    }

    /// Parallel rotation ordering: a round-robin tournament schedule makes
    /// each round a set of ⌊n/2⌋ *disjoint* pivot pairs. Disjoint
    /// rotations commute, so the round's combined rotation `J` applies in
    /// two parallel passes — columns (`M·J`), then, via the transpose of
    /// the symmetric intermediate, rows (`Jᵀ·M·J`) — with every pass a
    /// data-parallel per-row update. Rounds, pair order, and chunk
    /// boundaries are all fixed, so the decomposition is identical at any
    /// thread count.
    fn sweep_round_robin(
        m: &mut DMatrix,
        v: &mut DMatrix,
        threshold: f64,
        threads: usize,
    ) -> Result<()> {
        let n = m.nrows();
        // Pad to even; the extra slot is a bye the pairing skips.
        let n_slots = n + n % 2;
        let mut sweeps = 0;
        loop {
            let off = off_diagonal_norm(m);
            if off <= threshold {
                return Ok(());
            }
            if sweeps >= Self::MAX_SWEEPS {
                return Err(NumError::NoConvergence {
                    iterations: sweeps,
                    residual: off,
                });
            }
            sweeps += 1;
            let mut slots: Vec<usize> = (0..n_slots).collect();
            for _round in 0..n_slots - 1 {
                // Pivot angles come from the round-start matrix; the
                // entries they read are untouched by the round's other
                // (disjoint) rotations, so this matches applying the
                // round sequentially.
                let mut rots: Vec<(usize, usize, f64, f64)> = Vec::with_capacity(n_slots / 2);
                for i in 0..n_slots / 2 {
                    let (mut p, mut q) = (slots[i], slots[n_slots - 1 - i]);
                    if p > q {
                        std::mem::swap(&mut p, &mut q);
                    }
                    if q >= n {
                        continue;
                    }
                    let apq = m[(p, q)];
                    if apq.abs() <= threshold / (n as f64) {
                        continue;
                    }
                    let (c, s) = jacobi_rotation(m[(p, p)], m[(q, q)], apq);
                    rots.push((p, q, c, s));
                }
                if !rots.is_empty() {
                    apply_round_columns(m, &rots, threads);
                    *m = m.transpose();
                    apply_round_columns(m, &rots, threads);
                    apply_round_columns(v, &rots, threads);
                }
                slots[1..].rotate_right(1);
            }
            // The transpose trick assumes bit-symmetry; restore it so
            // rounding asymmetry cannot accumulate across sweeps.
            for i in 0..n {
                for j in (i + 1)..n {
                    let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
                    m[(i, j)] = avg;
                    m[(j, i)] = avg;
                }
            }
        }
    }

    /// Eigenvalues in descending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Orthonormal eigenvector matrix; column `k` pairs with eigenvalue `k`.
    pub fn eigenvectors(&self) -> &DMatrix {
        &self.eigenvectors
    }

    /// Reconstructs `V · diag(λ) · Vᵀ` (used by tests and sanity checks).
    pub fn reconstruct(&self) -> DMatrix {
        let n = self.eigenvalues.len();
        DMatrix::from_fn(n, n, |i, j| {
            (0..n)
                .map(|k| {
                    self.eigenvalues[k] * self.eigenvectors[(i, k)] * self.eigenvectors[(j, k)]
                })
                .sum()
        })
    }
}

/// Applies a round of disjoint column rotations (`M ← M·J`) with the rows
/// fanned out over threads (each row is touched only in columns `p`, `q`
/// of its own rotations, so rows are independent work items).
fn apply_round_columns(m: &mut DMatrix, rots: &[(usize, usize, f64, f64)], threads: usize) {
    let ncols = m.ncols();
    // 8 rows per chunk balances scheduling overhead against tail idling;
    // the boundaries depend only on the matrix size.
    let chunk_len = 8 * ncols;
    crate::parallel::for_each_chunk_mut(m.as_mut_slice(), chunk_len, threads, |_, chunk| {
        for row in chunk.chunks_mut(ncols) {
            for &(p, q, c, s) in rots {
                let rp = row[p];
                let rq = row[q];
                row[p] = c * rp - s * rq;
                row[q] = s * rp + c * rq;
            }
        }
    });
}

/// Frobenius norm of the strictly-off-diagonal part.
fn off_diagonal_norm(m: &DMatrix) -> f64 {
    let n = m.nrows();
    let mut acc = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            acc += 2.0 * m[(i, j)] * m[(i, j)];
        }
    }
    acc.sqrt()
}

/// Computes the (cos, sin) of the Jacobi rotation that annihilates `a_pq`.
fn jacobi_rotation(app: f64, aqq: f64, apq: f64) -> (f64, f64) {
    let theta = (aqq - app) / (2.0 * apq);
    // Choose the smaller-magnitude root for stability (Golub & Van Loan).
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    (c, t * c)
}

/// Applies the symmetric rotation `J(p,q,θ)ᵀ · M · J(p,q,θ)` in place and
/// accumulates the rotation into `V`.
fn apply_rotation(m: &mut DMatrix, v: &mut DMatrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.nrows();
    for k in 0..n {
        let mkp = m[(k, p)];
        let mkq = m[(k, q)];
        m[(k, p)] = c * mkp - s * mkq;
        m[(k, q)] = s * mkp + c * mkq;
    }
    for k in 0..n {
        let mpk = m[(p, k)];
        let mqk = m[(q, k)];
        m[(p, k)] = c * mpk - s * mqk;
        m[(q, k)] = s * mpk + c * mqk;
    }
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = DMatrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.eigenvalues(), &[3.0, 2.0, 1.0]);
    }

    #[test]
    fn two_by_two_known_values() {
        let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_close(e.eigenvalues()[0], 3.0, 1e-12);
        assert_close(e.eigenvalues()[1], 1.0, 1e-12);
    }

    #[test]
    fn rejects_asymmetric_input() {
        let a = DMatrix::from_rows(&[&[1.0, 0.5], &[0.0, 1.0]]);
        assert!(matches!(
            SymmetricEigen::new(&a),
            Err(NumError::NotSymmetric)
        ));
    }

    #[test]
    fn reconstruction_matches_original() {
        // Exponential-decay correlation matrix like the variation model uses.
        let n = 16;
        let a = DMatrix::from_fn(n, n, |i, j| (-((i as f64 - j as f64).abs()) / 4.0).exp());
        let e = SymmetricEigen::new(&a).unwrap();
        let r = e.reconstruct();
        for i in 0..n {
            for j in 0..n {
                assert_close(r[(i, j)], a[(i, j)], 1e-9);
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let n = 12;
        let a = DMatrix::from_fn(n, n, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = SymmetricEigen::new(&a).unwrap();
        let v = e.eigenvectors();
        let vtv = v.transpose().mul(v).unwrap();
        for i in 0..n {
            for j in 0..n {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_close(vtv[(i, j)], expected, 1e-10);
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let n = 20;
        let a = DMatrix::from_fn(n, n, |i, j| {
            (-((i % 5) as f64 - (j % 5) as f64).abs() / 2.0).exp()
                * (-((i / 5) as f64 - (j / 5) as f64).abs() / 2.0).exp()
        });
        let e = SymmetricEigen::new(&a).unwrap();
        let sum: f64 = e.eigenvalues().iter().sum();
        assert_close(sum, a.trace(), 1e-9);
    }

    #[test]
    fn parallel_path_matches_sequential_invariants() {
        // Large enough to take the round-robin path (when >1 core is
        // available); the sequential path must satisfy the same checks.
        let side = 9;
        let n = side * side;
        assert!(n >= SymmetricEigen::PARALLEL_MIN_DIM);
        let coord = |k: usize| ((k % side) as f64, (k / side) as f64);
        let a = DMatrix::from_fn(n, n, |i, j| {
            let (xi, yi) = coord(i);
            let (xj, yj) = coord(j);
            (-(((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()) / 3.0).exp()
        });
        let e = SymmetricEigen::new(&a).unwrap();
        // Reconstruction, orthonormality, trace, and PSD-ness.
        let r = e.reconstruct();
        for i in 0..n {
            for j in 0..n {
                assert_close(r[(i, j)], a[(i, j)], 1e-8);
            }
        }
        let v = e.eigenvectors();
        let vtv = v.transpose().mul(v).unwrap();
        for i in 0..n {
            for j in 0..n {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_close(vtv[(i, j)], expected, 1e-9);
            }
        }
        let sum: f64 = e.eigenvalues().iter().sum();
        assert_close(sum, a.trace(), 1e-8);
        for &l in e.eigenvalues() {
            assert!(l > -1e-8, "eigenvalue {l} should be non-negative");
        }
    }

    #[test]
    fn psd_correlation_matrix_has_nonnegative_eigenvalues() {
        // 2-D grid exponential correlation is positive semidefinite.
        let side = 6;
        let n = side * side;
        let coord = |k: usize| ((k % side) as f64, (k / side) as f64);
        let a = DMatrix::from_fn(n, n, |i, j| {
            let (xi, yi) = coord(i);
            let (xj, yj) = coord(j);
            let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
            (-d / 3.0).exp()
        });
        let e = SymmetricEigen::new(&a).unwrap();
        for &l in e.eigenvalues() {
            assert!(l > -1e-9, "eigenvalue {l} should be non-negative");
        }
    }
}
