//! Symmetric eigendecomposition with a tiered solver backend.
//!
//! The spatial-correlation matrices used by the variation model are dense
//! and symmetric, with sizes ranging from a few dozen rows (coarse grids,
//! BLOD Gram matrices) to a few thousand (fine grids). No single algorithm
//! is right across that range, so [`SymmetricEigen`] dispatches between
//! three backends through [`SpectralOptions`]:
//!
//! * **Jacobi** (cyclic / round-robin rotations, in this module) — simple
//!   and numerically excellent (small eigenvalues to high *relative*
//!   accuracy), but `O(n³)` per sweep with a large constant. The default
//!   for small matrices.
//! * **Tridiagonal QL** ([`crate::tridiag`]) — Householder reduction +
//!   implicit-shift QL. The full-spectrum workhorse from
//!   [`SymmetricEigen::JACOBI_MAX_DIM`] upward: same `O(n³)` class but a
//!   several-fold smaller constant and no sweep-count growth.
//! * **Lanczos** ([`crate::lanczos`]) — blocked Krylov top-k with full
//!   reorthogonalization. Used when the caller asks for a truncated
//!   spectrum (`energy_fraction < 1`) on a large matrix: only the retained
//!   components are ever computed.
//!
//! All three sort eigenvalues descending and agree to solver tolerance, so
//! consumers can switch freely; the truncation rule is shared
//! ([`crate::lanczos::filter_full_spectrum`]) so a partial solve retains
//! exactly the components a full solve + truncate would.

use crate::lanczos::{self, LanczosOptions, StopRule};
use crate::matrix::DMatrix;
use crate::tridiag::symmetric_eigen_ql;
use crate::{NumError, Result};

/// Which algorithm backs a spectral decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpectralSolver {
    /// Choose automatically from the matrix size and requested truncation:
    /// Jacobi below [`SymmetricEigen::JACOBI_MAX_DIM`], Lanczos for
    /// truncated spectra of large matrices, tridiagonal QL otherwise.
    Auto,
    /// Cyclic (sequential) or round-robin (parallel) Jacobi rotations.
    Jacobi,
    /// Householder tridiagonalization + implicit-shift QL.
    TridiagonalQl,
    /// Blocked Lanczos with full reorthogonalization (top-k only).
    Lanczos,
}

impl SpectralSolver {
    /// Stable lower-case name for logs, stats and benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            SpectralSolver::Auto => "auto",
            SpectralSolver::Jacobi => "jacobi",
            SpectralSolver::TridiagonalQl => "tridiagonal_ql",
            SpectralSolver::Lanczos => "lanczos",
        }
    }
}

/// How much of the spectrum to compute, with which backend, to what
/// accuracy.
///
/// The default ([`SpectralOptions::full`]) reproduces the historical
/// behaviour of [`SymmetricEigen::new`]: the complete spectrum, solver
/// chosen by size. [`SpectralOptions::energy`] requests a truncated
/// decomposition that stops once the retained eigenvalues capture the
/// given fraction of `trace(A)` — on large matrices this takes the
/// Lanczos path and never computes the discarded components.
///
/// # Example
///
/// ```
/// use statobd_num::matrix::DMatrix;
/// use statobd_num::eigen::{SpectralOptions, SymmetricEigen};
///
/// let a = DMatrix::from_fn(40, 40, |i, j| {
///     (-((i as f64 - j as f64).abs()) / 4.0).exp()
/// });
/// let e = SymmetricEigen::with_options(&a, &SpectralOptions::energy(0.95))?;
/// assert!(e.n_components() < 40);
/// let kept: f64 = e.eigenvalues().iter().sum();
/// assert!(kept >= 0.95 * a.trace());
/// # Ok::<(), statobd_num::NumError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SpectralOptions {
    /// Backend selection ([`SpectralSolver::Auto`] picks by size/truncation).
    pub solver: SpectralSolver,
    /// Retain leading eigenpairs until they capture this fraction of
    /// `trace(A)`; `1.0` keeps the complete spectrum.
    pub energy_fraction: f64,
    /// Hard cap on retained components (`None` = no cap).
    pub max_components: Option<usize>,
    /// Convergence tolerance, relative to the spectral scale: Jacobi
    /// off-diagonal norm, or Lanczos Ritz-pair residual.
    pub tol: f64,
    /// Worker threads for the parallel kernels (`None` = respect the
    /// `STATOBD_THREADS` environment override, defaulting to the available
    /// cores). Results are bit-identical at any thread count.
    pub threads: Option<usize>,
}

impl Default for SpectralOptions {
    fn default() -> Self {
        Self::full()
    }
}

impl SpectralOptions {
    /// Full spectrum, automatic solver — the [`SymmetricEigen::new`]
    /// behaviour.
    pub fn full() -> Self {
        SpectralOptions {
            solver: SpectralSolver::Auto,
            energy_fraction: 1.0,
            max_components: None,
            tol: SymmetricEigen::DEFAULT_TOL,
            threads: None,
        }
    }

    /// Truncated spectrum capturing `fraction` of the trace energy.
    pub fn energy(fraction: f64) -> Self {
        SpectralOptions {
            energy_fraction: fraction,
            ..Self::full()
        }
    }

    /// Forces a specific solver backend.
    pub fn with_solver(mut self, solver: SpectralSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Overrides the convergence tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Pins the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Caps the number of retained components.
    pub fn with_max_components(mut self, cap: usize) -> Self {
        self.max_components = Some(cap);
        self
    }

    /// Whether these options request less than the complete spectrum of an
    /// `n × n` matrix.
    pub fn wants_partial(&self, n: usize) -> bool {
        self.energy_fraction < 1.0 || self.max_components.is_some_and(|c| c < n)
    }

    fn validate(&self) -> Result<()> {
        if !(self.energy_fraction > 0.0 && self.energy_fraction <= 1.0) {
            return Err(NumError::Domain {
                detail: format!(
                    "energy fraction must be in (0, 1], got {}",
                    self.energy_fraction
                ),
            });
        }
        if !(self.tol > 0.0 && self.tol.is_finite()) {
            return Err(NumError::Domain {
                detail: format!(
                    "spectral tolerance must be positive and finite, got {}",
                    self.tol
                ),
            });
        }
        Ok(())
    }
}

/// Result of a symmetric eigendecomposition `A = V · diag(λ) · Vᵀ`.
///
/// Eigenvalues are sorted in **descending** order; column `k` of the
/// eigenvector matrix corresponds to eigenvalue `k`. This matches the
/// principal-component convention where the first component explains the
/// most variance.
///
/// # Example
///
/// ```
/// use statobd_num::matrix::DMatrix;
/// use statobd_num::eigen::SymmetricEigen;
///
/// let a = DMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.0]]);
/// let e = SymmetricEigen::new(&a)?;
/// assert_eq!(e.eigenvalues(), &[2.0, 1.0]);
/// # Ok::<(), statobd_num::NumError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    /// Column `k` is the eigenvector for `eigenvalues[k]`; `n × k` with
    /// `k ≤ n` for truncated decompositions.
    eigenvectors: DMatrix,
    /// Rows of the decomposed matrix.
    dimension: usize,
    /// Backend that actually ran (never [`SpectralSolver::Auto`]).
    solver: SpectralSolver,
}

impl SymmetricEigen {
    /// Default tolerance on the off-diagonal Frobenius norm, relative to the
    /// matrix norm.
    pub const DEFAULT_TOL: f64 = 1e-12;

    /// Maximum number of Jacobi sweeps before reporting non-convergence.
    pub const MAX_SWEEPS: usize = 64;

    /// Below this dimension the auto dispatch keeps cyclic Jacobi (its
    /// high relative accuracy on tiny spectra is worth the constant); at
    /// or above it the full spectrum goes to tridiagonal QL.
    pub const JACOBI_MAX_DIM: usize = 64;

    /// Truncated spectra of matrices at least this large take the Lanczos
    /// top-k path; smaller ones solve fully and truncate.
    pub const LANCZOS_MIN_DIM: usize = 128;

    /// Computes the **full** eigendecomposition of a symmetric matrix,
    /// choosing the solver by size (Jacobi below
    /// [`Self::JACOBI_MAX_DIM`], tridiagonal QL at or above it).
    ///
    /// # Errors
    ///
    /// * [`NumError::NotSymmetric`] if `a` is not symmetric to `1e-8`
    ///   relative tolerance,
    /// * [`NumError::NoConvergence`] if the backend iteration fails (does
    ///   not occur for finite symmetric input in practice); the error
    ///   carries the matrix size, the iteration count and the remaining
    ///   residual.
    pub fn new(a: &DMatrix) -> Result<Self> {
        Self::with_options(a, &SpectralOptions::full())
    }

    /// Computes a (possibly truncated) eigendecomposition with explicit
    /// solver, energy-target and threading control.
    ///
    /// # Errors
    ///
    /// * [`NumError::NotSymmetric`] if `a` is not symmetric to `1e-8`
    ///   relative tolerance,
    /// * [`NumError::Domain`] if the options are out of range,
    /// * [`NumError::NoConvergence`] if the backend iteration fails, with
    ///   the matrix size, iteration count and residual attached.
    pub fn with_options(a: &DMatrix, opts: &SpectralOptions) -> Result<Self> {
        opts.validate()?;
        let scale = a.frobenius_norm().max(1.0);
        if !a.is_symmetric(1e-8 * scale) {
            return Err(NumError::NotSymmetric);
        }
        let n = a.nrows();
        let threads = crate::parallel::resolve_threads(opts.threads);
        let wants_partial = opts.wants_partial(n);
        let solver = match opts.solver {
            SpectralSolver::Auto => {
                if n < Self::JACOBI_MAX_DIM {
                    SpectralSolver::Jacobi
                } else if wants_partial && n >= Self::LANCZOS_MIN_DIM {
                    SpectralSolver::Lanczos
                } else {
                    SpectralSolver::TridiagonalQl
                }
            }
            s => s,
        };

        let cap = opts.max_components.unwrap_or(n).min(n);
        let rule = StopRule::EnergyFraction(opts.energy_fraction);
        let truncate = |vals: Vec<f64>, vecs: DMatrix| -> (Vec<f64>, DMatrix) {
            if wants_partial {
                lanczos::filter_full_spectrum(&vals, &vecs, rule, cap)
            } else {
                (vals, vecs)
            }
        };

        let (eigenvalues, eigenvectors) = match solver {
            SpectralSolver::Jacobi => {
                let full = Self::decompose(a, opts.tol, threads)?;
                truncate(full.eigenvalues, full.eigenvectors)
            }
            SpectralSolver::TridiagonalQl => {
                let (vals, vecs) = symmetric_eigen_ql(a)?;
                truncate(vals, vecs)
            }
            SpectralSolver::Lanczos => {
                let lopts = LanczosOptions {
                    rule,
                    tol: opts.tol,
                    max_components: opts.max_components,
                    threads,
                    ..LanczosOptions::default()
                };
                lanczos::top_eigenpairs(a, &lopts)?
            }
            SpectralSolver::Auto => unreachable!("Auto resolved above"),
        };
        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
            dimension: n,
            solver,
        })
    }

    /// Matrices at least this large use the parallel round-robin rotation
    /// ordering; below it the thread fan-out costs more than it saves.
    pub const PARALLEL_MIN_DIM: usize = 64;

    fn decompose(a: &DMatrix, tol: f64, threads: usize) -> Result<Self> {
        let n = a.nrows();
        let mut m = a.clone();
        // Symmetrize exactly so rounding asymmetry cannot accumulate.
        for i in 0..n {
            for j in (i + 1)..n {
                let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
                m[(i, j)] = avg;
                m[(j, i)] = avg;
            }
        }
        let mut v = DMatrix::identity(n);
        let norm = m.frobenius_norm().max(f64::MIN_POSITIVE);
        let threshold = tol * norm;

        if n >= Self::PARALLEL_MIN_DIM && threads > 1 {
            Self::sweep_round_robin(&mut m, &mut v, threshold, threads)?;
        } else {
            Self::sweep_cyclic(&mut m, &mut v, threshold)?;
        }

        // Extract and sort (descending by eigenvalue).
        let mut order: Vec<usize> = (0..n).collect();
        let eigenvalues_raw: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        order.sort_by(|&i, &j| {
            eigenvalues_raw[j]
                .partial_cmp(&eigenvalues_raw[i])
                .expect("eigenvalues are finite")
        });
        let eigenvalues: Vec<f64> = order.iter().map(|&i| eigenvalues_raw[i]).collect();
        let eigenvectors = DMatrix::from_fn(n, n, |i, k| v[(i, order[k])]);

        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
            dimension: n,
            solver: SpectralSolver::Jacobi,
        })
    }

    /// The classic sequential cyclic-by-row ordering.
    fn sweep_cyclic(m: &mut DMatrix, v: &mut DMatrix, threshold: f64) -> Result<()> {
        let n = m.nrows();
        let mut sweeps = 0;
        loop {
            let off = off_diagonal_norm(m);
            if off <= threshold {
                return Ok(());
            }
            if sweeps >= Self::MAX_SWEEPS {
                return Err(NumError::NoConvergence {
                    iterations: sweeps,
                    residual: off,
                    dimension: n,
                });
            }
            sweeps += 1;
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= threshold / (n as f64) {
                        continue;
                    }
                    let (c, s) = jacobi_rotation(m[(p, p)], m[(q, q)], apq);
                    apply_rotation(m, v, p, q, c, s);
                }
            }
        }
    }

    /// Parallel rotation ordering: a round-robin tournament schedule makes
    /// each round a set of ⌊n/2⌋ *disjoint* pivot pairs. Disjoint
    /// rotations commute, so the round's combined rotation `J` applies in
    /// two parallel passes — columns (`M·J`), then, via the transpose of
    /// the symmetric intermediate, rows (`Jᵀ·M·J`) — with every pass a
    /// data-parallel per-row update. Rounds, pair order, and chunk
    /// boundaries are all fixed, so the decomposition is identical at any
    /// thread count.
    fn sweep_round_robin(
        m: &mut DMatrix,
        v: &mut DMatrix,
        threshold: f64,
        threads: usize,
    ) -> Result<()> {
        let n = m.nrows();
        // Pad to even; the extra slot is a bye the pairing skips.
        let n_slots = n + n % 2;
        let mut sweeps = 0;
        loop {
            let off = off_diagonal_norm(m);
            if off <= threshold {
                return Ok(());
            }
            if sweeps >= Self::MAX_SWEEPS {
                return Err(NumError::NoConvergence {
                    iterations: sweeps,
                    residual: off,
                    dimension: n,
                });
            }
            sweeps += 1;
            let mut slots: Vec<usize> = (0..n_slots).collect();
            for _round in 0..n_slots - 1 {
                // Pivot angles come from the round-start matrix; the
                // entries they read are untouched by the round's other
                // (disjoint) rotations, so this matches applying the
                // round sequentially.
                let mut rots: Vec<(usize, usize, f64, f64)> = Vec::with_capacity(n_slots / 2);
                for i in 0..n_slots / 2 {
                    let (mut p, mut q) = (slots[i], slots[n_slots - 1 - i]);
                    if p > q {
                        std::mem::swap(&mut p, &mut q);
                    }
                    if q >= n {
                        continue;
                    }
                    let apq = m[(p, q)];
                    if apq.abs() <= threshold / (n as f64) {
                        continue;
                    }
                    let (c, s) = jacobi_rotation(m[(p, p)], m[(q, q)], apq);
                    rots.push((p, q, c, s));
                }
                if !rots.is_empty() {
                    apply_round_columns(m, &rots, threads);
                    *m = m.transpose();
                    apply_round_columns(m, &rots, threads);
                    apply_round_columns(v, &rots, threads);
                }
                slots[1..].rotate_right(1);
            }
            // The transpose trick assumes bit-symmetry; restore it so
            // rounding asymmetry cannot accumulate across sweeps.
            for i in 0..n {
                for j in (i + 1)..n {
                    let avg = 0.5 * (m[(i, j)] + m[(j, i)]);
                    m[(i, j)] = avg;
                    m[(j, i)] = avg;
                }
            }
        }
    }

    /// Eigenvalues in descending order (the leading `k ≤ n` for truncated
    /// decompositions).
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Orthonormal eigenvector matrix (`n × k`); column `k` pairs with
    /// eigenvalue `k`.
    pub fn eigenvectors(&self) -> &DMatrix {
        &self.eigenvectors
    }

    /// Rows of the matrix that was decomposed.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Number of retained eigenpairs (`== dimension()` for a full
    /// decomposition).
    pub fn n_components(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Whether the complete spectrum was retained.
    pub fn is_full(&self) -> bool {
        self.n_components() == self.dimension
    }

    /// The backend that produced this decomposition (never
    /// [`SpectralSolver::Auto`]).
    pub fn solver(&self) -> SpectralSolver {
        self.solver
    }

    /// Sum of the retained eigenvalues — for a full decomposition this is
    /// `trace(A)`; for a truncated one, the captured energy.
    pub fn retained_energy(&self) -> f64 {
        self.eigenvalues.iter().sum()
    }

    /// Reconstructs `V · diag(λ) · Vᵀ` (used by tests and sanity checks).
    /// For a truncated decomposition this is the best rank-`k`
    /// approximation of the original matrix, not the matrix itself.
    pub fn reconstruct(&self) -> DMatrix {
        let n = self.dimension;
        let k = self.eigenvalues.len();
        DMatrix::from_fn(n, n, |i, j| {
            (0..k)
                .map(|k| {
                    self.eigenvalues[k] * self.eigenvectors[(i, k)] * self.eigenvectors[(j, k)]
                })
                .sum()
        })
    }
}

/// Applies a round of disjoint column rotations (`M ← M·J`) with the rows
/// fanned out over threads (each row is touched only in columns `p`, `q`
/// of its own rotations, so rows are independent work items).
fn apply_round_columns(m: &mut DMatrix, rots: &[(usize, usize, f64, f64)], threads: usize) {
    let ncols = m.ncols();
    // 8 rows per chunk balances scheduling overhead against tail idling;
    // the boundaries depend only on the matrix size.
    let chunk_len = 8 * ncols;
    crate::parallel::for_each_chunk_mut(m.as_mut_slice(), chunk_len, threads, |_, chunk| {
        for row in chunk.chunks_mut(ncols) {
            for &(p, q, c, s) in rots {
                let rp = row[p];
                let rq = row[q];
                row[p] = c * rp - s * rq;
                row[q] = s * rp + c * rq;
            }
        }
    });
}

/// Frobenius norm of the strictly-off-diagonal part.
fn off_diagonal_norm(m: &DMatrix) -> f64 {
    let n = m.nrows();
    let mut acc = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            acc += 2.0 * m[(i, j)] * m[(i, j)];
        }
    }
    acc.sqrt()
}

/// Computes the (cos, sin) of the Jacobi rotation that annihilates `a_pq`.
fn jacobi_rotation(app: f64, aqq: f64, apq: f64) -> (f64, f64) {
    let theta = (aqq - app) / (2.0 * apq);
    // Choose the smaller-magnitude root for stability (Golub & Van Loan).
    let t = if theta >= 0.0 {
        1.0 / (theta + (1.0 + theta * theta).sqrt())
    } else {
        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    (c, t * c)
}

/// Applies the symmetric rotation `J(p,q,θ)ᵀ · M · J(p,q,θ)` in place and
/// accumulates the rotation into `V`.
fn apply_rotation(m: &mut DMatrix, v: &mut DMatrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.nrows();
    for k in 0..n {
        let mkp = m[(k, p)];
        let mkq = m[(k, q)];
        m[(k, p)] = c * mkp - s * mkq;
        m[(k, q)] = s * mkp + c * mkq;
    }
    for k in 0..n {
        let mpk = m[(p, k)];
        let mqk = m[(q, k)];
        m[(p, k)] = c * mpk - s * mqk;
        m[(q, k)] = s * mpk + c * mqk;
    }
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = DMatrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.eigenvalues(), &[3.0, 2.0, 1.0]);
    }

    #[test]
    fn two_by_two_known_values() {
        let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_close(e.eigenvalues()[0], 3.0, 1e-12);
        assert_close(e.eigenvalues()[1], 1.0, 1e-12);
    }

    #[test]
    fn rejects_asymmetric_input() {
        let a = DMatrix::from_rows(&[&[1.0, 0.5], &[0.0, 1.0]]);
        assert!(matches!(
            SymmetricEigen::new(&a),
            Err(NumError::NotSymmetric)
        ));
    }

    #[test]
    fn reconstruction_matches_original() {
        // Exponential-decay correlation matrix like the variation model uses.
        let n = 16;
        let a = DMatrix::from_fn(n, n, |i, j| (-((i as f64 - j as f64).abs()) / 4.0).exp());
        let e = SymmetricEigen::new(&a).unwrap();
        let r = e.reconstruct();
        for i in 0..n {
            for j in 0..n {
                assert_close(r[(i, j)], a[(i, j)], 1e-9);
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let n = 12;
        let a = DMatrix::from_fn(n, n, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = SymmetricEigen::new(&a).unwrap();
        let v = e.eigenvectors();
        let vtv = v.transpose().mul(v).unwrap();
        for i in 0..n {
            for j in 0..n {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_close(vtv[(i, j)], expected, 1e-10);
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let n = 20;
        let a = DMatrix::from_fn(n, n, |i, j| {
            (-((i % 5) as f64 - (j % 5) as f64).abs() / 2.0).exp()
                * (-((i / 5) as f64 - (j / 5) as f64).abs() / 2.0).exp()
        });
        let e = SymmetricEigen::new(&a).unwrap();
        let sum: f64 = e.eigenvalues().iter().sum();
        assert_close(sum, a.trace(), 1e-9);
    }

    #[test]
    fn parallel_path_matches_sequential_invariants() {
        // Large enough to take the round-robin path (when >1 core is
        // available); the sequential path must satisfy the same checks.
        let side = 9;
        let n = side * side;
        assert!(n >= SymmetricEigen::PARALLEL_MIN_DIM);
        let coord = |k: usize| ((k % side) as f64, (k / side) as f64);
        let a = DMatrix::from_fn(n, n, |i, j| {
            let (xi, yi) = coord(i);
            let (xj, yj) = coord(j);
            (-(((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()) / 3.0).exp()
        });
        // Force Jacobi: at this size the auto dispatch would pick QL.
        let opts = SpectralOptions::full().with_solver(SpectralSolver::Jacobi);
        let e = SymmetricEigen::with_options(&a, &opts).unwrap();
        assert_eq!(e.solver(), SpectralSolver::Jacobi);
        // Reconstruction, orthonormality, trace, and PSD-ness.
        let r = e.reconstruct();
        for i in 0..n {
            for j in 0..n {
                assert_close(r[(i, j)], a[(i, j)], 1e-8);
            }
        }
        let v = e.eigenvectors();
        let vtv = v.transpose().mul(v).unwrap();
        for i in 0..n {
            for j in 0..n {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_close(vtv[(i, j)], expected, 1e-9);
            }
        }
        let sum: f64 = e.eigenvalues().iter().sum();
        assert_close(sum, a.trace(), 1e-8);
        for &l in e.eigenvalues() {
            assert!(l > -1e-8, "eigenvalue {l} should be non-negative");
        }
    }

    fn grid_kernel(side: usize, corr: f64) -> DMatrix {
        let n = side * side;
        let coord = |k: usize| ((k % side) as f64, (k / side) as f64);
        DMatrix::from_fn(n, n, |i, j| {
            let (xi, yi) = coord(i);
            let (xj, yj) = coord(j);
            (-(((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()) / corr).exp()
        })
    }

    #[test]
    fn auto_dispatch_picks_by_size_and_truncation() {
        let small = grid_kernel(4, 2.0); // n = 16
        let e = SymmetricEigen::new(&small).unwrap();
        assert_eq!(e.solver(), SpectralSolver::Jacobi);
        assert!(e.is_full());

        let large = grid_kernel(9, 2.0); // n = 81 ≥ JACOBI_MAX_DIM
        let e = SymmetricEigen::new(&large).unwrap();
        assert_eq!(e.solver(), SpectralSolver::TridiagonalQl);
        assert!(e.is_full());
        assert_eq!(e.dimension(), 81);

        let huge = grid_kernel(12, 2.0); // n = 144 ≥ LANCZOS_MIN_DIM
        let e = SymmetricEigen::with_options(&huge, &SpectralOptions::energy(0.95)).unwrap();
        assert_eq!(e.solver(), SpectralSolver::Lanczos);
        assert!(!e.is_full());
        assert!(e.retained_energy() >= 0.95 * huge.trace());
    }

    #[test]
    fn solvers_agree_on_the_same_matrix() {
        let a = grid_kernel(9, 3.0); // n = 81, degenerate pairs included
        let jac = SymmetricEigen::with_options(
            &a,
            &SpectralOptions::full().with_solver(SpectralSolver::Jacobi),
        )
        .unwrap();
        let ql = SymmetricEigen::with_options(
            &a,
            &SpectralOptions::full().with_solver(SpectralSolver::TridiagonalQl),
        )
        .unwrap();
        let scale = jac.eigenvalues()[0];
        for (j, q) in jac.eigenvalues().iter().zip(ql.eigenvalues()) {
            assert_close(*j, *q, 1e-10 * scale);
        }
        // Eigenvectors may differ by sign / degenerate-subspace rotation;
        // compare the reconstructions instead.
        let rj = jac.reconstruct();
        let rq = ql.reconstruct();
        for (x, y) in rj.as_slice().iter().zip(rq.as_slice()) {
            assert_close(*x, *y, 1e-9 * scale);
        }
    }

    #[test]
    fn truncated_decomposition_matches_leading_full_spectrum() {
        let a = grid_kernel(8, 2.0); // n = 64
        let full = SymmetricEigen::new(&a).unwrap();
        for solver in [
            SpectralSolver::Jacobi,
            SpectralSolver::TridiagonalQl,
            SpectralSolver::Lanczos,
        ] {
            let part =
                SymmetricEigen::with_options(&a, &SpectralOptions::energy(0.9).with_solver(solver))
                    .unwrap();
            assert!(part.n_components() < 64, "{}", solver.name());
            assert!(part.retained_energy() >= 0.9 * a.trace());
            for (p, f) in part.eigenvalues().iter().zip(full.eigenvalues()) {
                assert_close(*p, *f, 1e-9 * full.eigenvalues()[0]);
            }
        }
    }

    #[test]
    fn max_components_cap_is_respected() {
        let a = grid_kernel(6, 2.0);
        let e = SymmetricEigen::with_options(&a, &SpectralOptions::full().with_max_components(5))
            .unwrap();
        assert_eq!(e.n_components(), 5);
        assert_eq!(e.eigenvectors().ncols(), 5);
        assert_eq!(e.eigenvectors().nrows(), 36);
    }

    #[test]
    fn rejects_invalid_options() {
        let a = DMatrix::identity(4);
        assert!(matches!(
            SymmetricEigen::with_options(&a, &SpectralOptions::energy(0.0)),
            Err(NumError::Domain { .. })
        ));
        assert!(matches!(
            SymmetricEigen::with_options(&a, &SpectralOptions::full().with_tol(-1.0)),
            Err(NumError::Domain { .. })
        ));
    }

    #[test]
    fn psd_correlation_matrix_has_nonnegative_eigenvalues() {
        // 2-D grid exponential correlation is positive semidefinite.
        let side = 6;
        let n = side * side;
        let coord = |k: usize| ((k % side) as f64, (k / side) as f64);
        let a = DMatrix::from_fn(n, n, |i, j| {
            let (xi, yi) = coord(i);
            let (xj, yj) = coord(j);
            let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
            (-d / 3.0).exp()
        });
        let e = SymmetricEigen::new(&a).unwrap();
        for &l in e.eigenvalues() {
            assert!(l > -1e-9, "eigenvalue {l} should be non-negative");
        }
    }
}
