//! Householder tridiagonalization and the implicit-shift QL
//! eigensolver for symmetric matrices.
//!
//! This is the full-spectrum workhorse of the tiered spectral pipeline
//! (see [`crate::eigen::SpectralOptions`]): a symmetric matrix is first
//! reduced to tridiagonal form `A = Q·T·Qᵀ` by `n − 2` Householder
//! reflections (`~4n³/3` flops), then the tridiagonal eigenproblem is
//! solved by QL iterations with implicit Wilkinson shifts, accumulating
//! the rotations into `Q`. The total cost is `O(n³)` with a small
//! constant and — unlike cyclic Jacobi — no sweep-count blow-up on large
//! matrices, which makes it the preferred full-spectrum solver from a few
//! dozen rows upward.
//!
//! The tridiagonal QL stage is exposed on its own
//! ([`tridiagonal_eigen`]) because the Lanczos top-k path
//! ([`crate::lanczos`]) projects onto a small tridiagonal matrix it needs
//! decomposed, and the dense path ([`symmetric_eigen_ql`]) reuses the
//! exact same iteration.

use crate::matrix::DMatrix;
use crate::{NumError, Result};

/// Maximum implicit-shift QL iterations per eigenvalue. Convergence is
/// cubic once the shift locks on; well-posed inputs use 2–3.
pub const MAX_QL_ITERS: usize = 50;

/// Full eigendecomposition `A = V · diag(λ) · Vᵀ` of a symmetric matrix
/// via Householder tridiagonalization + implicit-shift QL.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted in
/// **descending** order and column `k` of the eigenvector matrix paired
/// with eigenvalue `k` (the same convention as
/// [`crate::eigen::SymmetricEigen`]). The caller is expected to have
/// checked symmetry; the strictly lower triangle is the one read.
///
/// # Errors
///
/// [`NumError::NoConvergence`] if any eigenvalue needs more than
/// [`MAX_QL_ITERS`] QL iterations (does not occur for finite symmetric
/// input in practice).
pub fn symmetric_eigen_ql(a: &DMatrix) -> Result<(Vec<f64>, DMatrix)> {
    let n = a.nrows();
    if n == 0 {
        return Ok((Vec::new(), DMatrix::zeros(0, 0)));
    }
    let mut q = a.clone();
    // Symmetrize exactly so rounding asymmetry cannot leak into the
    // reflections.
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (q[(i, j)] + q[(j, i)]);
            q[(i, j)] = avg;
            q[(j, i)] = avg;
        }
    }
    let (mut d, mut e) = householder_tridiagonalize(&mut q);
    ql_implicit_shift(&mut d, &mut e, &mut q)?;
    Ok(sort_descending(d, q))
}

/// Eigendecomposition of a symmetric **tridiagonal** matrix given its
/// diagonal (`diag`, length `n`) and subdiagonal (`sub`, length `n − 1`),
/// via implicit-shift QL.
///
/// Returns `(eigenvalues, eigenvectors)` sorted descending; the
/// eigenvectors are expressed in the basis the tridiagonal matrix was
/// given in (i.e. the accumulation matrix starts as the identity).
///
/// # Errors
///
/// * [`NumError::Dimension`] if `sub.len() + 1 != diag.len()`,
/// * [`NumError::NoConvergence`] if QL fails to deflate an eigenvalue.
pub fn tridiagonal_eigen(diag: &[f64], sub: &[f64]) -> Result<(Vec<f64>, DMatrix)> {
    let n = diag.len();
    if n == 0 {
        return Ok((Vec::new(), DMatrix::zeros(0, 0)));
    }
    if sub.len() + 1 != n {
        return Err(NumError::Dimension {
            detail: format!(
                "tridiagonal with {n} diagonal entries needs {} subdiagonal entries, got {}",
                n - 1,
                sub.len()
            ),
        });
    }
    let mut d = diag.to_vec();
    // Internal convention: e[i] couples rows i−1 and i, e[0] unused.
    let mut e = vec![0.0; n];
    e[1..].copy_from_slice(sub);
    let mut z = DMatrix::identity(n);
    ql_implicit_shift(&mut d, &mut e, &mut z)?;
    Ok(sort_descending(d, z))
}

/// Reduces the symmetric matrix stored in `a` to tridiagonal form,
/// overwriting `a` with the accumulated orthogonal matrix `Q` such that
/// `A = Q·T·Qᵀ`. Returns `(d, e)` where `d` is the diagonal of `T` and
/// `e[i]` (for `i ≥ 1`) couples rows `i − 1` and `i` (`e[0] = 0`).
///
/// Classic symmetric Householder reduction (EISPACK `tred2` lineage):
/// reflections are built from the bottom row up, applied as rank-two
/// updates to the remaining leading block, and accumulated in a second
/// pass.
fn householder_tridiagonalize(a: &mut DMatrix) -> (Vec<f64>, Vec<f64>) {
    let n = a.nrows();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];

    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            // Scale the row for overflow-safe norms.
            let scale: f64 = (0..=l).map(|k| a[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = a[(i, l)];
            } else {
                for k in 0..=l {
                    a[(i, k)] /= scale;
                    h += a[(i, k)] * a[(i, k)];
                }
                let f = a[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                a[(i, l)] = f - g;
                // p = A·u / h, accumulated in e[0..=l]; f = uᵀp.
                let mut f_acc = 0.0;
                for j in 0..=l {
                    a[(j, i)] = a[(i, j)] / h;
                    let mut g_acc = 0.0;
                    for k in 0..=j {
                        g_acc += a[(j, k)] * a[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g_acc += a[(k, j)] * a[(i, k)];
                    }
                    e[j] = g_acc / h;
                    f_acc += e[j] * a[(i, j)];
                }
                // Rank-two update A ← A − u·qᵀ − q·uᵀ with
                // q = p − (uᵀp / 2h)·u.
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let f = a[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        a[(j, k)] -= f * e[k] + g * a[(i, k)];
                    }
                }
            }
        } else {
            e[i] = a[(i, l)];
        }
        d[i] = h;
    }

    // Accumulate the reflections into Q (identity for the trivial ones).
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += a[(i, k)] * a[(k, j)];
                }
                for k in 0..i {
                    a[(k, j)] -= g * a[(k, i)];
                }
            }
        }
        d[i] = a[(i, i)];
        a[(i, i)] = 1.0;
        for j in 0..i {
            a[(j, i)] = 0.0;
            a[(i, j)] = 0.0;
        }
    }
    (d, e)
}

/// Implicit-shift QL on the tridiagonal `(d, e)` (with `e[i]` coupling
/// rows `i − 1` and `i`), accumulating rotations into the columns of `z`.
/// On success `d` holds the (unsorted) eigenvalues and column `k` of `z`
/// the eigenvector for `d[k]`.
fn ql_implicit_shift(d: &mut [f64], e: &mut [f64], z: &mut DMatrix) -> Result<()> {
    let n = d.len();
    if n <= 1 {
        return Ok(());
    }
    // Shift the coupling convention down: e[i] now couples rows i, i+1.
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iters = 0;
        loop {
            // Find the first negligible subdiagonal at or after l.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break; // d[l] converged.
            }
            if iters >= MAX_QL_ITERS {
                return Err(NumError::NoConvergence {
                    iterations: iters,
                    residual: e[l].abs(),
                    dimension: n,
                });
            }
            iters += 1;

            // Wilkinson shift from the leading 2×2 of the active block.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Deflate by recovering from the underflow.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector columns.
                for k in 0..z.nrows() {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// Sorts eigenpairs into descending-eigenvalue order (the
/// principal-component convention used across the workspace).
fn sort_descending(d: Vec<f64>, z: DMatrix) -> (Vec<f64>, DMatrix) {
    let n = d.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("eigenvalues are finite"));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let eigenvectors = DMatrix::from_fn(z.nrows(), n, |i, k| z[(i, order[k])]);
    (eigenvalues, eigenvectors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    fn check_decomposition(a: &DMatrix, vals: &[f64], vecs: &DMatrix, tol: f64) {
        let n = a.nrows();
        assert_eq!(vals.len(), n);
        // Descending order.
        for w in vals.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        // A·v = λ·v per pair.
        for k in 0..n {
            let v = vecs.column(k);
            let av = a.mul_vec(&v);
            for i in 0..n {
                assert_close(av[i], vals[k] * v[i], tol);
            }
        }
        // Orthonormality.
        let vtv = vecs.transpose().mul(vecs).unwrap();
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_close(vtv[(i, j)], expect, 1e-10);
            }
        }
    }

    #[test]
    fn two_by_two_known_values() {
        let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, vecs) = symmetric_eigen_ql(&a).unwrap();
        assert_close(vals[0], 3.0, 1e-12);
        assert_close(vals[1], 1.0, 1e-12);
        check_decomposition(&a, &vals, &vecs, 1e-12);
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = DMatrix::from_rows(&[&[3.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 2.0]]);
        let (vals, _) = symmetric_eigen_ql(&a).unwrap();
        assert_eq!(vals, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn grid_correlation_matrix_decomposes() {
        // The same 2-D grid kernel the variation model assembles; its
        // symmetry produces degenerate eigenvalue pairs, which the QL
        // deflation must handle.
        let side = 7;
        let n = side * side;
        let coord = |k: usize| ((k % side) as f64, (k / side) as f64);
        let a = DMatrix::from_fn(n, n, |i, j| {
            let (xi, yi) = coord(i);
            let (xj, yj) = coord(j);
            (-(((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()) / 3.0).exp()
        });
        let (vals, vecs) = symmetric_eigen_ql(&a).unwrap();
        check_decomposition(&a, &vals, &vecs, 1e-9);
        let sum: f64 = vals.iter().sum();
        assert_close(sum, a.trace(), 1e-9);
        for &l in &vals {
            assert!(l > -1e-9, "correlation eigenvalue {l} should be >= 0");
        }
    }

    #[test]
    fn tridiagonal_eigen_matches_dense_path() {
        // Free-particle chain: known spectrum 2 − 2·cos(kπ/(n+1)).
        let n = 12;
        let diag = vec![2.0; n];
        let sub = vec![-1.0; n - 1];
        let (vals, vecs) = tridiagonal_eigen(&diag, &sub).unwrap();
        let dense = DMatrix::from_fn(n, n, |i, j| {
            if i == j {
                2.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        check_decomposition(&dense, &vals, &vecs, 1e-10);
        for (k, &v) in vals.iter().enumerate() {
            let expect =
                2.0 - 2.0 * ((n - k) as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
            assert_close(v, expect, 1e-10);
        }
    }

    #[test]
    fn tridiagonal_eigen_rejects_bad_lengths() {
        assert!(matches!(
            tridiagonal_eigen(&[1.0, 2.0], &[0.5, 0.5]),
            Err(NumError::Dimension { .. })
        ));
    }

    #[test]
    fn handles_empty_and_single() {
        let (vals, vecs) = symmetric_eigen_ql(&DMatrix::zeros(0, 0)).unwrap();
        assert!(vals.is_empty());
        assert_eq!(vecs.nrows(), 0);
        let (vals, vecs) = symmetric_eigen_ql(&DMatrix::from_rows(&[&[4.0]])).unwrap();
        assert_eq!(vals, vec![4.0]);
        assert_eq!(vecs[(0, 0)], 1.0);
    }
}
