//! Numerical quadrature: midpoint, Simpson and Gauss–Legendre rules in 1-D,
//! plus tensor-product 2-D rules.
//!
//! The paper's overall algorithm (its Fig. 9) evaluates the ensemble
//! reliability with an `l0 × l0` midpoint "integral sum"; the Gauss–Legendre
//! rule is provided as a higher-accuracy alternative and for convergence
//! studies.

use crate::{NumError, Result};

/// 1-D quadrature rule selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuadRule {
    /// Composite midpoint rule (what the paper's algorithm uses).
    Midpoint,
    /// Composite Simpson rule (requires an even panel count internally;
    /// handled automatically).
    Simpson,
    /// Gauss–Legendre with the given number of nodes.
    GaussLegendre,
}

/// Nodes and weights of a quadrature rule on `[a, b]`.
#[derive(Debug, Clone)]
pub struct Quadrature {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

impl Quadrature {
    /// Builds an `n`-point rule of the given kind on `[a, b]`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Domain`] if `n == 0` or `a >= b`.
    pub fn new(rule: QuadRule, n: usize, a: f64, b: f64) -> Result<Self> {
        if n == 0 || !(a < b) {
            return Err(NumError::Domain {
                detail: format!("quadrature needs n > 0 and a < b, got n={n}, [{a}, {b}]"),
            });
        }
        match rule {
            QuadRule::Midpoint => Ok(Self::midpoint(n, a, b)),
            QuadRule::Simpson => Ok(Self::simpson(n, a, b)),
            QuadRule::GaussLegendre => Ok(Self::gauss_legendre(n, a, b)),
        }
    }

    fn midpoint(n: usize, a: f64, b: f64) -> Self {
        let h = (b - a) / n as f64;
        let nodes = (0..n).map(|i| a + (i as f64 + 0.5) * h).collect();
        let weights = vec![h; n];
        Quadrature { nodes, weights }
    }

    fn simpson(n: usize, a: f64, b: f64) -> Self {
        // Composite Simpson needs an even number of intervals; nodes are the
        // panel endpoints, so `n` points means `n-1` intervals. Round up to
        // an odd node count >= 3.
        let n = if n < 3 {
            3
        } else if n.is_multiple_of(2) {
            n + 1
        } else {
            n
        };
        let h = (b - a) / (n - 1) as f64;
        let nodes: Vec<f64> = (0..n).map(|i| a + i as f64 * h).collect();
        let mut weights = vec![0.0; n];
        for (i, w) in weights.iter_mut().enumerate() {
            *w = if i == 0 || i == n - 1 {
                h / 3.0
            } else if i % 2 == 1 {
                4.0 * h / 3.0
            } else {
                2.0 * h / 3.0
            };
        }
        Quadrature { nodes, weights }
    }

    fn gauss_legendre(n: usize, a: f64, b: f64) -> Self {
        // Newton iteration on Legendre polynomials, standard Golub-free
        // approach; accurate to ~1e-15 for n up to several hundred.
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        let m = n.div_ceil(2);
        for i in 0..m {
            // Initial guess (Chebyshev-like).
            let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
            let mut pp = 0.0;
            for _ in 0..100 {
                // Evaluate P_n(x) and its derivative by recurrence.
                let mut p0 = 1.0;
                let mut p1 = 0.0;
                for j in 0..n {
                    let p2 = p1;
                    p1 = p0;
                    p0 = ((2.0 * j as f64 + 1.0) * x * p1 - j as f64 * p2) / (j as f64 + 1.0);
                }
                pp = n as f64 * (x * p0 - p1) / (x * x - 1.0);
                let dx = p0 / pp;
                x -= dx;
                if dx.abs() < 1e-15 {
                    break;
                }
            }
            let half = 0.5 * (b - a);
            let mid = 0.5 * (a + b);
            nodes[i] = mid - half * x;
            nodes[n - 1 - i] = mid + half * x;
            let w = 2.0 * half / ((1.0 - x * x) * pp * pp);
            weights[i] = w;
            weights[n - 1 - i] = w;
        }
        Quadrature { nodes, weights }
    }

    /// The quadrature nodes.
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// The quadrature weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Integrates `f` with this rule.
    pub fn integrate(&self, mut f: impl FnMut(f64) -> f64) -> f64 {
        self.nodes
            .iter()
            .zip(&self.weights)
            .map(|(&x, &w)| w * f(x))
            .sum()
    }
}

/// Integrates `f` over `[a, b]` with an `n`-point rule.
///
/// # Errors
///
/// Propagates [`Quadrature::new`] errors.
pub fn integrate_1d(
    rule: QuadRule,
    n: usize,
    a: f64,
    b: f64,
    f: impl FnMut(f64) -> f64,
) -> Result<f64> {
    Ok(Quadrature::new(rule, n, a, b)?.integrate(f))
}

/// Integrates `f(x, y)` over `[ax, bx] × [ay, by]` with a tensor-product
/// rule of `nx × ny` points.
///
/// This is the `l0 × l0` "sub-domain integral sum" of the paper's Fig. 9
/// when `rule == QuadRule::Midpoint` and `nx == ny == l0`.
///
/// # Errors
///
/// Propagates [`Quadrature::new`] errors.
pub fn integrate_2d(
    rule: QuadRule,
    nx: usize,
    ny: usize,
    (ax, bx): (f64, f64),
    (ay, by): (f64, f64),
    mut f: impl FnMut(f64, f64) -> f64,
) -> Result<f64> {
    let qx = Quadrature::new(rule, nx, ax, bx)?;
    let qy = Quadrature::new(rule, ny, ay, by)?;
    let mut acc = 0.0;
    for (&x, &wx) in qx.nodes().iter().zip(qx.weights()) {
        for (&y, &wy) in qy.nodes().iter().zip(qy.weights()) {
            acc += wx * wy * f(x, y);
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn midpoint_integrates_linear_exactly() {
        let v = integrate_1d(QuadRule::Midpoint, 4, 0.0, 2.0, |x| 3.0 * x + 1.0).unwrap();
        assert_close(v, 8.0, 1e-13);
    }

    #[test]
    fn simpson_integrates_cubic_exactly() {
        let v = integrate_1d(QuadRule::Simpson, 11, -1.0, 3.0, |x| x * x * x).unwrap();
        assert_close(v, 20.0, 1e-11);
    }

    #[test]
    fn gauss_legendre_high_accuracy() {
        // ∫₀^π sin x dx = 2 with very few nodes.
        let v = integrate_1d(
            QuadRule::GaussLegendre,
            8,
            0.0,
            std::f64::consts::PI,
            f64::sin,
        )
        .unwrap();
        assert_close(v, 2.0, 1e-10);
        // Polynomial exactness: degree 2n−1 = 9 with n = 5 nodes.
        let p = integrate_1d(QuadRule::GaussLegendre, 5, 0.0, 1.0, |x| x.powi(9)).unwrap();
        assert_close(p, 0.1, 1e-14);
    }

    #[test]
    fn gauss_weights_sum_to_interval() {
        for n in [1, 2, 5, 16, 64] {
            let q = Quadrature::new(QuadRule::GaussLegendre, n, -2.0, 5.0).unwrap();
            let sum: f64 = q.weights().iter().sum();
            assert_close(sum, 7.0, 1e-11);
        }
    }

    #[test]
    fn gaussian_integral_2d() {
        // ∫∫ φ(x)φ(y) over [−8, 8]² = 1.
        let phi = |x: f64| (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let v = integrate_2d(
            QuadRule::GaussLegendre,
            48,
            48,
            (-8.0, 8.0),
            (-8.0, 8.0),
            |x, y| phi(x) * phi(y),
        )
        .unwrap();
        assert_close(v, 1.0, 1e-10);
    }

    #[test]
    fn midpoint_2d_matches_paper_l0_style() {
        // The paper's l0 = 10 midpoint sum on a smooth integrand: expect
        // percent-level accuracy, consistent with its reported ~1% errors.
        let phi = |x: f64| (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let v = integrate_2d(
            QuadRule::Midpoint,
            10,
            10,
            (-4.0, 4.0),
            (-4.0, 4.0),
            |x, y| phi(x) * phi(y),
        )
        .unwrap();
        assert!(
            (v - 1.0).abs() < 0.02,
            "midpoint 10x10 error too large: {v}"
        );
    }

    #[test]
    fn rejects_degenerate_intervals() {
        assert!(integrate_1d(QuadRule::Midpoint, 0, 0.0, 1.0, |_| 1.0).is_err());
        assert!(integrate_1d(QuadRule::Midpoint, 4, 1.0, 1.0, |_| 1.0).is_err());
        assert!(integrate_1d(QuadRule::GaussLegendre, 4, 2.0, 1.0, |_| 1.0).is_err());
    }

    #[test]
    fn simpson_handles_even_request() {
        // Even n is rounded up internally; result must still be exact for
        // quadratics.
        let v = integrate_1d(QuadRule::Simpson, 4, 0.0, 1.0, |x| x * x).unwrap();
        assert_close(v, 1.0 / 3.0, 1e-12);
    }
}
