//! Geometric multigrid for cell-centered 2-D grid operators.
//!
//! The thermal conductance matrix is a 5-point-stencil SPD operator on an
//! `nx × ny` cell-centered grid whose condition number grows with the
//! resolution, so Krylov iteration counts — and with them wall-clock —
//! grow with grid size. A multigrid V-cycle removes that growth: damped
//! Jacobi smoothing kills the high-frequency error on each level, the
//! remaining smooth error is restricted (full weighting, the transpose of
//! the prolongation) to a coarser grid, solved there recursively, and the
//! correction is prolongated back with bilinear interpolation. Coarse
//! operators are Galerkin products `A_c = Pᵀ·A·P`, which keeps every level
//! symmetric positive definite, and the coarsest level is handled directly
//! by the existing dense [`Cholesky`].
//!
//! The cycle is usable standalone ([`Multigrid::solve`]) or — because the
//! symmetric smoothing makes one V-cycle an SPD linear operator — as a CG
//! preconditioner ([`Preconditioner`] impl), which is the configuration
//! ("MGCG") the thermal solver dispatches to on large grids.

use crate::cg::{CgSolution, Preconditioner};
use crate::cholesky::Cholesky;
use crate::matrix::DMatrix;
use crate::sparse::{CooMatrix, CsrMatrix};
use crate::{NumError, Result};

/// Tuning knobs for the multigrid hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct MultigridOptions {
    /// Damped-Jacobi sweeps before coarse-grid correction.
    pub nu_pre: usize,
    /// Damped-Jacobi sweeps after coarse-grid correction (keep equal to
    /// `nu_pre` so the V-cycle stays symmetric for CG preconditioning).
    pub nu_post: usize,
    /// Jacobi damping factor; 0.8 is near-optimal for 5-point stencils.
    pub omega: f64,
    /// Stop coarsening once a level has at most this many cells and solve
    /// it with a dense Cholesky factorization.
    pub coarse_max_cells: usize,
}

impl Default for MultigridOptions {
    fn default() -> Self {
        MultigridOptions {
            nu_pre: 1,
            nu_post: 1,
            omega: 0.8,
            coarse_max_cells: 64,
        }
    }
}

/// One fine level of the hierarchy.
#[derive(Debug, Clone)]
struct Level {
    a: CsrMatrix,
    /// Reciprocal diagonal for the damped-Jacobi smoother.
    inv_diag: Vec<f64>,
    /// Prolongation from the next-coarser level to this one.
    p: CsrMatrix,
    /// Restriction to the next-coarser level (`Pᵀ`, i.e. full weighting).
    r: CsrMatrix,
}

/// A geometric-multigrid V-cycle hierarchy for a cell-centered grid
/// operator.
///
/// # Example
///
/// ```
/// use statobd_num::multigrid::{Multigrid, MultigridOptions};
/// use statobd_num::sparse::CooMatrix;
///
/// // 2-D Laplacian + small vertical loss on a 16x16 cell grid.
/// let (nx, ny) = (16, 16);
/// let n = nx * ny;
/// let mut coo = CooMatrix::new(n, n);
/// for iy in 0..ny {
///     for ix in 0..nx {
///         let i = iy * nx + ix;
///         let mut d = 1e-3;
///         for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
///             let (jx, jy) = (ix as i64 + dx, iy as i64 + dy);
///             if (0..nx as i64).contains(&jx) && (0..ny as i64).contains(&jy) {
///                 coo.push(i, (jy as usize) * nx + jx as usize, -1.0);
///                 d += 1.0;
///             }
///         }
///         coo.push(i, i, d);
///     }
/// }
/// let a = coo.to_csr();
/// let mg = Multigrid::new(&a, nx, ny, &MultigridOptions::default())?;
/// let sol = mg.solve(&vec![1.0; n], None, 1e-10, 50)?;
/// assert!(sol.relative_residual <= 1e-10);
/// # Ok::<(), statobd_num::NumError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Multigrid {
    n: usize,
    levels: Vec<Level>,
    coarse: Cholesky,
    coarse_n: usize,
    opts: MultigridOptions,
}

/// 1-D cell-center interpolation stencil: for each of `n_fine` fine cells,
/// up to two (coarse index, weight) pairs summing to one.
fn interp_1d(n_fine: usize, n_coarse: usize) -> Vec<[(usize, f64); 2]> {
    let ratio = n_coarse as f64 / n_fine as f64;
    (0..n_fine)
        .map(|i| {
            // Fine-cell center in coarse index space.
            let pos = (i as f64 + 0.5) * ratio - 0.5;
            let j0 = pos.floor();
            let w = pos - j0;
            let lo = (j0.max(0.0) as usize).min(n_coarse - 1);
            let hi = ((j0 + 1.0).max(0.0) as usize).min(n_coarse - 1);
            if lo == hi {
                [(lo, 1.0), (lo, 0.0)]
            } else {
                [(lo, 1.0 - w), (hi, w)]
            }
        })
        .collect()
}

/// Bilinear prolongation from an `ncx × ncy` coarse grid to an `nx × ny`
/// fine grid (row-major cell ordering, matching the thermal solver).
fn prolongation(nx: usize, ny: usize, ncx: usize, ncy: usize) -> CsrMatrix {
    let wx = interp_1d(nx, ncx);
    let wy = interp_1d(ny, ncy);
    let mut coo = CooMatrix::new(nx * ny, ncx * ncy);
    for (iy, wys) in wy.iter().enumerate() {
        for (ix, wxs) in wx.iter().enumerate() {
            let i = iy * nx + ix;
            for &(jy, vy) in wys {
                for &(jx, vx) in wxs {
                    coo.push(i, jy * ncx + jx, vy * vx);
                }
            }
        }
    }
    coo.to_csr()
}

impl Multigrid {
    /// Builds the hierarchy for the operator `a` on an `nx × ny`
    /// cell-centered grid (row-major, `i = iy·nx + ix`).
    ///
    /// # Errors
    ///
    /// * [`NumError::Dimension`] if `a` is not `nx·ny × nx·ny` or any
    ///   option is out of range,
    /// * [`NumError::NotPositiveDefinite`] if a diagonal is non-positive
    ///   on some level or the coarsest-level Cholesky fails.
    pub fn new(a: &CsrMatrix, nx: usize, ny: usize, opts: &MultigridOptions) -> Result<Self> {
        let n = nx * ny;
        if n == 0 || a.nrows() != n || a.ncols() != n {
            return Err(NumError::Dimension {
                detail: format!(
                    "multigrid needs a {n}x{n} operator for a {nx}x{ny} grid, got {}x{}",
                    a.nrows(),
                    a.ncols()
                ),
            });
        }
        if !(opts.omega > 0.0 && opts.omega < 2.0) || opts.coarse_max_cells == 0 {
            return Err(NumError::Dimension {
                detail: format!(
                    "multigrid options out of range: omega {}, coarse_max_cells {}",
                    opts.omega, opts.coarse_max_cells
                ),
            });
        }
        let mut levels = Vec::new();
        let mut a_cur = a.clone();
        let (mut cx, mut cy) = (nx, ny);
        while cx * cy > opts.coarse_max_cells && (cx > 2 || cy > 2) {
            let (ncx, ncy) = (cx.div_ceil(2).max(1), cy.div_ceil(2).max(1));
            let p = prolongation(cx, cy, ncx, ncy);
            let r = p.transpose();
            let a_coarse = r.mul_csr(&a_cur.mul_csr(&p)?)?;
            let inv_diag = invert_diagonal(&a_cur)?;
            levels.push(Level {
                a: a_cur,
                inv_diag,
                p,
                r,
            });
            a_cur = a_coarse;
            (cx, cy) = (ncx, ncy);
        }
        let coarse_n = cx * cy;
        let dense = DMatrix::from_fn(coarse_n, coarse_n, |i, j| a_cur.get(i, j));
        let coarse = Cholesky::new(&dense)?;
        Ok(Multigrid {
            n,
            levels,
            coarse,
            coarse_n,
            opts: *opts,
        })
    }

    /// Operator dimension (`nx·ny`).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of levels, counting the coarsest direct-solve level.
    pub fn n_levels(&self) -> usize {
        self.levels.len() + 1
    }

    /// Cells on the coarsest (direct-solve) level.
    pub fn coarse_cells(&self) -> usize {
        self.coarse_n
    }

    /// Runs one V-cycle for `A·x = b`, refining `x` in place.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the operator dimension.
    pub fn v_cycle(&self, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        assert_eq!(x.len(), self.n, "solution length mismatch");
        self.cycle(0, b, x);
    }

    fn smooth(&self, level: &Level, b: &[f64], x: &mut [f64], sweeps: usize) {
        let n = x.len();
        let mut ax = vec![0.0; n];
        for _ in 0..sweeps {
            level.a.mul_vec_into(x, &mut ax);
            for i in 0..n {
                x[i] += self.opts.omega * level.inv_diag[i] * (b[i] - ax[i]);
            }
        }
    }

    fn cycle(&self, depth: usize, b: &[f64], x: &mut [f64]) {
        let Some(level) = self.levels.get(depth) else {
            let solved = self
                .coarse
                .solve(b)
                .expect("coarse dimension fixed at construction");
            x.copy_from_slice(&solved);
            return;
        };
        self.smooth(level, b, x, self.opts.nu_pre);
        // Restrict the residual.
        let mut r = vec![0.0; b.len()];
        level.a.mul_vec_into(x, &mut r);
        for (ri, bi) in r.iter_mut().zip(b) {
            *ri = bi - *ri;
        }
        let rc = level.r.mul_vec(&r).expect("hierarchy dimensions agree");
        // Coarse-grid correction.
        let mut ec = vec![0.0; rc.len()];
        self.cycle(depth + 1, &rc, &mut ec);
        let e = level.p.mul_vec(&ec).expect("hierarchy dimensions agree");
        for (xi, ei) in x.iter_mut().zip(&e) {
            *xi += ei;
        }
        self.smooth(level, b, x, self.opts.nu_post);
    }

    /// Solves `A·x = b` by standalone V-cycle iteration from the optional
    /// warm start `x0`, stopping at `‖b − A·x‖ ≤ rel_tol·‖b‖`.
    ///
    /// # Errors
    ///
    /// * [`NumError::Dimension`] on mismatched vector lengths,
    /// * [`NumError::NoConvergence`] if `max_cycles` V-cycles do not reach
    ///   the tolerance.
    pub fn solve(
        &self,
        b: &[f64],
        x0: Option<&[f64]>,
        rel_tol: f64,
        max_cycles: usize,
    ) -> Result<CgSolution> {
        if b.len() != self.n || x0.is_some_and(|x| x.len() != self.n) {
            return Err(NumError::Dimension {
                detail: format!(
                    "multigrid solve needs length-{} vectors, got b {} and x0 {:?}",
                    self.n,
                    b.len(),
                    x0.map(<[f64]>::len)
                ),
            });
        }
        let b_norm = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        if b_norm == 0.0 {
            return Ok(CgSolution {
                x: vec![0.0; self.n],
                iterations: 0,
                relative_residual: 0.0,
            });
        }
        if self.levels.is_empty() {
            // Single-level hierarchy: the Cholesky solve is exact.
            let x = self.coarse.solve(b).expect("dimension checked above");
            return Ok(CgSolution {
                x,
                iterations: 1,
                relative_residual: 0.0,
            });
        }
        let mut x = x0.map_or_else(|| vec![0.0; self.n], <[f64]>::to_vec);
        let mut ax = vec![0.0; self.n];
        let mut residual = f64::INFINITY;
        for cycle in 0..=max_cycles {
            self.levels[0].a.mul_vec_into(&x, &mut ax);
            residual = ax
                .iter()
                .zip(b)
                .map(|(a, b)| (b - a) * (b - a))
                .sum::<f64>()
                .sqrt()
                / b_norm;
            if residual <= rel_tol {
                return Ok(CgSolution {
                    x,
                    iterations: cycle,
                    relative_residual: residual,
                });
            }
            if cycle < max_cycles {
                self.v_cycle(b, &mut x);
            }
        }
        Err(NumError::NoConvergence {
            iterations: max_cycles,
            residual,
            dimension: self.n,
        })
    }
}

/// Reciprocal of the operator diagonal, validated positive.
fn invert_diagonal(a: &CsrMatrix) -> Result<Vec<f64>> {
    let d = a.diagonal();
    if d.iter().any(|&v| v <= 0.0) {
        return Err(NumError::NotPositiveDefinite);
    }
    Ok(d.iter().map(|&v| 1.0 / v).collect())
}

impl Preconditioner for Multigrid {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.fill(0.0);
        if self.levels.is_empty() {
            // Degenerate single-level hierarchy: the V-cycle is the exact
            // coarse solve.
            let solved = self.coarse.solve(r).expect("dimension fixed");
            z.copy_from_slice(&solved);
            return;
        }
        self.v_cycle(r, z);
    }

    fn name(&self) -> &'static str {
        "multigrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::{solve_pcg, CgOptions, JacobiPreconditioner};

    /// 5-point conductance operator matching the thermal grid's structure.
    fn grid_operator(nx: usize, ny: usize, g_lat: f64, g_v: f64) -> CsrMatrix {
        let n = nx * ny;
        let mut coo = CooMatrix::new(n, n);
        for iy in 0..ny {
            for ix in 0..nx {
                let i = iy * nx + ix;
                let mut d = g_v;
                for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
                    let (jx, jy) = (ix as i64 + dx, iy as i64 + dy);
                    if (0..nx as i64).contains(&jx) && (0..ny as i64).contains(&jy) {
                        coo.push(i, (jy as usize) * nx + jx as usize, -g_lat);
                        d += g_lat;
                    }
                }
                coo.push(i, i, d);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn standalone_solve_matches_cg() {
        let (nx, ny) = (32, 32);
        let a = grid_operator(nx, ny, 0.25, 1e-4);
        let b: Vec<f64> = (0..nx * ny).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mg = Multigrid::new(&a, nx, ny, &MultigridOptions::default()).unwrap();
        let mg_sol = mg.solve(&b, None, 1e-10, 100).unwrap();
        let cg_sol = solve_pcg(
            &a,
            &b,
            None,
            &JacobiPreconditioner::new(&a).unwrap(),
            &CgOptions {
                rel_tol: 1e-12,
                max_iter: 50_000,
                jacobi_precondition: true,
            },
        )
        .unwrap();
        let scale = cg_sol.x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (m, c) in mg_sol.x.iter().zip(&cg_sol.x) {
            assert!((m - c).abs() < 1e-6 * scale, "{m} vs {c}");
        }
    }

    #[test]
    fn cycle_count_is_resolution_independent() {
        // The whole point of multigrid: V-cycle counts stay O(1) as the
        // grid refines, while CG iteration counts grow.
        let opts = MultigridOptions::default();
        let mut cycles = Vec::new();
        for side in [16usize, 32, 64] {
            // Vertical conductance scales with cell area (total fixed),
            // matching the thermal grid's refinement behaviour.
            let a = grid_operator(side, side, 0.25, 2.0 / (side * side) as f64);
            let b = vec![1.0; side * side];
            let mg = Multigrid::new(&a, side, side, &opts).unwrap();
            let sol = mg.solve(&b, None, 1e-9, 200).unwrap();
            cycles.push(sol.iterations);
        }
        let max = *cycles.iter().max().unwrap();
        let min = *cycles.iter().min().unwrap();
        assert!(
            max <= min + 10 && max < 60,
            "cycle counts grew with resolution: {cycles:?}"
        );
    }

    #[test]
    fn mgcg_beats_jacobi_iterations_on_large_grid() {
        let (nx, ny) = (48, 48);
        let a = grid_operator(nx, ny, 0.25, 1e-6);
        let b = vec![0.01; nx * ny];
        let opts = CgOptions {
            rel_tol: 1e-9,
            max_iter: 50_000,
            jacobi_precondition: true,
        };
        let jac = solve_pcg(&a, &b, None, &JacobiPreconditioner::new(&a).unwrap(), &opts).unwrap();
        let mg = Multigrid::new(&a, nx, ny, &MultigridOptions::default()).unwrap();
        let mgcg = solve_pcg(&a, &b, None, &mg, &opts).unwrap();
        assert!(
            mgcg.iterations * 5 < jac.iterations,
            "mgcg {} vs jacobi {}",
            mgcg.iterations,
            jac.iterations
        );
        let scale = jac.x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (m, c) in mgcg.x.iter().zip(&jac.x) {
            assert!((m - c).abs() < 1e-6 * scale);
        }
    }

    #[test]
    fn non_power_of_two_and_rectangular_grids_work() {
        for (nx, ny) in [(20usize, 12usize), (17, 31), (9, 9)] {
            let a = grid_operator(nx, ny, 1.0, 0.01);
            let b = vec![1.0; nx * ny];
            let mg = Multigrid::new(&a, nx, ny, &MultigridOptions::default()).unwrap();
            let sol = mg.solve(&b, None, 1e-9, 200).unwrap();
            assert!(sol.relative_residual <= 1e-9, "{nx}x{ny} did not converge");
        }
    }

    #[test]
    fn tiny_grid_degenerates_to_direct_solve() {
        let (nx, ny) = (4, 4);
        let a = grid_operator(nx, ny, 1.0, 0.5);
        let mg = Multigrid::new(&a, nx, ny, &MultigridOptions::default()).unwrap();
        assert_eq!(mg.n_levels(), 1);
        let b = vec![1.0; 16];
        let sol = mg.solve(&b, None, 1e-12, 3).unwrap();
        assert_eq!(sol.iterations, 1);
        let r = a.mul_vec(&sol.x).unwrap();
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-9);
        }
    }

    #[test]
    fn warm_start_skips_cycles() {
        let (nx, ny) = (16, 16);
        let a = grid_operator(nx, ny, 0.25, 1e-3);
        let b = vec![1.0; nx * ny];
        let mg = Multigrid::new(&a, nx, ny, &MultigridOptions::default()).unwrap();
        let cold = mg.solve(&b, None, 1e-10, 100).unwrap();
        let warm = mg.solve(&b, Some(&cold.x), 1e-10, 100).unwrap();
        assert_eq!(warm.iterations, 0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = grid_operator(4, 4, 1.0, 1.0);
        assert!(matches!(
            Multigrid::new(&a, 5, 5, &MultigridOptions::default()),
            Err(NumError::Dimension { .. })
        ));
        let mg = Multigrid::new(&a, 4, 4, &MultigridOptions::default()).unwrap();
        assert!(matches!(
            mg.solve(&[1.0; 9], None, 1e-9, 10),
            Err(NumError::Dimension { .. })
        ));
    }
}
