//! Runtime-dispatched, std-only SIMD-style lane layer for the hot
//! transcendental kernels.
//!
//! The reliability engines bottom out in three scalar loops: the StFast
//! `(u, v)` quadrature grids, the hybrid `(γ, b)` table fill and the MC
//! `[block][bin][t]` weight tables — all dominated by `exp`, `exp_m1`
//! and `ln_1p` calls. This module replaces those with *array-of-lanes*
//! kernels: plain `[f64; W]` chunks evaluated by branch-free
//! range-reduction + polynomial cores that LLVM auto-vectorizes, wrapped
//! in `#[target_feature]` clones so one binary carries portable, AVX2 and
//! AVX-512F code paths selected once at startup.
//!
//! # Lane widths and determinism
//!
//! The active width is picked once (default [`LaneWidth::W8`]) and can be
//! overridden with `STATOBD_LANES=1|4|8` for debugging, or
//! programmatically via [`force_width`] (benches, equivalence tests):
//!
//! * **Width 1** routes every call through the exact `std` libm
//!   expressions the engines used before this module existed — results
//!   are bit-identical to the historical scalar code.
//! * **Widths 4 and 8** use the polynomial cores. The cores are
//!   *elementwise deterministic*: they contain only IEEE-754 `+`/`*`/`/`
//!   and bit manipulation (no FMA contraction, no reductions), so a given
//!   input produces the same bits regardless of lane position, chunk
//!   boundary, vector width, or which ISA clone ran. Width 4 and width 8
//!   therefore agree **bitwise**; they differ from width 1 by the
//!   polynomial-vs-libm rounding (≈2 ulp-class, see below).
//!
//! Reductions are *not* performed here — callers keep their own
//! accumulation order, which is how the engines preserve cross-thread and
//! batched-vs-scalar bit-identity at any width.
//!
//! # Error budget
//!
//! Measured against `std` (`f64::exp` etc.) over the engines' argument
//! ranges (property-tested in `tests/simd_proptests.rs`):
//!
//! * [`exp`](F64Lanes::exp): ≤ 2 ulp-class (Cody–Waite reduction,
//!   degree-13 polynomial, exact power-of-two scaling; saturates to
//!   `0`/`+∞` outside the finite window like libm).
//! * [`exp_m1`](F64Lanes::exp_m1): ≤ 4 ulp-class (dedicated polynomial
//!   for `|x| ≤ ln2/2`, `exp(x) − 1` elsewhere where no cancellation
//!   occurs).
//! * [`ln_1p`](F64Lanes::ln_1p): ≤ 4 ulp-class (`2·atanh(x/(2+x))` odd
//!   polynomial for `x ∈ [−1/3, 1/2]`, exponent split of `1 + x`
//!   elsewhere).
//!
//! The engine-level acceptance gate on derived probabilities is `1e-12`
//! relative — two orders looser than these kernels deliver.

use std::sync::atomic::{AtomicU8, Ordering};

// ---------------------------------------------------------------------------
// Width selection and ISA dispatch
// ---------------------------------------------------------------------------

/// Number of f64 lanes processed per kernel chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneWidth {
    /// Scalar fallback: bit-identical to the historical `std` libm code.
    W1,
    /// Four lanes per chunk (one AVX2 register).
    W4,
    /// Eight lanes per chunk (one AVX-512 register, two AVX2 registers).
    W8,
}

impl LaneWidth {
    /// The width as a lane count (1, 4 or 8).
    pub fn lanes(self) -> usize {
        match self {
            LaneWidth::W1 => 1,
            LaneWidth::W4 => 4,
            LaneWidth::W8 => 8,
        }
    }

    /// Parses `"1"`, `"4"` or `"8"` (the accepted `STATOBD_LANES`
    /// values); anything else is `None`.
    pub fn parse(s: &str) -> Option<LaneWidth> {
        match s.trim() {
            "1" => Some(LaneWidth::W1),
            "4" => Some(LaneWidth::W4),
            "8" => Some(LaneWidth::W8),
            _ => None,
        }
    }
}

impl std::fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.lanes())
    }
}

/// `WIDTH` values: 0 = not yet initialized, otherwise the lane count.
static WIDTH: AtomicU8 = AtomicU8::new(0);
/// Where the active width came from: 0 unset, 1 default, 2 env, 3 forced.
static WIDTH_SOURCE: AtomicU8 = AtomicU8::new(0);

fn width_from_env() -> (LaneWidth, u8) {
    match std::env::var("STATOBD_LANES") {
        Ok(v) => match LaneWidth::parse(&v) {
            Some(w) => (w, 2),
            None => (LaneWidth::W8, 1),
        },
        Err(_) => (LaneWidth::W8, 1),
    }
}

/// The lane width every slice kernel currently dispatches to.
///
/// Resolved on first use from `STATOBD_LANES` (default 8) and cached;
/// [`force_width`] overrides it at runtime.
pub fn active_width() -> LaneWidth {
    match WIDTH.load(Ordering::Relaxed) {
        1 => LaneWidth::W1,
        4 => LaneWidth::W4,
        8 => LaneWidth::W8,
        _ => {
            let (w, src) = width_from_env();
            WIDTH_SOURCE.store(src, Ordering::Relaxed);
            WIDTH.store(w.lanes() as u8, Ordering::Relaxed);
            w
        }
    }
}

/// Overrides the dispatch width process-wide (`Some(w)`), or restores the
/// `STATOBD_LANES`/default selection (`None`).
///
/// Intended for benches and cross-width equivalence tests; production
/// code configures the width through the environment once at startup.
/// Tests that force widths must serialize on a lock — the setting is a
/// process-global.
pub fn force_width(w: Option<LaneWidth>) {
    match w {
        Some(w) => {
            WIDTH_SOURCE.store(3, Ordering::Relaxed);
            WIDTH.store(w.lanes() as u8, Ordering::Relaxed);
        }
        None => {
            let (w, src) = width_from_env();
            WIDTH_SOURCE.store(src, Ordering::Relaxed);
            WIDTH.store(w.lanes() as u8, Ordering::Relaxed);
        }
    }
}

/// Instruction-set tier the vector kernels were dispatched to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Isa {
    /// Baseline codegen (SSE2 on x86-64, NEON-ish elsewhere).
    Portable,
    /// AVX2 clone (256-bit lanes).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// AVX-512F clone (512-bit lanes).
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

/// `ISA` values: 0 unset, 1 portable, 2 avx2, 3 avx512.
static ISA: AtomicU8 = AtomicU8::new(0);

fn isa() -> Isa {
    match ISA.load(Ordering::Relaxed) {
        1 => Isa::Portable,
        #[cfg(target_arch = "x86_64")]
        2 => Isa::Avx2,
        #[cfg(target_arch = "x86_64")]
        3 => Isa::Avx512,
        _ => {
            let detected = detect_isa();
            ISA.store(
                match detected {
                    Isa::Portable => 1,
                    #[cfg(target_arch = "x86_64")]
                    Isa::Avx2 => 2,
                    #[cfg(target_arch = "x86_64")]
                    Isa::Avx512 => 3,
                },
                Ordering::Relaxed,
            );
            detected
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_isa() -> Isa {
    if std::arch::is_x86_feature_detected!("avx512f") {
        Isa::Avx512
    } else if std::arch::is_x86_feature_detected!("avx2") {
        Isa::Avx2
    } else {
        Isa::Portable
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_isa() -> Isa {
    Isa::Portable
}

fn isa_name() -> &'static str {
    match isa() {
        Isa::Portable => "portable",
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => "avx2",
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => "avx512f",
    }
}

/// Human-readable dispatch decision, e.g. `"8 lanes (avx512f, default)"`
/// or `"1 lane (scalar libm, env)"` — surfaced by `analyze --timings` and
/// the serve `stats` op so bench runs are self-describing.
pub fn dispatch_label() -> String {
    let w = active_width();
    let source = match WIDTH_SOURCE.load(Ordering::Relaxed) {
        2 => "env",
        3 => "forced",
        _ => "default",
    };
    match w {
        LaneWidth::W1 => format!("1 lane (scalar libm, {source})"),
        _ => format!("{} lanes ({}, {source})", w.lanes(), isa_name()),
    }
}

// ---------------------------------------------------------------------------
// Polynomial cores (elementwise deterministic: IEEE +/*// and bit ops only)
// ---------------------------------------------------------------------------

/// `1.5 · 2^52`: adding then subtracting rounds to the nearest integer
/// (branch-free, vectorizable) for |x| < 2^51.
const ROUND_MAGIC: f64 = 6_755_399_441_055_744.0;
/// High part of ln 2 with 21 trailing zero bits, so `k · LN2_HI` is exact
/// for the |k| ≤ 1076 this module produces.
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
/// Low part: `LN2_HI + LN2_LO` is ln 2 to ~107 bits.
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
/// Taylor coefficients 1/k! for k = 2..=13: the tail polynomial
/// `P(r) = Σ r^(k-2)/k!` shared by `exp` (`e^r = 1 + r + r²·P(r)`) and
/// `exp_m1` (`e^x − 1 = x + x²·P(x)` for small x). The degree-13 cutoff
/// leaves a truncation error below 1e-17 relative on |r| ≤ ln2/2.
const EXP_TAIL: [f64; 12] = [
    1.0 / 2.0,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5_040.0,
    1.0 / 40_320.0,
    1.0 / 362_880.0,
    1.0 / 3_628_800.0,
    1.0 / 39_916_800.0,
    1.0 / 479_001_600.0,
    1.0 / 6_227_020_800.0,
];

/// Estrin evaluation of the shared tail polynomial `P(r)`.
///
/// Estrin rather than Horner because the hot consumers are
/// latency-bound: the fleet bisection's serial step chain runs this on
/// two-vector tiles where a 12-deep Horner chain (~8 cycles per
/// mul+add level) IS the critical path. Estrin's tree needs the same
/// multiply count at ~4 levels of depth. The reassociated rounding
/// stays in the kernels' ulp class (the truncation analysis on the
/// coefficients is unchanged); like any core edit it moves lane-path
/// bits, which the cross-path gates bound relatively, never bitwise.
#[inline(always)]
fn exp_tail(r: f64) -> f64 {
    let c = &EXP_TAIL;
    let r2 = r * r;
    let r4 = r2 * r2;
    let r8 = r4 * r4;
    let p01 = c[0] + c[1] * r;
    let p23 = c[2] + c[3] * r;
    let p45 = c[4] + c[5] * r;
    let p67 = c[6] + c[7] * r;
    let p89 = c[8] + c[9] * r;
    let pab = c[10] + c[11] * r;
    let q0 = p01 + p23 * r2;
    let q1 = p45 + p67 * r2;
    let q2 = p89 + pab * r2;
    (q0 + q1 * r4) + q2 * r8
}

/// Branch-free `exp(x)` core: clamp to the finite-result window,
/// Cody–Waite reduction `x = k·ln2 + r`, degree-13 polynomial on `r`,
/// exact two-step `2^k` scaling (split so boundary magnitudes near the
/// overflow/subnormal edges round correctly). NaN propagates; `±∞` and
/// out-of-window magnitudes saturate to `+∞`/`0` exactly like libm.
#[inline(always)]
fn exp_core(x: f64) -> f64 {
    // Outside [-746, 710] the scaled result is exactly 0 or +inf anyway,
    // and the clamp keeps k·LN2_HI in its exact range. NaN survives clamp.
    let x = x.clamp(-746.0, 710.0);
    let y = x * std::f64::consts::LOG2_E + ROUND_MAGIC;
    let kf = y - ROUND_MAGIC;
    let r = (x - kf * LN2_HI) - kf * LN2_LO;
    let poly = 1.0 + r + (r * r) * exp_tail(r);
    // `k` is read straight out of the round-magic sum: `y = 2^52 + 2^51
    // + k` stores `k` two's-complement in the low 32 mantissa bits (the
    // clamp bounds |k| ≤ 1076 ≪ 2^31). A `kf as i64` cast computes the
    // same integer but scalarizes every lane loop — packed f64→i64
    // needs AVX-512DQ, which neither dispatch tier enables — while the
    // bit extraction is plain integer ops on every tier. NaN input: `y`
    // is NaN, so `ki` is payload garbage, but `poly` (= NaN) still
    // propagates through the final scaling multiplies.
    let ki = (y.to_bits() as u32 as i32) as i64;
    let k1 = ki >> 1;
    let k2 = ki - k1;
    let s1 = f64::from_bits(((1023 + k1) as u64) << 52);
    let s2 = f64::from_bits(((1023 + k2) as u64) << 52);
    (poly * s1) * s2
}

/// Switch point for the dedicated small-|x| `exp_m1` polynomial (ln 2 / 2).
const EXPM1_SWITCH: f64 = 0.346_573_590_279_972_65;

/// Branchless bitwise select: `cond ? a : b`, bit-exact in either arm.
///
/// The cores pick between precomputed arms with this instead of `if` —
/// a data-dependent branch in the unrolled chunk bodies costs a
/// misprediction whenever neighbouring nodes straddle a switch point,
/// and quadrature argument sweeps cross them constantly.
#[inline(always)]
fn select(cond: bool, a: f64, b: f64) -> f64 {
    let mask = (cond as u64).wrapping_neg();
    f64::from_bits((a.to_bits() & mask) | (b.to_bits() & !mask))
}

/// `exp(x) − 1` core. Small arguments use `x + x²·P(x)` (no cancellation);
/// elsewhere `exp(x) − 1` is safe because the result magnitude is ≥ 0.29.
/// Both sides are evaluated and combined with a branchless [`select`] so
/// the chunk loops vectorize without per-element branches.
///
/// The large-argument side floors `x` at −54: below that `exp(x)` is
/// under a quarter-ulp of the −1 result (2⁻⁷⁷), and the floor keeps
/// `exp_core`'s `2^k` scaling out of the subnormal range — saturated
/// hazards (`x` in the −100s) would otherwise trigger an FP assist on
/// every multiply, an order-of-magnitude per-element penalty.
#[inline(always)]
fn exp_m1_core(x: f64) -> f64 {
    let small = x + (x * x) * exp_tail(x);
    let big = exp_core(x.max(-54.0)) - 1.0;
    // NaN must take the small arm: `max` above would swallow it
    // (`NaN.max(-54.0)` is −54), while `x + …` propagates it.
    select(x.abs() > EXPM1_SWITCH, big, small)
}

/// Odd-series coefficients `1/(2k+1)` for `atanh(s) = s · Q(s²)`,
/// truncated after `s^21` — relative truncation below 2e-17 for the
/// |s| ≤ 0.2 the `ln_1p` reductions produce.
const ATANH_TAIL: [f64; 11] = [
    1.0,
    1.0 / 3.0,
    1.0 / 5.0,
    1.0 / 7.0,
    1.0 / 9.0,
    1.0 / 11.0,
    1.0 / 13.0,
    1.0 / 15.0,
    1.0 / 17.0,
    1.0 / 19.0,
    1.0 / 21.0,
];

/// Estrin evaluation of `Q(w) = Σ w^k/(2k+1)` — same shallow-tree
/// rationale as [`exp_tail`]: the bisection's serial step chain is
/// bound by this polynomial's depth, not its multiply count.
#[inline(always)]
fn atanh_poly(w: f64) -> f64 {
    let c = &ATANH_TAIL;
    let w2 = w * w;
    let w4 = w2 * w2;
    let w8 = w4 * w4;
    let p01 = c[0] + c[1] * w;
    let p23 = c[2] + c[3] * w;
    let p45 = c[4] + c[5] * w;
    let p67 = c[6] + c[7] * w;
    let p89 = c[8] + c[9] * w;
    let q0 = p01 + p23 * w2;
    let q1 = p45 + p67 * w2;
    let q2 = p89 + c[10] * w2;
    (q0 + q1 * w4) + q2 * w8
}

/// `ln(1 + x)` core. `x ∈ [−1/3, 1/2]` uses `2·atanh(x/(2+x))` directly
/// on `x` (no `1 + x` rounding; the window is asymmetric so the reduced
/// argument stays at `|s| ≤ 0.2` on both sides). Other arguments split
/// `u = 1 + x` into exponent and mantissa (`u` is exact by Sterbenz for
/// `x ∈ [−1, −1/2]`, and elsewhere its half-ulp rounding is dwarfed by
/// `|ln u| ≥ 0.4`). Domain edges (`x < −1` → NaN, `x = −1` → −∞,
/// `+∞` → +∞, NaN → NaN) are fixed up with value-dependent selects,
/// keeping the core elementwise deterministic and if-convertible.
#[inline(always)]
fn ln_1p_core(x: f64) -> f64 {
    let s_small = x / (2.0 + x);
    let small = 2.0 * s_small * atanh_poly(s_small * s_small);

    let u = 1.0 + x;
    let bits = u.to_bits();
    let e_raw = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let m_raw = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | (1023u64 << 52));
    let shrink = m_raw > std::f64::consts::SQRT_2;
    let m = select(shrink, 0.5 * m_raw, m_raw);
    let e = (e_raw + shrink as i64) as f64;
    let s_big = (m - 1.0) / (m + 1.0);
    let big = e * LN2_HI + (2.0 * s_big * atanh_poly(s_big * s_big) + e * LN2_LO);

    let fast = select((-0.333_333_333_333_333_3..=0.5).contains(&x), small, big);
    let fixed = select(x == -1.0, f64::NEG_INFINITY, fast);
    let fixed = select(x == f64::INFINITY, f64::INFINITY, fixed);
    select(x.is_nan() || x < -1.0, f64::NAN, fixed)
}

// ---------------------------------------------------------------------------
// F64Lanes: the array-of-lanes value type
// ---------------------------------------------------------------------------

/// A `W`-wide bundle of `f64` lanes evaluated elementwise by the
/// polynomial cores.
///
/// This is the value-level view of the lane layer: `W` is a compile-time
/// constant and every operation maps lanes independently, so results are
/// identical to the slice kernels at widths 4/8 (and to each other at any
/// `W`). The slice drivers ([`exp_slice`] & co.) are the dispatched fast
/// path engines should prefer for bulk data; `F64Lanes` exists for
/// composing custom lane arithmetic and for width-independent testing of
/// the cores.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct F64Lanes<const W: usize>(pub [f64; W]);

impl<const W: usize> F64Lanes<W> {
    /// All lanes set to `v`.
    pub fn splat(v: f64) -> Self {
        F64Lanes([v; W])
    }

    /// Loads `W` lanes from the front of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() < W`.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut lanes = [0.0; W];
        lanes.copy_from_slice(&xs[..W]);
        F64Lanes(lanes)
    }

    /// The lanes as a plain array.
    pub fn to_array(self) -> [f64; W] {
        self.0
    }

    /// Elementwise map over the lanes.
    pub fn map(self, f: impl Fn(f64) -> f64) -> Self {
        let mut lanes = self.0;
        for lane in &mut lanes {
            *lane = f(*lane);
        }
        F64Lanes(lanes)
    }

    /// Elementwise vectorized `exp` (≤ 2 ulp-class, see module docs).
    pub fn exp(self) -> Self {
        self.map(exp_core)
    }

    /// Elementwise vectorized `exp(x) − 1` (≤ 4 ulp-class).
    pub fn exp_m1(self) -> Self {
        self.map(exp_m1_core)
    }

    /// Elementwise vectorized `ln(1 + x)` (≤ 4 ulp-class).
    pub fn ln_1p(self) -> Self {
        self.map(ln_1p_core)
    }
}

impl<const W: usize> std::ops::Add for F64Lanes<W> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane += r;
        }
        F64Lanes(lanes)
    }
}

impl<const W: usize> std::ops::Sub for F64Lanes<W> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane -= r;
        }
        F64Lanes(lanes)
    }
}

impl<const W: usize> std::ops::Mul for F64Lanes<W> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        let mut lanes = self.0;
        for (lane, r) in lanes.iter_mut().zip(rhs.0) {
            *lane *= r;
        }
        F64Lanes(lanes)
    }
}

// ---------------------------------------------------------------------------
// Slice kernels with per-ISA clones
// ---------------------------------------------------------------------------

/// An elementwise kernel instantiable inside the `#[target_feature]`
/// clones (a trait rather than a closure so monomorphization carries the
/// captured state — e.g. the fused kernel's scale — into each ISA body).
trait Elem: Copy {
    fn eval(self, x: f64) -> f64;
}

#[derive(Clone, Copy)]
struct ExpOp;
impl Elem for ExpOp {
    #[inline(always)]
    fn eval(self, x: f64) -> f64 {
        exp_core(x)
    }
}

#[derive(Clone, Copy)]
struct ExpM1Op;
impl Elem for ExpM1Op {
    #[inline(always)]
    fn eval(self, x: f64) -> f64 {
        exp_m1_core(x)
    }
}

#[derive(Clone, Copy)]
struct Ln1pOp;
impl Elem for Ln1pOp {
    #[inline(always)]
    fn eval(self, x: f64) -> f64 {
        ln_1p_core(x)
    }
}

/// First pass of the StFast/hybrid node term: `−scale·exp(x)` (the
/// negated hazard). The term is evaluated in two lane passes rather
/// than one fused op — a single op would inline `exp_core` twice (once
/// directly, once inside the finish arm's large-argument side), and the
/// resulting register pressure in the unrolled chunk bodies costs more
/// than the intermediate's L1 round-trip saves.
#[derive(Clone, Copy)]
struct NegHazardOp {
    scale: f64,
}
impl Elem for NegHazardOp {
    #[inline(always)]
    fn eval(self, x: f64) -> f64 {
        -self.scale * exp_core(x)
    }
}

/// Small-|z| arm of the failure term: `−expm1(z) = −(z + z²·P(z))`.
#[inline(always)]
fn failure_small(z: f64) -> f64 {
    -(z + (z * z) * exp_tail(z))
}

/// `|z|` bound for the two-term arm: dropping the `z³/6` series term
/// costs a relative `z²/6 ≤ 6.7·10⁻¹⁵`, two orders inside the 1e-12
/// lane budget. Quadrature arguments are dominated by this regime —
/// hazards vanish at early times — so the cheap arm carries most nodes.
const FAILURE_TINY_Z: f64 = 2e-7;

/// Tiny-|z| arm of the failure term: `−expm1(z) ≈ −(z + z²/2)`.
#[inline(always)]
fn failure_tiny(z: f64) -> f64 {
    -(z + 0.5 * (z * z))
}

/// Large-|z| arm of the failure term: `1 − e^z` (`z ≤ 0` by
/// construction). The −54 floor keeps `exp_core` out of the subnormal
/// range (see [`exp_m1_core`]); the select preserves NaN, which `max`
/// would swallow.
#[inline(always)]
fn failure_big(z: f64) -> f64 {
    // `!(z <= -54)` keeps NaN on the `z` side (a `max` or `||` would
    // either swallow it or emit a short-circuit branch).
    let floored = select(!(z <= -54.0), z, -54.0);
    1.0 - exp_core(floored)
}

/// Single-pass failure term for a tile wholly below the small-|z|
/// threshold: `x ↦ −expm1(−scale·e^x)` via the small arm, with the tiny
/// arm still selected **per element** for `x < x_tiny` — a tile screen
/// only proves `x < x_small` for every element, and the arm choice must
/// stay a function of `(x, scale)` alone or results would depend on how
/// callers slice the input into tiles. Only one `exp_core` is inlined
/// (both arms are polynomial), so unlike the general fused term this op
/// fits the vector register budget — and it skips the intermediate-`z`
/// store/reload that the two-pass evaluation pays. Bits are identical
/// to the two-pass composition: `z` is computed by the same expression
/// and the arms by the same polynomials and select.
#[derive(Clone, Copy)]
struct SmallFusedOp {
    scale: f64,
    x_tiny: f64,
}
impl Elem for SmallFusedOp {
    #[inline(always)]
    fn eval(self, x: f64) -> f64 {
        let z = -self.scale * exp_core(x);
        select(x < self.x_tiny, failure_tiny(z), failure_small(z))
    }
}

/// Single-pass failure term for a tile wholly in the tiny-|z| regime:
/// one `exp_core` plus the two-term arm.
#[derive(Clone, Copy)]
struct TinyFusedOp {
    scale: f64,
}
impl Elem for TinyFusedOp {
    #[inline(always)]
    fn eval(self, x: f64) -> f64 {
        failure_tiny(-self.scale * exp_core(x))
    }
}

/// Second pass of the big-arm-only failure route: `z ↦ 1 − e^z` via
/// [`failure_big`]. Reachable only through
/// [`failure_term_slice_bounded`] with a caller-certified `lo ≥
/// x_small`, which proves every element takes the big arm of
/// [`failure_finish_elem`] — so this op is bit-identical to the 3-arm
/// finish while inlining one `exp_core` and no small/tiny polynomials.
#[derive(Clone, Copy)]
struct BigZOp;
impl Elem for BigZOp {
    #[inline(always)]
    fn eval(self, z: f64) -> f64 {
        failure_big(z)
    }
}

#[inline(always)]
fn failure_finish_elem(x: f64, z: f64, x_tiny: f64, x_small: f64) -> f64 {
    let r = select(x < x_small, failure_small(z), failure_big(z));
    select(x < x_tiny, failure_tiny(z), r)
}

#[inline(always)]
fn failure_finish_body<const W: usize>(
    xs: &[f64],
    zs: &[f64],
    x_tiny: f64,
    x_small: f64,
    out: &mut [f64],
) {
    let n = xs.len();
    let rem = n - n % W;
    for ((xc, zc), oc) in xs[..rem]
        .chunks_exact(W)
        .zip(zs[..rem].chunks_exact(W))
        .zip(out[..rem].chunks_exact_mut(W))
    {
        let xc: &[f64; W] = xc.try_into().expect("chunks_exact yields W");
        let zc: &[f64; W] = zc.try_into().expect("chunks_exact yields W");
        let oc: &mut [f64; W] = oc.try_into().expect("chunks_exact yields W");
        for w in 0..W {
            oc[w] = failure_finish_elem(xc[w], zc[w], x_tiny, x_small);
        }
    }
    for j in rem..n {
        out[j] = failure_finish_elem(xs[j], zs[j], x_tiny, x_small);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn failure_finish_avx2<const W: usize>(
    xs: &[f64],
    zs: &[f64],
    x_tiny: f64,
    x_small: f64,
    out: &mut [f64],
) {
    failure_finish_body::<W>(xs, zs, x_tiny, x_small, out);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn failure_finish_avx512<const W: usize>(
    xs: &[f64],
    zs: &[f64],
    x_tiny: f64,
    x_small: f64,
    out: &mut [f64],
) {
    failure_finish_body::<W>(xs, zs, x_tiny, x_small, out);
}

fn failure_finish<const W: usize>(
    xs: &[f64],
    zs: &[f64],
    x_tiny: f64,
    x_small: f64,
    out: &mut [f64],
) {
    match isa() {
        Isa::Portable => failure_finish_body::<W>(xs, zs, x_tiny, x_small, out),
        // SAFETY: `isa()` only reports tiers confirmed by runtime CPUID
        // feature detection on this machine.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { failure_finish_avx2::<W>(xs, zs, x_tiny, x_small, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { failure_finish_avx512::<W>(xs, zs, x_tiny, x_small, out) },
    }
}

/// Chunked elementwise map: full `W`-lane chunks through fixed-size
/// arrays (the shape LLVM vectorizes), remainder through the same
/// elementwise core — so results never depend on where chunk boundaries
/// fall.
#[inline(always)]
fn map_slice<const W: usize, K: Elem>(k: K, xs: &[f64], out: &mut [f64]) {
    let n = xs.len();
    let mut i = 0;
    while i + W <= n {
        let mut lanes = [0.0; W];
        lanes.copy_from_slice(&xs[i..i + W]);
        for lane in &mut lanes {
            *lane = k.eval(*lane);
        }
        out[i..i + W].copy_from_slice(&lanes);
        i += W;
    }
    for j in i..n {
        out[j] = k.eval(xs[j]);
    }
}

fn run_portable<const W: usize, K: Elem>(k: K, xs: &[f64], out: &mut [f64]) {
    map_slice::<W, K>(k, xs, out);
}

/// AVX2 clone of [`map_slice`]: same IEEE arithmetic (rustc does not
/// contract mul+add without explicit FMA calls), recompiled with 256-bit
/// vector codegen.
///
/// # Safety
///
/// Caller must have verified `avx2` via `is_x86_feature_detected!`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn run_avx2<const W: usize, K: Elem>(k: K, xs: &[f64], out: &mut [f64]) {
    map_slice::<W, K>(k, xs, out);
}

/// AVX-512F clone of [`map_slice`].
///
/// # Safety
///
/// Caller must have verified `avx512f` via `is_x86_feature_detected!`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn run_avx512<const W: usize, K: Elem>(k: K, xs: &[f64], out: &mut [f64]) {
    map_slice::<W, K>(k, xs, out);
}

fn run_isa<const W: usize, K: Elem>(k: K, xs: &[f64], out: &mut [f64]) {
    match isa() {
        Isa::Portable => run_portable::<W, K>(k, xs, out),
        // SAFETY: `isa()` only reports tiers confirmed by runtime CPUID
        // feature detection on this machine.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { run_avx2::<W, K>(k, xs, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { run_avx512::<W, K>(k, xs, out) },
    }
}

/// Dispatches one slice op: width 1 runs the caller-supplied exact `std`
/// expression; widths 4/8 run the polynomial kernel on the detected ISA.
#[inline]
fn run_op<K: Elem>(k: K, xs: &[f64], out: &mut [f64], scalar: impl Fn(f64) -> f64) {
    assert_eq!(
        xs.len(),
        out.len(),
        "lane kernel input/output length mismatch"
    );
    match active_width() {
        LaneWidth::W1 => {
            for (o, &x) in out.iter_mut().zip(xs) {
                *o = scalar(x);
            }
        }
        LaneWidth::W4 => run_isa::<4, K>(k, xs, out),
        LaneWidth::W8 => run_isa::<8, K>(k, xs, out),
    }
}

/// Fills `out[i] = exp(xs[i])` through the active lane dispatch.
///
/// Width 1 is bit-identical to `f64::exp`; widths 4/8 are the ≤ 2
/// ulp-class polynomial kernel.
///
/// # Panics
///
/// Panics if `xs.len() != out.len()`.
pub fn exp_slice(xs: &[f64], out: &mut [f64]) {
    run_op(ExpOp, xs, out, f64::exp);
}

/// Fills `out[i] = exp(xs[i]) − 1` through the active lane dispatch.
///
/// Width 1 is bit-identical to `f64::exp_m1`; widths 4/8 are the ≤ 4
/// ulp-class polynomial kernel.
///
/// # Panics
///
/// Panics if `xs.len() != out.len()`.
pub fn exp_m1_slice(xs: &[f64], out: &mut [f64]) {
    run_op(ExpM1Op, xs, out, f64::exp_m1);
}

/// Fills `out[i] = ln(1 + xs[i])` through the active lane dispatch.
///
/// Width 1 is bit-identical to `f64::ln_1p`; widths 4/8 are the ≤ 4
/// ulp-class polynomial kernel.
///
/// # Panics
///
/// Panics if `xs.len() != out.len()`.
pub fn ln_1p_slice(xs: &[f64], out: &mut [f64]) {
    run_op(Ln1pOp, xs, out, f64::ln_1p);
}

// ---------------------------------------------------------------------------
// Quadrature support kernels: interleaved fills and plain reductions
// ---------------------------------------------------------------------------
//
// These are deliberately *not* ISA-dispatched: quadrature rows are often
// a few dozen nodes, so a real function call per segment (target_feature
// clones cannot inline into baseline callers) would cost more than the
// wider vectors save. Inlined at baseline codegen they still
// auto-vectorize (SSE2) and stay a small fraction of the transcendental
// kernel cost.

/// Fills `dst[i] = a + b·vs[i]` — the argument fill of a single
/// quadrature row (`s1·u + s2·v` over the `v` nodes).
///
/// # Panics
///
/// Panics if `vs.len() != dst.len()`.
#[inline(always)]
pub fn affine_slice(a: f64, b: f64, vs: &[f64], dst: &mut [f64]) {
    assert_eq!(vs.len(), dst.len(), "affine fill length mismatch");
    for (d, &v) in dst.iter_mut().zip(vs) {
        *d = a + b * v;
    }
}

/// Fills the `W`-interleaved buffer `dst[i·W + w] = a[w] + b[w]·vs[i]`
/// — the argument fill of a `W`-item batched quadrature sweep (one `v`
/// node feeding `W` integrals at once).
///
/// # Panics
///
/// Panics if `dst.len() != vs.len() · W`.
#[inline(always)]
pub fn lane_affine_fill<const W: usize>(a: &[f64; W], b: &[f64; W], vs: &[f64], dst: &mut [f64]) {
    assert_eq!(dst.len(), vs.len() * W, "interleaved fill length mismatch");
    for (chunk, &v) in dst.chunks_exact_mut(W).zip(vs) {
        let chunk: &mut [f64; W] = chunk.try_into().expect("chunks_exact yields W");
        for w in 0..W {
            chunk[w] = a[w] + b[w] * v;
        }
    }
}

/// Accumulates `acc[w] += Σ_i terms[i·W + w]` — the unweighted segment
/// reduction of a batched quadrature sweep, for callers that factor a
/// segment-constant weight out of the sum. Each lane's partial sum is
/// sequential in `i` (vectorization runs *across* the `W` lanes), so it
/// reproduces a scalar left-to-right sum bit for bit.
///
/// # Panics
///
/// Panics if `terms.len()` is not a multiple of `W`.
#[inline(always)]
pub fn lane_sum_acc<const W: usize>(terms: &[f64], acc: &mut [f64; W]) {
    assert_eq!(terms.len() % W, 0, "lane sum length mismatch");
    for chunk in terms.chunks_exact(W) {
        let chunk: &[f64; W] = chunk.try_into().expect("chunks_exact yields W");
        for w in 0..W {
            acc[w] += chunk[w];
        }
    }
}

/// Accumulates `acc[w] += Σ_k coeffs[k] · tile[k·W + w]` — one dot
/// product per lane of a `W`-interleaved SoA tile (`tile[k·W + w]` is
/// component `k` of item `w`). Each lane's accumulation is sequential in
/// `k` (vectorization runs *across* the `W` lanes) and uses plain
/// mul-then-add, so every lane reproduces the scalar left-to-right dot
/// product `acc += Σ c_k·z_k` bit for bit at any width.
///
/// # Panics
///
/// Panics if `tile.len() != coeffs.len() · W`.
#[inline(always)]
pub fn lane_dot_acc<const W: usize>(coeffs: &[f64], tile: &[f64], acc: &mut [f64; W]) {
    assert_eq!(tile.len(), coeffs.len() * W, "lane dot length mismatch");
    for (chunk, &c) in tile.chunks_exact(W).zip(coeffs) {
        let chunk: &[f64; W] = chunk.try_into().expect("chunks_exact yields W");
        for w in 0..W {
            acc[w] += c * chunk[w];
        }
    }
}

/// Accumulates `acc[w] += (Σ_k coeffs[k] · tile[k·W + w])²` — the squared
/// projection term of a variance quadratic form, one lane per item. The
/// inner dot is `k`-sequential per lane like [`lane_dot_acc`], so each
/// lane is bit-identical to the scalar `d = Σ a_k·z_k; acc += d·d`.
///
/// # Panics
///
/// Panics if `tile.len() != coeffs.len() · W`.
#[inline(always)]
pub fn lane_dot_sq_acc<const W: usize>(coeffs: &[f64], tile: &[f64], acc: &mut [f64; W]) {
    assert_eq!(tile.len(), coeffs.len() * W, "lane dot length mismatch");
    let mut d = [0.0; W];
    for (chunk, &c) in tile.chunks_exact(W).zip(coeffs) {
        let chunk: &[f64; W] = chunk.try_into().expect("chunks_exact yields W");
        for w in 0..W {
            d[w] += c * chunk[w];
        }
    }
    for w in 0..W {
        acc[w] += d[w] * d[w];
    }
}

/// Per-lane comparison mask `xs[w] <= threshold` — the branch condition
/// of a lane-parallel bisection step. NaN lanes compare false, matching
/// the scalar `if x <= t` the mask replaces.
#[inline(always)]
pub fn lane_le<const W: usize>(xs: &[f64; W], threshold: f64) -> [bool; W] {
    let mut mask = [false; W];
    for w in 0..W {
        mask[w] = xs[w] <= threshold;
    }
    mask
}

/// Per-lane select `mask[w] ? a[w] : b[w]`, bit-exact in either arm
/// (the lane-array form of the cores' branchless [`select`]) — the
/// lo/hi interval update of a lane-parallel bisection.
#[inline(always)]
pub fn lane_select<const W: usize>(mask: &[bool; W], a: &[f64; W], b: &[f64; W]) -> [f64; W] {
    let mut out = [0.0; W];
    for w in 0..W {
        out[w] = select(mask[w], a[w], b[w]);
    }
    out
}

/// Horizontal OR of a lane mask: `true` if any lane is set.
#[inline(always)]
pub fn lane_any<const W: usize>(mask: &[bool; W]) -> bool {
    mask.iter().any(|&m| m)
}

/// Horizontal AND of a lane mask: `true` if every lane is set.
#[inline(always)]
pub fn lane_all<const W: usize>(mask: &[bool; W]) -> bool {
    mask.iter().all(|&m| m)
}

/// Intermediate tile length for [`failure_term_slice`]'s two-pass
/// evaluation: 4 KiB of stack, small enough to stay L1-resident next to
/// the caller's argument and output buffers.
const FAILURE_TILE: usize = 512;

/// `1 − e^z` rounds to exactly 1.0 for every `z ≤ −FAILURE_SAT`
/// (`e^{−37.5} ≈ 5.2·10⁻¹⁷` is under half the f64 spacing below 1.0), so
/// a saturated tile can be filled with 1.0 **bit-identically** to
/// evaluating the large-argument arm — the fill is a work-skip, not an
/// approximation.
const FAILURE_SAT: f64 = 37.5;

/// The argument threshold above which [`failure_term_slice`] at lane
/// widths > 1 produces **exactly** 1.0: `x ≥ ln(FAILURE_SAT / scale)`
/// forces the large arm, whose `1 − e^z` rounds to 1.0 with two decimal
/// orders of magnitude to spare against threshold rounding (saturation
/// starts at `|z| ≈ 37.43`, the screen guarantees `|z| ≥ 37.5·(1 − ε)`).
/// Quadrature drivers use this to skip saturated node runs wholesale:
/// a run of exact ones sums to the (exactly representable) run length,
/// so the skip changes no bits. NaN for `scale ≤ 0` or non-finite, which
/// makes every `x ≥ …` screen compare false.
pub fn failure_sat_threshold(scale: f64) -> f64 {
    (FAILURE_SAT / scale).ln()
}

/// The argument threshold below which the failure term needs only the
/// polynomial arms (tiny/small — one `exp` per element, no second
/// transcendental): `x < ln(EXPM1_SWITCH / scale)` guarantees
/// `|z| < EXPM1_SWITCH` for `z = −scale·e^x`. Quadrature drivers use
/// this to group node runs by regime before calling
/// [`failure_term_slice_bounded`] — the grouping affects only which
/// screened route runs, never any element's bits. NaN for `scale ≤ 0`
/// or non-finite, which makes every `x < …` comparison false.
pub fn failure_poly_threshold(scale: f64) -> f64 {
    (EXPM1_SWITCH / scale).ln()
}

/// Fills `out[i] = −expm1(−scale · exp(xs[i]))` — the per-node failure
/// term of the StFast/hybrid quadratures (`xs` holds the log-domain
/// arguments `s1·u + s2·v`, `scale` the device area).
///
/// Width 1 reproduces the engines' historical scalar expression
/// `-(-scale * x.exp()).exp_m1()` bit for bit. Widths 4/8 evaluate the
/// term in tiled lane passes: `z = −scale·exp(x)` first, then the
/// `−expm1(z)` arm chosen **per element by `x`** against thresholds
/// derived once from `scale` (`x_tiny = ln(FAILURE_TINY_Z/scale)`,
/// `x_small = ln(EXPM1_SWITCH/scale)`, `x_sat = ln(FAILURE_SAT/scale)`).
/// Because the arm choice depends only on `(x, scale)`, a tile-level
/// screen can skip work without changing any element's bits:
///
/// * all `x ≥ x_sat` → every element's large arm rounds to exactly 1.0
///   (see [`FAILURE_SAT`]), so the tile is filled with 1.0 — zero
///   transcendentals;
/// * all `x < x_tiny` → the tiny arm `−(z + z²/2)` is three flops past
///   the hazard `exp` (see [`FAILURE_TINY_Z`]);
/// * all `x < x_small` → the small arm `−(z + z²·P(z))` needs no second
///   `exp`, so the tile costs one transcendental pass;
/// * mixed tiles evaluate all arms branchlessly per element.
///
/// The intermediate `z` is an ordinary `f64` store and every decision is
/// elementwise in `(x, scale)`, so results are identical across lane
/// position, tile boundary and caller slicing. In-situ quadrature args
/// are dominated by the first two regimes (saturated hazards at late
/// times and large defects, vanishing hazards at early times), which is
/// what lets the lane path beat libm's early-exit fast paths.
///
/// # Panics
///
/// Panics if `xs.len() != out.len()`.
pub fn failure_term_slice(xs: &[f64], scale: f64, out: &mut [f64]) {
    assert_eq!(
        xs.len(),
        out.len(),
        "lane kernel input/output length mismatch"
    );
    if active_width() == LaneWidth::W1 {
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = -(-scale * x.exp()).exp_m1();
        }
        return;
    }
    // NaN thresholds (scale ≤ 0 or non-finite) make every screen below
    // compare false, routing everything through the general path.
    let x_tiny = (FAILURE_TINY_Z / scale).ln();
    let x_small = (EXPM1_SWITCH / scale).ln();
    let x_sat = failure_sat_threshold(scale);
    failure_term_tiles(xs, scale, x_tiny, x_small, x_sat, out);
}

/// Lane-path tile walker behind [`failure_term_slice`]: per-tile regime
/// screens over precomputed thresholds. Every screened route evaluates
/// the same elementwise `(x, scale)` arms, so the screens change cost,
/// never bits.
fn failure_term_tiles(
    xs: &[f64],
    scale: f64,
    x_tiny: f64,
    x_small: f64,
    x_sat: f64,
    out: &mut [f64],
) {
    let mut tmp = [0.0; FAILURE_TILE];
    let mut i = 0;
    while i < xs.len() {
        let n = (xs.len() - i).min(FAILURE_TILE);
        let tile = &xs[i..i + n];
        if tile.iter().all(|&x| x >= x_sat) {
            out[i..i + n].fill(1.0);
            i += n;
            continue;
        }
        // NaN-ignoring max is safe here: a NaN argument that sneaks a
        // tile into the tiny/small path still propagates through that
        // arm's polynomial.
        let hi = tile.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
        if hi < x_tiny {
            run_op(TinyFusedOp { scale }, tile, &mut out[i..i + n], |x| {
                -(-scale * x.exp()).exp_m1()
            });
        } else if hi < x_small {
            let op = SmallFusedOp { scale, x_tiny };
            run_op(op, tile, &mut out[i..i + n], |x| {
                -(-scale * x.exp()).exp_m1()
            });
        } else {
            run_op(NegHazardOp { scale }, tile, &mut tmp[..n], |x| {
                -scale * x.exp()
            });
            match active_width() {
                LaneWidth::W1 => unreachable!("width 1 handled above"),
                LaneWidth::W4 => {
                    failure_finish::<4>(tile, &tmp[..n], x_tiny, x_small, &mut out[i..i + n])
                }
                LaneWidth::W8 => {
                    failure_finish::<8>(tile, &tmp[..n], x_tiny, x_small, &mut out[i..i + n])
                }
            }
        }
        i += n;
    }
}

/// Big-arm-only tile walker: every element is caller-certified `≥
/// x_small`, so the 3-arm finish reduces elementwise to
/// [`failure_big`] and the per-tile max fold is unnecessary. The
/// all-saturated screen is kept — big runs reach deep into the
/// saturated tail, where the screen skips both passes (`1 − e^z`
/// rounds to exactly 1.0 for `z ≤` [`FAILURE_SAT`], so the fill is
/// bit-identical to evaluating the arm).
fn failure_term_tiles_big(xs: &[f64], scale: f64, x_sat: f64, out: &mut [f64]) {
    let mut tmp = [0.0; FAILURE_TILE];
    let mut i = 0;
    while i < xs.len() {
        let n = (xs.len() - i).min(FAILURE_TILE);
        let tile = &xs[i..i + n];
        if tile.iter().all(|&x| x >= x_sat) {
            out[i..i + n].fill(1.0);
            i += n;
            continue;
        }
        run_op(NegHazardOp { scale }, tile, &mut tmp[..n], |x| {
            -scale * x.exp()
        });
        run_op(BigZOp, &tmp[..n], &mut out[i..i + n], failure_big);
        i += n;
    }
}

/// [`failure_term_slice`] with **caller-certified bounds**: every
/// element of `xs` satisfies `lo ≤ x ≤ hi` (the quadrature engines know
/// this for free — their arguments are affine in a sorted node axis, so
/// slice bounds come from row endpoints at O(1) per row instead of the
/// O(n) folds the unbounded screens pay). Elementwise results are
/// bit-identical to [`failure_term_slice`]; the bounds only let the
/// whole slice be classified into one regime up front:
///
/// * `lo ≥ x_sat` → saturated fill (exact 1.0, see [`FAILURE_SAT`]);
/// * `hi < x_tiny` → single tiny-arm pass;
/// * `hi < x_small` → single small-arm pass (tiny still selected per
///   element);
/// * `lo ≥ x_small` → big-arm-only two-pass route (the light
///   [`failure_big`] finish instead of the 3-arm select);
/// * otherwise → the tiled screens of the unbounded path.
///
/// NaN bounds (e.g. from NaN coefficients) fail every comparison and
/// fall through to the general path, which propagates elementwise NaN.
/// Callers must therefore derive bounds such that a NaN element forces
/// NaN bounds — never clip a NaN away with `f64::min`/`max`.
///
/// # Panics
///
/// Panics if `xs.len() != out.len()`.
pub fn failure_term_slice_bounded(xs: &[f64], scale: f64, lo: f64, hi: f64, out: &mut [f64]) {
    assert_eq!(
        xs.len(),
        out.len(),
        "lane kernel input/output length mismatch"
    );
    if active_width() == LaneWidth::W1 {
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = -(-scale * x.exp()).exp_m1();
        }
        return;
    }
    let x_tiny = (FAILURE_TINY_Z / scale).ln();
    let x_small = (EXPM1_SWITCH / scale).ln();
    let x_sat = failure_sat_threshold(scale);
    if lo >= x_sat {
        out.fill(1.0);
    } else if hi < x_tiny {
        run_op(TinyFusedOp { scale }, xs, out, |x| {
            -(-scale * x.exp()).exp_m1()
        });
    } else if hi < x_small {
        run_op(SmallFusedOp { scale, x_tiny }, xs, out, |x| {
            -(-scale * x.exp()).exp_m1()
        });
    } else if lo >= x_small {
        failure_term_tiles_big(xs, scale, x_sat, out);
    } else {
        failure_term_tiles(xs, scale, x_tiny, x_small, x_sat, out);
    }
}

// ---------------------------------------------------------------------------
// Fused lane-tile survival kernel (fleet lifetime bisection)
// ---------------------------------------------------------------------------

/// Shared body of [`ln_surv_tile_sum`]: per lane `w`, the log-survival sum
///
/// ```text
/// s[w] = Σ_j ln_1p(−clamp(−expm1(−area_j·exp(arg_jw)), 0, 1))
/// arg_jw = γ·bu[jW+w] + ½γ²·bbv[jW+w],   γ = ln_rate_j + x[w]
/// ```
///
/// evaluated block-sequentially per lane (the scalar accumulation order,
/// matching [`lane_sum_acc`]). Every step is the exact expression the
/// three-pass `exp_slice` → scale → `exp_m1_slice` → clamp →
/// `ln_1p_slice` composition evaluates per element, in the same order, so
/// the fusion changes no bits — it removes the per-pass dispatch
/// overhead and intermediate stores, which matter on the few-block tiles
/// the fleet produces (`n_blocks·W` is typically 8–32 elements).
///
/// Per block, the lane-argument bounds screen the tile into a regime,
/// exactly like [`failure_term_slice`]'s tile screens — each screened
/// route evaluates the same elementwise expressions the general route
/// selects for those arguments, so the screens change cost, never bits:
///
/// * all `arg ≥ x_sat` → `p` rounds to exactly 1.0 (see [`FAILURE_SAT`])
///   and `ln_1p(−1)` is `−∞`, so the block contributes an exact `−∞`
///   fill — zero transcendentals. (A dead block at age `x` forces
///   `ln S = −∞`; the bisection's `≤ target` compare handles it.)
/// * all `arg < x_small` → `|z| <` [`EXPM1_SWITCH`] takes `expm1`'s
///   small arm, and the resulting `p ≤ 0.293` keeps `−p` inside
///   `ln_1p`'s small-arm window `[−1/3, 0.5]` — one `exp` plus two
///   short polynomials, no second `exp` and no exponent split. This is
///   the regime the bisection converges in (per-block `p` near the
///   fleet budget), so it carries most of the 52 steps.
/// * mixed → the general both-arm cores.
///
/// NaN arguments set a separate lane-NaN flag that fails both screens,
/// routing the block through the general cores, which propagate NaN
/// elementwise.
#[inline(always)]
fn ln_surv_tile_body<const W: usize>(
    x: &[f64; W],
    block_params: &[f64],
    bu: &[f64],
    bbv: &[f64],
    out: &mut [f64; W],
) {
    let mut s = [0.0; W];
    for ((bp, bu_j), bbv_j) in block_params
        .chunks_exact(4)
        .zip(bu.chunks_exact(W))
        .zip(bbv.chunks_exact(W))
    {
        let (ln_rate, area, x_small, x_sat) = (bp[0], bp[1], bp[2], bp[3]);
        let mut arg = [0.0; W];
        for w in 0..W {
            let gamma = ln_rate + x[w];
            arg[w] = gamma * bu_j[w] + 0.5 * gamma * gamma * bbv_j[w];
        }
        // Lane bounds by pairwise tree (log₂W select depth, not a
        // serial W-long chain). A NaN argument makes the tree results
        // arbitrary, so NaN presence is folded separately and fails
        // both screens, routing the block through the general cores.
        let mut nan = false;
        for &a in &arg {
            nan |= a.is_nan();
        }
        let mut mn = arg;
        let mut mx = arg;
        let mut half = W;
        while half > 1 {
            half /= 2;
            for i in 0..half {
                mn[i] = select(mn[i + half] < mn[i], mn[i + half], mn[i]);
                mx[i] = select(mx[i + half] > mx[i], mx[i + half], mx[i]);
            }
        }
        let (amin, amax) = (mn[0], mx[0]);
        if !nan && amin >= x_sat {
            for sv in &mut s {
                *sv += f64::NEG_INFINITY;
            }
            continue;
        }
        let mut term = [0.0; W];
        if !nan && amax < x_small {
            for w in 0..W {
                let z = exp_core(arg[w]) * -area;
                // expm1's small arm (|z| < EXPM1_SWITCH is certified) and
                // ln_1p's small arm (−p ∈ [−0.293, 0] ⊂ [−1/3, 0.5]) —
                // the same expressions the general cores select here.
                let e = z + (z * z) * exp_tail(z);
                let neg_p = -((-e).clamp(0.0, 1.0));
                let t = neg_p / (2.0 + neg_p);
                term[w] = 2.0 * t * atanh_poly(t * t);
            }
        } else {
            for w in 0..W {
                let z = exp_core(arg[w]) * -area;
                let e = exp_m1_core(z);
                // e = expm1(−A·g) = −p; the ln_1p argument is
                // −clamp(p, 0, 1).
                term[w] = ln_1p_core(-((-e).clamp(0.0, 1.0)));
            }
        }
        for w in 0..W {
            s[w] += term[w];
        }
    }
    *out = s;
}

/// AVX2 clone of [`ln_surv_tile_body`] (same IEEE arithmetic, 256-bit
/// codegen).
///
/// # Safety
///
/// Caller must have verified `avx2` via `is_x86_feature_detected!`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn ln_surv_tile_avx2<const W: usize>(
    x: &[f64; W],
    block_params: &[f64],
    bu: &[f64],
    bbv: &[f64],
    out: &mut [f64; W],
) {
    ln_surv_tile_body::<W>(x, block_params, bu, bbv, out);
}

/// AVX-512F clone of [`ln_surv_tile_body`].
///
/// # Safety
///
/// Caller must have verified `avx512f` via `is_x86_feature_detected!`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn ln_surv_tile_avx512<const W: usize>(
    x: &[f64; W],
    block_params: &[f64],
    bu: &[f64],
    bbv: &[f64],
    out: &mut [f64; W],
) {
    ln_surv_tile_body::<W>(x, block_params, bu, bbv, out);
}

/// One step of the fleet's lane-parallel lifetime bisection, fused:
/// fills `out[w]` with the `W`-chip tile's log-survival sums at per-lane
/// log-ages `x[w]`. `block_params` holds one `(ln_rate, area, x_small,
/// x_sat)` quad per block, where `x_small =`
/// [`failure_poly_threshold`]`(area)` and `x_sat =`
/// [`failure_sat_threshold`]`(area)` are the precomputed regime screens
/// (see [`ln_surv_tile_body`]); `bu`/`bbv` are the `[block][lane]` SoA
/// scratch (`bu[j·W + w]` is lane `w`'s `b_eff·u` for block `j`).
///
/// Elementwise this evaluates the polynomial cores behind
/// [`exp_slice`]/[`exp_m1_slice`]/[`ln_1p_slice`] with bit-identical
/// results to that three-pass composition (see [`ln_surv_tile_body`]) —
/// callers choose it for the dispatch economics, not different math: the
/// bisection calls this ~54 times per tile on slices of `n_blocks·W`
/// elements, where three dispatched passes plus two fixup loops per step
/// cost more than the transcendental work itself. Dispatch is by detected
/// ISA alone; the caller has already committed to lane width `W`, so the
/// scalar-exact width-1 route does not apply (the fleet's width-1 path
/// never calls this).
///
/// # Panics
///
/// Panics if `block_params.len()` is not a multiple of 4 or `bu`/`bbv`
/// are not exactly `(block_params.len() / 4) · W` long.
pub fn ln_surv_tile_sum<const W: usize>(
    x: &[f64; W],
    block_params: &[f64],
    bu: &[f64],
    bbv: &[f64],
    out: &mut [f64; W],
) {
    assert_eq!(
        block_params.len() % 4,
        0,
        "block params are (ln_rate, area, x_small, x_sat) quads"
    );
    let n = block_params.len() / 4 * W;
    assert_eq!(bu.len(), n, "bu tile length mismatch");
    assert_eq!(bbv.len(), n, "bbv tile length mismatch");
    match isa() {
        Isa::Portable => ln_surv_tile_body::<W>(x, block_params, bu, bbv, out),
        // SAFETY: `isa()` only reports tiers confirmed by runtime CPUID
        // feature detection on this machine.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { ln_surv_tile_avx2::<W>(x, block_params, bu, bbv, out) },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe { ln_surv_tile_avx512::<W>(x, block_params, bu, bbv, out) },
    }
}

/// Shared body of [`ln_surv_bisect`]: `steps` rounds of per-lane
/// bracket halving. Each round evaluates the tile log-survival at the
/// per-lane midpoints through [`ln_surv_tile_body`], then moves each
/// lane's own bracket with branchless bitwise selects on `s ≤ target`
/// (NaN compares false, freezing that lane's bracket — the caller's
/// mask semantics). Bit-identical, round for round, to a caller loop of
/// [`ln_surv_tile_sum`] + [`lane_le`] + [`lane_select`]; hoisting the
/// loop inside the dispatched clone exists purely so the bracket state
/// stays in registers across all `steps` rounds instead of paying a
/// non-inlinable dispatch per round.
#[inline(always)]
fn ln_surv_bisect_body<const W: usize>(
    lo: &mut [f64; W],
    hi: &mut [f64; W],
    target: f64,
    steps: u32,
    block_params: &[f64],
    bu: &[f64],
    bbv: &[f64],
) {
    for _ in 0..steps {
        let mut mid = [0.0; W];
        for w in 0..W {
            mid[w] = 0.5 * (lo[w] + hi[w]);
        }
        let mut s = [0.0; W];
        ln_surv_tile_body::<W>(&mid, block_params, bu, bbv, &mut s);
        for w in 0..W {
            let le = s[w] <= target;
            hi[w] = select(le, mid[w], hi[w]);
            lo[w] = select(le, lo[w], mid[w]);
        }
    }
}

/// AVX2 clone of [`ln_surv_bisect_body`].
///
/// # Safety
///
/// Caller must have verified `avx2` via `is_x86_feature_detected!`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn ln_surv_bisect_avx2<const W: usize>(
    lo: &mut [f64; W],
    hi: &mut [f64; W],
    target: f64,
    steps: u32,
    block_params: &[f64],
    bu: &[f64],
    bbv: &[f64],
) {
    ln_surv_bisect_body::<W>(lo, hi, target, steps, block_params, bu, bbv);
}

/// AVX-512F clone of [`ln_surv_bisect_body`].
///
/// # Safety
///
/// Caller must have verified `avx512f` via `is_x86_feature_detected!`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
unsafe fn ln_surv_bisect_avx512<const W: usize>(
    lo: &mut [f64; W],
    hi: &mut [f64; W],
    target: f64,
    steps: u32,
    block_params: &[f64],
    bu: &[f64],
    bbv: &[f64],
) {
    ln_surv_bisect_body::<W>(lo, hi, target, steps, block_params, bu, bbv);
}

/// The fleet's lane-parallel masked lifetime bisection, whole-loop
/// fused: runs `steps` rounds of per-lane bracket halving on
/// `lo`/`hi` in place, against the log-survival threshold `target`.
/// Parameters and per-element math are exactly
/// [`ln_surv_tile_sum`]'s; see [`ln_surv_bisect_body`] for the
/// bit-identity contract with the unfused caller loop and the NaN/mask
/// semantics. One dispatched call replaces `steps` of them — the
/// bracket arrays live in registers for the whole solve.
///
/// # Panics
///
/// Panics if `block_params.len()` is not a multiple of 4 or `bu`/`bbv`
/// are not exactly `(block_params.len() / 4) · W` long.
#[allow(clippy::too_many_arguments)]
pub fn ln_surv_bisect<const W: usize>(
    lo: &mut [f64; W],
    hi: &mut [f64; W],
    target: f64,
    steps: u32,
    block_params: &[f64],
    bu: &[f64],
    bbv: &[f64],
) {
    assert_eq!(
        block_params.len() % 4,
        0,
        "block params are (ln_rate, area, x_small, x_sat) quads"
    );
    let n = block_params.len() / 4 * W;
    assert_eq!(bu.len(), n, "bu tile length mismatch");
    assert_eq!(bbv.len(), n, "bbv tile length mismatch");
    match isa() {
        Isa::Portable => ln_surv_bisect_body::<W>(lo, hi, target, steps, block_params, bu, bbv),
        // SAFETY: `isa()` only reports tiers confirmed by runtime CPUID
        // feature detection on this machine.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe {
            ln_surv_bisect_avx2::<W>(lo, hi, target, steps, block_params, bu, bbv)
        },
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => unsafe {
            ln_surv_bisect_avx512::<W>(lo, hi, target, steps, block_params, bu, bbv)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(got: f64, want: f64) -> f64 {
        if got == want {
            return 0.0;
        }
        (got - want).abs() / want.abs().max(f64::MIN_POSITIVE)
    }

    #[test]
    fn exp_core_matches_std_across_ranges() {
        // Log-spaced magnitudes both signs plus engine-typical arguments.
        let mut worst = 0.0f64;
        for i in 0..8000 {
            let mag = 10f64.powf(-8.0 + 11.0 * i as f64 / 7999.0).min(709.0);
            for x in [mag, -mag] {
                let e = rel_err(exp_core(x), x.exp());
                worst = worst.max(e);
            }
        }
        assert!(worst < 2e-15, "worst exp rel err {worst:e}");
    }

    #[test]
    fn exp_core_edges() {
        assert_eq!(exp_core(0.0), 1.0);
        assert_eq!(exp_core(f64::INFINITY), f64::INFINITY);
        assert_eq!(exp_core(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp_core(-800.0), 0.0);
        assert_eq!(exp_core(800.0), f64::INFINITY);
        assert_eq!(exp_core(710.0), f64::INFINITY);
        assert!(exp_core(f64::NAN).is_nan());
        // Near-overflow boundary stays finite where libm is finite.
        let x = 709.78;
        assert!(exp_core(x).is_finite(), "exp({x}) overflowed");
        assert!(rel_err(exp_core(x), x.exp()) < 2e-15);
        // Subnormal window underflows gradually, not abruptly.
        assert!(exp_core(-745.0) > 0.0);
    }

    #[test]
    fn exp_m1_core_matches_std() {
        let mut worst = 0.0f64;
        for i in 0..8000 {
            let mag = 10f64.powf(-10.0 + 12.7 * i as f64 / 7999.0);
            for x in [mag, -mag] {
                let e = rel_err(exp_m1_core(x), x.exp_m1());
                worst = worst.max(e);
            }
        }
        assert!(worst < 4e-15, "worst exp_m1 rel err {worst:e}");
        assert_eq!(exp_m1_core(0.0), 0.0);
        assert_eq!(exp_m1_core(f64::NEG_INFINITY), -1.0);
        assert_eq!(exp_m1_core(f64::INFINITY), f64::INFINITY);
        assert!(exp_m1_core(f64::NAN).is_nan());
        // Deeply negative arguments saturate to exactly -1.
        assert_eq!(exp_m1_core(-1e6), -1.0);
    }

    #[test]
    fn ln_1p_core_matches_std() {
        let mut worst = 0.0f64;
        for i in 0..8000 {
            let mag = 10f64.powf(-12.0 + 24.0 * i as f64 / 7999.0);
            let e = rel_err(ln_1p_core(mag), mag.ln_1p());
            worst = worst.max(e);
            if mag < 1.0 {
                let e = rel_err(ln_1p_core(-mag), (-mag).ln_1p());
                worst = worst.max(e);
            }
        }
        // Near −1 from above (large negative logs).
        for &x in &[-0.999, -1.0 + 1e-9, -1.0 + 1e-15] {
            worst = worst.max(rel_err(ln_1p_core(x), x.ln_1p()));
        }
        assert!(worst < 4e-15, "worst ln_1p rel err {worst:e}");
        assert_eq!(ln_1p_core(0.0), 0.0);
        assert_eq!(ln_1p_core(-1.0), f64::NEG_INFINITY);
        assert!(ln_1p_core(-1.5).is_nan());
        assert_eq!(ln_1p_core(f64::INFINITY), f64::INFINITY);
        assert!(ln_1p_core(f64::NAN).is_nan());
    }

    #[test]
    fn lanes_agree_with_cores_any_width() {
        let xs = [-700.0, -5.25, -0.3, 0.0, 0.17, 3.9, 42.0, 300.0];
        let via4a = F64Lanes::<4>::from_slice(&xs[..4]).exp().to_array();
        let via4b = F64Lanes::<4>::from_slice(&xs[4..]).exp().to_array();
        let via8 = F64Lanes::<8>::from_slice(&xs).exp().to_array();
        for (i, &x) in xs.iter().enumerate() {
            let want = exp_core(x);
            let got4 = if i < 4 { via4a[i] } else { via4b[i - 4] };
            assert_eq!(got4.to_bits(), want.to_bits(), "w4 lane {i}");
            assert_eq!(via8[i].to_bits(), want.to_bits(), "w8 lane {i}");
        }
    }

    #[test]
    fn lanes_arithmetic() {
        let a = F64Lanes::<4>([1.0, 2.0, 3.0, 4.0]);
        let b = F64Lanes::<4>::splat(0.5);
        assert_eq!((a + b).to_array(), [1.5, 2.5, 3.5, 4.5]);
        assert_eq!((a - b).to_array(), [0.5, 1.5, 2.5, 3.5]);
        assert_eq!((a * b).to_array(), [0.5, 1.0, 1.5, 2.0]);
        assert_eq!(a.map(|x| x * x).to_array(), [1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    fn slice_kernels_are_chunk_invariant() {
        // Results must not depend on where the W-lane chunk boundaries
        // fall: evaluate a 13-element slice (full chunks + remainder) and
        // compare against the cores one by one, at both vector widths.
        let xs: Vec<f64> = (0..13).map(|i| -60.0 + 9.5 * i as f64).collect();
        for w in [LaneWidth::W4, LaneWidth::W8] {
            let mut out = vec![0.0; xs.len()];
            match w {
                LaneWidth::W4 => run_isa::<4, ExpOp>(ExpOp, &xs, &mut out),
                _ => run_isa::<8, ExpOp>(ExpOp, &xs, &mut out),
            }
            for (i, (&x, &got)) in xs.iter().zip(&out).enumerate() {
                assert_eq!(got.to_bits(), exp_core(x).to_bits(), "{w:?} idx {i}");
            }
        }
    }

    /// The elementwise definition `failure_term_slice` promises at lane
    /// widths: arm choice by `x` against thresholds derived from `scale`.
    fn failure_term_reference(x: f64, scale: f64) -> f64 {
        let x_tiny = (FAILURE_TINY_Z / scale).ln();
        let x_small = (EXPM1_SWITCH / scale).ln();
        let z = -scale * exp_core(x);
        let r = select(x < x_small, failure_small(z), failure_big(z));
        select(x < x_tiny, failure_tiny(z), r)
    }

    #[test]
    fn failure_term_matches_composition() {
        // Long enough to cross a FAILURE_TILE boundary, so the tiled
        // two-pass path is exercised end to end; the argument spread
        // covers all three tile regimes (vanishing, mixed, saturated).
        let mut xs: Vec<f64> = (0..(FAILURE_TILE + 9))
            .map(|i| -20.0 + 4.0 * (i % 11) as f64)
            .collect();
        // Homogeneous stretches so the saturated-fill and small-only
        // tile screens actually fire.
        xs.extend(std::iter::repeat_n(30.0, FAILURE_TILE + 3));
        xs.extend(std::iter::repeat_n(-40.0, FAILURE_TILE + 3));
        let scale = 3.2e-3;
        let mut out = vec![0.0; xs.len()];
        for w in [LaneWidth::W4, LaneWidth::W8] {
            force_width(Some(w));
            failure_term_slice(&xs, scale, &mut out);
            for (&x, &got) in xs.iter().zip(&out) {
                let want = failure_term_reference(x, scale);
                assert_eq!(got.to_bits(), want.to_bits(), "{w:?} x={x}");
                assert!((0.0..=1.0).contains(&got));
                // The x-routed arms stay within the lane error budget of
                // the historical scalar expression.
                let scalar = -(-scale * x.exp()).exp_m1();
                assert!(
                    rel_err(got, scalar) < 1e-12,
                    "{w:?} x={x} got={got} scalar={scalar}"
                );
            }
        }
        force_width(None);
    }

    #[test]
    fn failure_term_saturated_fill_is_exact() {
        // For z ≤ −FAILURE_SAT the large arm rounds to exactly 1.0, so
        // the tile fill must be bit-identical to evaluating the arm.
        for z in [-FAILURE_SAT, -38.0, -54.0, -60.0, -700.0] {
            assert_eq!(failure_big(z).to_bits(), 1.0f64.to_bits(), "z={z}");
        }
        // NaN still propagates through a saturated-looking tile.
        force_width(Some(LaneWidth::W8));
        let xs = [f64::NAN; 4];
        let mut out = [0.0; 4];
        failure_term_slice(&xs, 1.0, &mut out);
        assert!(out.iter().all(|o| o.is_nan()));
        force_width(None);
    }

    #[test]
    fn small_screen_keeps_tiny_arm_per_element() {
        // A slice wholly below `x_small` takes the single-pass small
        // screen, but elements below `x_tiny` must still get the tiny
        // arm — the arm choice is a function of `(x, scale)` alone, or
        // results would depend on how callers tile the input.
        let scale = 1e-3;
        let x_tiny = (FAILURE_TINY_Z / scale).ln();
        let x_small = (EXPM1_SWITCH / scale).ln();
        let xs: Vec<f64> = (0..257)
            .map(|i| x_tiny - 2.0 + 4.0 * i as f64 / 256.0)
            .collect();
        assert!(xs.iter().all(|&x| x < x_small), "stays below the screen");
        assert!(
            xs.iter().any(|&x| x < x_tiny) && xs.iter().any(|&x| x >= x_tiny),
            "straddles the tiny threshold"
        );
        let mut out = vec![0.0; xs.len()];
        for w in [LaneWidth::W4, LaneWidth::W8] {
            force_width(Some(w));
            failure_term_slice(&xs, scale, &mut out);
            for (&x, &got) in xs.iter().zip(&out) {
                let want = failure_term_reference(x, scale);
                assert_eq!(got.to_bits(), want.to_bits(), "{w:?} x={x}");
            }
        }
        force_width(None);
    }

    #[test]
    fn bounded_certifications_match_unbounded_bits() {
        // Every certification class of `failure_term_slice_bounded`
        // (saturated, tiny, small, big-only, mixed/unbounded, NaN
        // bounds) must reproduce the unbounded walker bit for bit —
        // the bounds pick a route, never an answer.
        let scale = 1e-3;
        let x_tiny = (FAILURE_TINY_Z / scale).ln();
        let x_small = (EXPM1_SWITCH / scale).ln();
        let x_sat = failure_sat_threshold(scale);
        let ramp = |lo: f64, hi: f64, n: usize| -> Vec<f64> {
            (0..n)
                .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
                .collect()
        };
        let cases = [
            ramp(x_sat + 0.5, x_sat + 40.0, 600),    // saturated
            ramp(x_tiny - 30.0, x_tiny - 0.1, 600),  // tiny
            ramp(x_tiny - 1.0, x_small - 0.1, 600),  // small (straddles tiny)
            ramp(x_small + 0.01, x_sat + 5.0, 600),  // big-only, crosses saturation
            ramp(x_tiny - 10.0, x_sat + 10.0, 1200), // mixed, crosses a tile
        ];
        for w in [LaneWidth::W4, LaneWidth::W8] {
            force_width(Some(w));
            for (case, xs) in cases.iter().enumerate() {
                let lo = xs.iter().fold(f64::INFINITY, |m, &x| m.min(x));
                let hi = xs.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
                let mut bounded = vec![0.0; xs.len()];
                let mut unbounded = vec![0.0; xs.len()];
                failure_term_slice_bounded(xs, scale, lo, hi, &mut bounded);
                failure_term_slice(xs, scale, &mut unbounded);
                for (i, (&b, &u)) in bounded.iter().zip(&unbounded).enumerate() {
                    assert_eq!(b.to_bits(), u.to_bits(), "{w:?} case {case} idx {i}");
                }
            }
            // NaN bounds (NaN coefficients upstream) fail every screen
            // comparison and still propagate elementwise NaN.
            let xs = [x_small + 1.0, f64::NAN, x_tiny - 1.0];
            let mut out = [0.0; 3];
            failure_term_slice_bounded(&xs, scale, f64::NAN, f64::NAN, &mut out);
            assert!(!out[0].is_nan() && out[1].is_nan() && !out[2].is_nan());
            assert_eq!(
                out[0].to_bits(),
                failure_term_reference(xs[0], scale).to_bits()
            );
        }
        force_width(None);
    }

    #[test]
    fn lane_dot_acc_matches_scalar_bitwise() {
        // Each lane must reproduce a scalar left-to-right dot product bit
        // for bit — the property the SoA (u, v) tile evaluation rests on.
        let coeffs: Vec<f64> = (0..17).map(|k| 0.3 - 0.07 * k as f64).collect();
        const W: usize = 4;
        let tile: Vec<f64> = (0..17 * W).map(|i| (i as f64 * 0.831).sin()).collect();
        let mut acc = [1.5; W];
        lane_dot_acc::<W>(&coeffs, &tile, &mut acc);
        let mut sq = [0.25; W];
        lane_dot_sq_acc::<W>(&coeffs, &tile, &mut sq);
        for w in 0..W {
            let mut scalar = 1.5;
            let mut d = 0.0;
            for (k, &c) in coeffs.iter().enumerate() {
                scalar += c * tile[k * W + w];
                d += c * tile[k * W + w];
            }
            assert_eq!(acc[w].to_bits(), scalar.to_bits(), "dot lane {w}");
            let scalar_sq = 0.25 + d * d;
            assert_eq!(sq[w].to_bits(), scalar_sq.to_bits(), "dot-sq lane {w}");
        }
    }

    #[test]
    fn lane_masks_and_selects() {
        let xs = [1.0, 2.0, f64::NAN, -3.0];
        let mask = lane_le::<4>(&xs, 1.5);
        assert_eq!(mask, [true, false, false, true]);
        let a = [10.0, 20.0, 30.0, 40.0];
        let b = [-1.0, -2.0, -3.0, -4.0];
        let sel = lane_select::<4>(&mask, &a, &b);
        assert_eq!(sel, [10.0, -2.0, -3.0, 40.0]);
        // Selects are bit-exact: -0.0 and NaN payloads survive.
        let weird = lane_select::<2>(&[true, false], &[-0.0, -0.0], &[f64::NAN, f64::NAN]);
        assert_eq!(weird[0].to_bits(), (-0.0f64).to_bits());
        assert!(weird[1].is_nan());
        assert!(lane_any::<4>(&mask));
        assert!(!lane_all::<4>(&mask));
        assert!(lane_all::<2>(&[true, true]));
        assert!(!lane_any::<2>(&[false, false]));
    }

    #[test]
    fn ln_surv_tile_sum_matches_three_pass_composition_bitwise() {
        // The fused kernel must evaluate exactly what the dispatched
        // exp → scale → exp_m1 → clamp → ln_1p pipeline evaluates — the
        // bisection's cross-width agreement bound is derived from that
        // composition's error budget, and the fusion is a dispatch
        // economization, not a re-derivation.
        const W: usize = 8;
        let mut block_params = Vec::new();
        for (ln_rate, area) in [(2.1, 60_000.0), (1.7, 140_000.0), (-0.4, 5.0)] {
            block_params.extend([
                ln_rate,
                area,
                failure_poly_threshold(area),
                failure_sat_threshold(area),
            ]);
        }
        let n_blocks = block_params.len() / 4;
        let bu: Vec<f64> = (0..n_blocks * W)
            .map(|i| -9.0 - (i as f64 * 0.37).sin())
            .collect();
        let bbv: Vec<f64> = (0..n_blocks * W)
            .map(|i| 1e-4 * (1.0 + (i as f64 * 0.61).cos()))
            .collect();
        // The x sweep crosses all three screened regimes (saturated
        // early ages, mixed, and the small-arm convergence zone).
        for x0 in [5.0, 10.0, 14.0, 18.0, 22.5, 26.0, 30.0] {
            let mut x = [0.0; W];
            for (w, xv) in x.iter_mut().enumerate() {
                *xv = x0 + 0.25 * w as f64;
            }
            let mut fused = [0.0; W];
            ln_surv_tile_sum::<W>(&x, &block_params, &bu, &bbv, &mut fused);

            // Reference: the three-pass composition over the same tile,
            // through the same cores.
            let mut a = vec![0.0; n_blocks * W];
            let mut b = vec![0.0; n_blocks * W];
            for j in 0..n_blocks {
                let ln_rate = block_params[4 * j];
                for w in 0..W {
                    let gamma = ln_rate + x[w];
                    a[j * W + w] = gamma * bu[j * W + w] + 0.5 * gamma * gamma * bbv[j * W + w];
                }
            }
            for (bi, &ai) in b.iter_mut().zip(&a) {
                *bi = exp_core(ai);
            }
            for j in 0..n_blocks {
                let area = block_params[4 * j + 1];
                for g in &mut b[j * W..(j + 1) * W] {
                    *g *= -area;
                }
            }
            for (ai, &bi) in a.iter_mut().zip(&b) {
                *ai = exp_m1_core(bi);
            }
            for e in a.iter_mut() {
                *e = -((-*e).clamp(0.0, 1.0));
            }
            for (bi, &ai) in b.iter_mut().zip(&a) {
                *bi = ln_1p_core(ai);
            }
            let mut want = [0.0; W];
            lane_sum_acc::<W>(&b, &mut want);
            for w in 0..W {
                assert_eq!(fused[w].to_bits(), want[w].to_bits(), "lane {w} at x0 {x0}");
            }
        }
    }

    #[test]
    fn lane_width_parse_and_display() {
        assert_eq!(LaneWidth::parse("1"), Some(LaneWidth::W1));
        assert_eq!(LaneWidth::parse(" 4 "), Some(LaneWidth::W4));
        assert_eq!(LaneWidth::parse("8"), Some(LaneWidth::W8));
        assert_eq!(LaneWidth::parse("2"), None);
        assert_eq!(LaneWidth::parse("fast"), None);
        assert_eq!(LaneWidth::W8.to_string(), "8");
        assert_eq!(LaneWidth::W4.lanes(), 4);
    }
}
