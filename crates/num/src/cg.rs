//! Preconditioned conjugate-gradient solver for symmetric positive-definite
//! sparse systems (the thermal grid's conductance matrix).

use crate::matrix::{axpy, dot};
use crate::sparse::CsrMatrix;
use crate::{NumError, Result};

/// Options controlling the conjugate-gradient iteration.
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Relative residual tolerance: stop when `‖r‖ ≤ rel_tol·‖b‖`.
    pub rel_tol: f64,
    /// Hard cap on iterations.
    pub max_iter: usize,
    /// Use the Jacobi (diagonal) preconditioner.
    pub jacobi_precondition: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            rel_tol: 1e-10,
            max_iter: 10_000,
            jacobi_precondition: true,
        }
    }
}

/// Result of a converged CG solve.
#[derive(Debug, Clone)]
pub struct CgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖ / ‖b‖`.
    pub relative_residual: f64,
}

/// Solves `A·x = b` for SPD `A` by preconditioned conjugate gradients.
///
/// # Errors
///
/// * [`NumError::Dimension`] if shapes are inconsistent,
/// * [`NumError::NoConvergence`] if `max_iter` is exhausted,
/// * [`NumError::NotPositiveDefinite`] if a non-positive curvature
///   `pᵀ·A·p ≤ 0` is detected (the matrix is not SPD).
///
/// # Example
///
/// ```
/// use statobd_num::sparse::CooMatrix;
/// use statobd_num::cg::{solve_cg, CgOptions};
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 4.0);
/// coo.push(0, 1, 1.0);
/// coo.push(1, 0, 1.0);
/// coo.push(1, 1, 3.0);
/// let a = coo.to_csr();
/// let sol = solve_cg(&a, &[1.0, 2.0], &CgOptions::default())?;
/// assert!(sol.relative_residual < 1e-9);
/// # Ok::<(), statobd_num::NumError>(())
/// ```
pub fn solve_cg(a: &CsrMatrix, b: &[f64], opts: &CgOptions) -> Result<CgSolution> {
    let n = a.nrows();
    if a.ncols() != n || b.len() != n {
        return Err(NumError::Dimension {
            detail: format!(
                "CG needs square A and matching b: A is {}x{}, b has {}",
                a.nrows(),
                a.ncols(),
                b.len()
            ),
        });
    }
    let b_norm = dot(b, b).sqrt();
    if b_norm == 0.0 {
        return Ok(CgSolution {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
        });
    }

    let inv_diag: Option<Vec<f64>> = if opts.jacobi_precondition {
        let d = a.diagonal();
        if d.iter().any(|&v| v <= 0.0) {
            return Err(NumError::NotPositiveDefinite);
        }
        Some(d.iter().map(|&v| 1.0 / v).collect())
    } else {
        None
    };
    let precondition = |r: &[f64]| -> Vec<f64> {
        match &inv_diag {
            Some(inv) => r.iter().zip(inv).map(|(ri, di)| ri * di).collect(),
            None => r.to_vec(),
        }
    };

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = precondition(&r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    for iter in 0..opts.max_iter {
        let r_norm = dot(&r, &r).sqrt();
        if r_norm <= opts.rel_tol * b_norm {
            return Ok(CgSolution {
                x,
                iterations: iter,
                relative_residual: r_norm / b_norm,
            });
        }
        a.mul_vec_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            return Err(NumError::NotPositiveDefinite);
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        z = precondition(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    let r_norm = dot(&r, &r).sqrt();
    Err(NumError::NoConvergence {
        iterations: opts.max_iter,
        residual: r_norm / b_norm,
        dimension: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CooMatrix;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        // Tridiagonal [−1, 2+ε, −1] — SPD.
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.01);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn solves_small_spd() {
        let a = laplacian_1d(50);
        let x_true: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let sol = solve_cg(&a, &b, &CgOptions::default()).unwrap();
        for (xi, ti) in sol.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-7, "{xi} vs {ti}");
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = laplacian_1d(10);
        let sol = solve_cg(&a, &[0.0; 10], &CgOptions::default()).unwrap();
        assert!(sol.x.iter().all(|&v| v == 0.0));
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn preconditioner_reduces_iterations() {
        // Badly scaled diagonal: Jacobi helps a lot.
        let n = 100;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let scale = if i % 2 == 0 { 1.0 } else { 1000.0 };
            coo.push(i, i, 2.01 * scale);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        let a = coo.to_csr();
        let b = vec![1.0; n];
        let with = solve_cg(&a, &b, &CgOptions::default()).unwrap();
        let without = solve_cg(
            &a,
            &b,
            &CgOptions {
                jacobi_precondition: false,
                ..CgOptions::default()
            },
        )
        .unwrap();
        assert!(with.iterations <= without.iterations);
    }

    #[test]
    fn detects_indefinite_matrix() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, -1.0);
        let a = coo.to_csr();
        let err = solve_cg(&a, &[1.0, 1.0], &CgOptions::default());
        assert!(matches!(err, Err(NumError::NotPositiveDefinite)));
    }

    #[test]
    fn iteration_budget_is_respected() {
        let a = laplacian_1d(200);
        let b = vec![1.0; 200];
        let err = solve_cg(
            &a,
            &b,
            &CgOptions {
                max_iter: 2,
                rel_tol: 1e-14,
                jacobi_precondition: false,
            },
        );
        assert!(matches!(err, Err(NumError::NoConvergence { .. })));
    }
}
