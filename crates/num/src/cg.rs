//! Preconditioned conjugate-gradient solver for symmetric positive-definite
//! sparse systems (the thermal grid's conductance matrix).
//!
//! The solver is generic over a [`Preconditioner`]: the classic Jacobi
//! diagonal lives here, zero-fill incomplete Cholesky in
//! [`crate::precond`], and a geometric-multigrid V-cycle in
//! [`crate::multigrid`] — the latter two are what make large thermal grids
//! converge in tens rather than thousands of iterations. [`solve_pcg`]
//! additionally accepts an initial guess so fixed-point loops (the thermal
//! leakage iteration, implicit transient stepping) can warm-start from the
//! previous solution.

use crate::matrix::{axpy, dot};
use crate::sparse::CsrMatrix;
use crate::{NumError, Result};

/// An SPD preconditioner `M ≈ A`: applies `z ← M⁻¹·r`.
///
/// Implementations must be symmetric positive definite as linear operators
/// — conjugate gradients silently loses its convergence guarantees
/// otherwise.
pub trait Preconditioner {
    /// Applies the preconditioner: `z ← M⁻¹·r`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `r.len()`/`z.len()` do not match the
    /// operator dimension.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Stable lower-case name for logs and benchmark reports.
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// The identity preconditioner (plain, unpreconditioned CG).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// The Jacobi (diagonal) preconditioner `M = diag(A)`.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Extracts the diagonal of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NotPositiveDefinite`] if any diagonal entry is
    /// not strictly positive.
    pub fn new(a: &CsrMatrix) -> Result<Self> {
        let d = a.diagonal();
        if d.iter().any(|&v| v <= 0.0) {
            return Err(NumError::NotPositiveDefinite);
        }
        Ok(JacobiPreconditioner {
            inv_diag: d.iter().map(|&v| 1.0 / v).collect(),
        })
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.inv_diag.len(), "dimension mismatch");
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }

    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// Options controlling the conjugate-gradient iteration.
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Relative residual tolerance: stop when `‖r‖ ≤ rel_tol·‖b‖`.
    pub rel_tol: f64,
    /// Hard cap on iterations.
    pub max_iter: usize,
    /// Use the Jacobi (diagonal) preconditioner ([`solve_cg`] only;
    /// [`solve_pcg`] takes the preconditioner as an argument).
    pub jacobi_precondition: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            rel_tol: 1e-10,
            max_iter: 10_000,
            jacobi_precondition: true,
        }
    }
}

/// Result of a converged CG solve.
#[derive(Debug, Clone)]
pub struct CgSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖ / ‖b‖`.
    pub relative_residual: f64,
}

/// Solves `A·x = b` for SPD `A` by preconditioned conjugate gradients.
///
/// # Errors
///
/// * [`NumError::Dimension`] if shapes are inconsistent,
/// * [`NumError::NoConvergence`] if `max_iter` is exhausted,
/// * [`NumError::NotPositiveDefinite`] if a non-positive curvature
///   `pᵀ·A·p ≤ 0` is detected (the matrix is not SPD).
///
/// # Example
///
/// ```
/// use statobd_num::sparse::CooMatrix;
/// use statobd_num::cg::{solve_cg, CgOptions};
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 4.0);
/// coo.push(0, 1, 1.0);
/// coo.push(1, 0, 1.0);
/// coo.push(1, 1, 3.0);
/// let a = coo.to_csr();
/// let sol = solve_cg(&a, &[1.0, 2.0], &CgOptions::default())?;
/// assert!(sol.relative_residual < 1e-9);
/// # Ok::<(), statobd_num::NumError>(())
/// ```
pub fn solve_cg(a: &CsrMatrix, b: &[f64], opts: &CgOptions) -> Result<CgSolution> {
    if opts.jacobi_precondition {
        let m = JacobiPreconditioner::new(a)?;
        solve_pcg(a, b, None, &m, opts)
    } else {
        solve_pcg(a, b, None, &IdentityPreconditioner, opts)
    }
}

/// Solves `A·x = b` by CG with an explicit preconditioner and an optional
/// warm-start guess `x0` (`None` starts from zero).
///
/// The convergence test is on the *true* residual `‖b − A·x‖ ≤
/// rel_tol·‖b‖`, independent of the guess and the preconditioner, so
/// different variants of the same solve are directly comparable.
///
/// # Errors
///
/// Same contract as [`solve_cg`]; additionally [`NumError::Dimension`] if
/// `x0` has the wrong length.
pub fn solve_pcg(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    m: &dyn Preconditioner,
    opts: &CgOptions,
) -> Result<CgSolution> {
    let n = a.nrows();
    if a.ncols() != n || b.len() != n || x0.is_some_and(|x| x.len() != n) {
        return Err(NumError::Dimension {
            detail: format!(
                "CG needs square A and matching vectors: A is {}x{}, b has {}, x0 has {:?}",
                a.nrows(),
                a.ncols(),
                b.len(),
                x0.map(<[f64]>::len)
            ),
        });
    }
    let b_norm = dot(b, b).sqrt();
    if b_norm == 0.0 {
        return Ok(CgSolution {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
        });
    }

    let mut x = x0.map_or_else(|| vec![0.0; n], <[f64]>::to_vec);
    let mut r = b.to_vec();
    if x0.is_some() {
        let mut ax = vec![0.0; n];
        a.mul_vec_into(&x, &mut ax);
        axpy(-1.0, &ax, &mut r);
    }
    let mut z = vec![0.0; n];
    m.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    for iter in 0..opts.max_iter {
        let r_norm = dot(&r, &r).sqrt();
        if r_norm <= opts.rel_tol * b_norm {
            return Ok(CgSolution {
                x,
                iterations: iter,
                relative_residual: r_norm / b_norm,
            });
        }
        a.mul_vec_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            return Err(NumError::NotPositiveDefinite);
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        m.apply(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    let r_norm = dot(&r, &r).sqrt();
    Err(NumError::NoConvergence {
        iterations: opts.max_iter,
        residual: r_norm / b_norm,
        dimension: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CooMatrix;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        // Tridiagonal [−1, 2+ε, −1] — SPD.
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.01);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        coo.to_csr()
    }

    #[test]
    fn solves_small_spd() {
        let a = laplacian_1d(50);
        let x_true: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let sol = solve_cg(&a, &b, &CgOptions::default()).unwrap();
        for (xi, ti) in sol.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-7, "{xi} vs {ti}");
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = laplacian_1d(10);
        let sol = solve_cg(&a, &[0.0; 10], &CgOptions::default()).unwrap();
        assert!(sol.x.iter().all(|&v| v == 0.0));
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn preconditioner_reduces_iterations() {
        // Badly scaled diagonal: Jacobi helps a lot.
        let n = 100;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let scale = if i % 2 == 0 { 1.0 } else { 1000.0 };
            coo.push(i, i, 2.01 * scale);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        let a = coo.to_csr();
        let b = vec![1.0; n];
        let with = solve_cg(&a, &b, &CgOptions::default()).unwrap();
        let without = solve_cg(
            &a,
            &b,
            &CgOptions {
                jacobi_precondition: false,
                ..CgOptions::default()
            },
        )
        .unwrap();
        assert!(with.iterations <= without.iterations);
    }

    #[test]
    fn detects_indefinite_matrix() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, -1.0);
        let a = coo.to_csr();
        let err = solve_pcg(
            &a,
            &[1.0, 1.0],
            None,
            &IdentityPreconditioner,
            &CgOptions::default(),
        );
        assert!(matches!(err, Err(NumError::NotPositiveDefinite)));
        let err = solve_cg(&a, &[1.0, 1.0], &CgOptions::default());
        assert!(matches!(err, Err(NumError::NotPositiveDefinite)));
    }

    #[test]
    fn iteration_budget_is_respected() {
        let a = laplacian_1d(200);
        let b = vec![1.0; 200];
        let err = solve_cg(
            &a,
            &b,
            &CgOptions {
                max_iter: 2,
                rel_tol: 1e-14,
                jacobi_precondition: false,
            },
        );
        assert!(matches!(err, Err(NumError::NoConvergence { .. })));
    }

    #[test]
    fn exact_warm_start_converges_instantly() {
        let a = laplacian_1d(80);
        let x_true: Vec<f64> = (0..80).map(|i| (i as f64 * 0.17).cos()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let cold = solve_cg(&a, &b, &CgOptions::default()).unwrap();
        let warm = solve_pcg(
            &a,
            &b,
            Some(&cold.x),
            &JacobiPreconditioner::new(&a).unwrap(),
            &CgOptions::default(),
        )
        .unwrap();
        assert_eq!(warm.iterations, 0);
        assert_eq!(warm.x, cold.x);
    }

    #[test]
    fn near_warm_start_converges_faster() {
        let a = laplacian_1d(300);
        let x_true: Vec<f64> = (0..300).map(|i| (i as f64 * 0.05).sin()).collect();
        let b = a.mul_vec(&x_true).unwrap();
        let m = JacobiPreconditioner::new(&a).unwrap();
        let opts = CgOptions::default();
        let cold = solve_pcg(&a, &b, None, &m, &opts).unwrap();
        // Perturb the exact solution slightly: the warm start should need
        // far fewer iterations than the cold start.
        let guess: Vec<f64> = x_true.iter().map(|&v| v + 1e-6).collect();
        let warm = solve_pcg(&a, &b, Some(&guess), &m, &opts).unwrap();
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        for (w, c) in warm.x.iter().zip(&cold.x) {
            assert!((w - c).abs() < 1e-7);
        }
    }

    #[test]
    fn warm_start_dimension_checked() {
        let a = laplacian_1d(10);
        let err = solve_pcg(
            &a,
            &[1.0; 10],
            Some(&[0.0; 9]),
            &IdentityPreconditioner,
            &CgOptions::default(),
        );
        assert!(matches!(err, Err(NumError::Dimension { .. })));
    }
}
