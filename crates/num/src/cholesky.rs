//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used to (a) sample correlated Gaussian fields directly from a covariance
//! matrix (as a PCA cross-check) and (b) verify positive-definiteness of
//! assembled covariance models.

use crate::matrix::DMatrix;
use crate::{NumError, Result};

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
///
/// # Example
///
/// ```
/// use statobd_num::matrix::DMatrix;
/// use statobd_num::cholesky::Cholesky;
///
/// let a = DMatrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let chol = Cholesky::new(&a)?;
/// let x = chol.solve(&[8.0, 7.0])?;
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// # Ok::<(), statobd_num::NumError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: DMatrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// * [`NumError::Dimension`] if `a` is not square,
    /// * [`NumError::NotPositiveDefinite`] if a pivot is non-positive.
    pub fn new(a: &DMatrix) -> Result<Self> {
        if !a.is_square() {
            return Err(NumError::Dimension {
                detail: format!(
                    "Cholesky requires a square matrix, got {}x{}",
                    a.nrows(),
                    a.ncols()
                ),
            });
        }
        let n = a.nrows();
        let mut l = DMatrix::zeros(n, n);
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(NumError::NotPositiveDefinite);
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / djj;
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &DMatrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Solves `A·x = b` via forward/back substitution.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Dimension`] if `b.len()` does not match.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(NumError::Dimension {
                detail: format!("rhs length {} != {}", b.len(), n),
            });
        }
        // Forward: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[(i, k)] * y[k];
            }
            y[i] /= self.l[(i, i)];
        }
        // Backward: L^T x = y.
        let mut x = y;
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.l[(k, i)] * x[k];
            }
            x[i] /= self.l[(i, i)];
        }
        Ok(x)
    }

    /// Maps an i.i.d. standard-normal vector `z` to a correlated sample
    /// `L·z` with covariance `A`.
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` does not match the factor dimension.
    pub fn correlate(&self, z: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(z.len(), n, "sample length must equal matrix dimension");
        let mut out = vec![0.0; n];
        for i in 0..n {
            let mut acc = 0.0;
            for k in 0..=i {
                acc += self.l[(i, k)] * z[k];
            }
            out[i] = acc;
        }
        out
    }

    /// Log-determinant of `A` (twice the log-determinant of `L`).
    pub fn ln_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_reconstructs() {
        let a = DMatrix::from_rows(&[&[4.0, 2.0, 0.5], &[2.0, 3.0, 1.0], &[0.5, 1.0, 2.0]]);
        let c = Cholesky::new(&a).unwrap();
        let llt = c.l().mul(&c.l().transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((llt[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            Cholesky::new(&a),
            Err(NumError::NotPositiveDefinite)
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = DMatrix::zeros(2, 3);
        assert!(matches!(Cholesky::new(&a), Err(NumError::Dimension { .. })));
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = DMatrix::from_rows(&[&[6.0, 2.0], &[2.0, 5.0]]);
        let x_true = [1.0, -2.0];
        let b = a.mul_vec(&x_true);
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        assert!((x[0] - x_true[0]).abs() < 1e-12);
        assert!((x[1] - x_true[1]).abs() < 1e-12);
    }

    #[test]
    fn correlate_identity_is_identity() {
        let a = DMatrix::identity(3);
        let c = Cholesky::new(&a).unwrap();
        let z = [0.3, -1.2, 2.0];
        assert_eq!(c.correlate(&z), z.to_vec());
    }

    #[test]
    fn ln_det_matches_product_of_pivots() {
        let a = DMatrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let c = Cholesky::new(&a).unwrap();
        assert!((c.ln_det() - (36.0f64).ln()).abs() < 1e-12);
    }
}
