//! Exact distribution of quadratic forms in standard normal variables by
//! Imhof's method (Biometrika 1961) — the reference the paper cites for
//! the BLOD sample-variance distribution before adopting the cheaper
//! Yuan–Bentler χ² approximation.
//!
//! For `Q = Σ_r λ_r·Z_r²` with `Z_r` i.i.d. `N(0,1)` and `λ_r ≥ 0`,
//!
//! ```text
//! P(Q > x) = 1/2 + (1/π) ∫₀^∞ sin θ(u) / (u·ρ(u)) du
//! θ(u) = ½ Σ_r arctan(λ_r u) − ½ x u
//! ρ(u) = Π_r (1 + λ_r² u²)^(1/4)
//! ```
//!
//! The integrand decays like `u^{-(1 + m/2)}` (`m` = number of non-zero
//! eigenvalues), so panel-wise Gauss–Legendre integration with a
//! convergence cutoff evaluates it to high accuracy.

use crate::quad::{QuadRule, Quadrature};
use crate::{NumError, Result};

/// Panel width factor: each panel spans `PANEL_SCALE / λ_max` in `u`.
const PANEL_SCALE: f64 = 2.0;

/// Gauss–Legendre nodes per panel.
const PANEL_NODES: usize = 24;

/// Maximum number of panels before giving up.
const MAX_PANELS: usize = 4000;

/// CDF `P(Q ≤ x)` of `Q = Σ λ_r Z_r²` by Imhof numerical inversion.
///
/// Eigenvalues that are zero (or negligible relative to the largest) are
/// ignored; if all eigenvalues vanish the distribution is a point mass at
/// zero.
///
/// # Errors
///
/// * [`NumError::Domain`] if any eigenvalue is negative or non-finite
///   (the BLOD quadratic forms are PSD by construction),
/// * [`NumError::NoConvergence`] if the oscillatory integral fails to
///   settle within the panel budget (does not occur for PSD input in
///   practice).
///
/// # Example
///
/// ```
/// use statobd_num::quadform::imhof_cdf;
///
/// // One eigenvalue: Q = λ·Z², i.e. λ·χ²(1). P(Q ≤ λ) = P(χ²₁ ≤ 1).
/// let p = imhof_cdf(&[2.0], 2.0)?;
/// assert!((p - 0.6826894921370859).abs() < 1e-8);
/// # Ok::<(), statobd_num::NumError>(())
/// ```
pub fn imhof_cdf(eigenvalues: &[f64], x: f64) -> Result<f64> {
    if eigenvalues.iter().any(|&l| l < 0.0 || !l.is_finite()) {
        return Err(NumError::Domain {
            detail: "Imhof inversion here requires non-negative finite eigenvalues".to_string(),
        });
    }
    let lambda_max = eigenvalues.iter().cloned().fold(0.0, f64::max);
    if lambda_max == 0.0 {
        // Point mass at zero.
        return Ok(if x >= 0.0 { 1.0 } else { 0.0 });
    }
    let lambdas: Vec<f64> = eigenvalues
        .iter()
        .cloned()
        .filter(|&l| l > 1e-14 * lambda_max)
        .collect();
    if x <= 0.0 {
        return Ok(0.0);
    }

    let integrand = |u: f64| -> f64 {
        let mut theta = -0.5 * x * u;
        let mut ln_rho = 0.0;
        for &l in &lambdas {
            theta += 0.5 * (l * u).atan();
            ln_rho += 0.25 * (1.0 + l * l * u * u).ln();
        }
        theta.sin() / (u * ln_rho.exp())
    };

    // Two-phase integration.
    //
    // Phase 1 — head: fine fixed panels over [0, U0]. Ideally U0 is where
    // every arctan has saturated (λ·u > ~40), but for near-degenerate
    // eigenvalue sets 1/λ_min can be astronomically large, so U0 is capped
    // at 120/λ_max. The cap is safe: the tail phase evaluates the *exact*
    // integrand, and the Euler acceleration only requires the envelope and
    // residual phase drift to vary smoothly — which unsaturated arctans
    // do.
    let lambda_min = lambdas.iter().cloned().fold(f64::INFINITY, f64::min);
    let head_end = (40.0 / lambda_min).min(120.0 / lambda_max);
    let head_w = PANEL_SCALE / lambda_max;
    let head_panels = ((head_end / head_w).ceil() as usize).clamp(1, MAX_PANELS);
    let head_w = head_end / head_panels as f64;
    let mut total = 0.0;
    for k in 0..head_panels {
        let a = (k as f64 * head_w).max(1e-300);
        let b = (k as f64 + 1.0) * head_w;
        // Subdivide so each Gauss panel sees at most ~1 oscillation of
        // sin(−x·u/2) even when x is large.
        let period = 4.0 * std::f64::consts::PI / x;
        let sub = ((head_w / period).ceil() as usize).clamp(1, 64);
        for si in 0..sub {
            let sa = a + (b - a) * si as f64 / sub as f64;
            let sb = a + (b - a) * (si as f64 + 1.0) / sub as f64;
            let quad = Quadrature::new(QuadRule::GaussLegendre, PANEL_NODES, sa, sb)?;
            total += quad.integrate(integrand);
        }
    }

    // Phase 2 — tail: beyond U0 the integrand is a sine at angular
    // frequency x/2 times a smooth u^{-(1+m/2)} envelope. Half-period
    // panels give an alternating series; Euler (repeated-averaging)
    // acceleration of its partial sums converges geometrically.
    let half_period = 2.0 * std::f64::consts::PI / x;
    let mut partials = Vec::with_capacity(64);
    let mut acc = 0.0;
    let mut converged = false;
    for k in 0..MAX_PANELS {
        let a = head_end + k as f64 * half_period;
        let b = a + half_period;
        let quad = Quadrature::new(QuadRule::GaussLegendre, PANEL_NODES, a, b)?;
        let c = quad.integrate(integrand);
        acc += c;
        partials.push(acc);
        if c.abs() < 1e-12 * (1.0 + total.abs()) || partials.len() >= 48 {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(NumError::NoConvergence {
            iterations: MAX_PANELS,
            residual: acc,
            dimension: eigenvalues.len(),
        });
    }
    // Euler transformation: repeatedly average adjacent partial sums.
    let mut row = partials;
    while row.len() > 1 {
        row = row.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect();
    }
    total += row[0];

    let upper_tail = 0.5 + total / std::f64::consts::PI;
    Ok((1.0 - upper_tail).clamp(0.0, 1.0))
}

/// Quantile of the quadratic form: solves `P(Q ≤ x) = p` by bisection.
///
/// # Errors
///
/// * [`NumError::Domain`] unless `0 < p < 1` (and eigenvalues are valid),
/// * propagates [`imhof_cdf`] failures.
pub fn imhof_quantile(eigenvalues: &[f64], p: f64) -> Result<f64> {
    if !(0.0 < p && p < 1.0) {
        return Err(NumError::Domain {
            detail: format!("quantile requires 0 < p < 1, got {p}"),
        });
    }
    let mean: f64 = eigenvalues.iter().sum();
    if mean <= 0.0 {
        return Ok(0.0);
    }
    let mut lo = 0.0;
    let mut hi = mean;
    while imhof_cdf(eigenvalues, hi)? < p {
        hi *= 2.0;
        if hi > mean * 1e6 {
            return Err(NumError::NoConvergence {
                iterations: 0,
                residual: hi,
                dimension: eigenvalues.len(),
            });
        }
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if imhof_cdf(eigenvalues, mid)? < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) < 1e-9 * mean {
            break;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ChiSquared, ContinuousDistribution, Gamma};

    #[test]
    fn single_eigenvalue_is_scaled_chi2_one() {
        let chi = ChiSquared::new(1.0).unwrap();
        for &x in &[0.1, 0.5, 1.0, 2.5, 6.0] {
            let p = imhof_cdf(&[3.0], 3.0 * x).unwrap();
            assert!(
                (p - chi.cdf(x)).abs() < 1e-8,
                "x={x}: imhof {p} vs chi2 {}",
                chi.cdf(x)
            );
        }
    }

    #[test]
    fn equal_eigenvalues_match_chi2_k() {
        // Q = λ(Z₁² + ... + Z_k²) = λ·χ²(k).
        let k = 5;
        let lam = 0.7;
        let chi = ChiSquared::new(k as f64).unwrap();
        let eigen = vec![lam; k];
        for &x in &[1.0, 3.0, 5.0, 9.0, 15.0] {
            let p = imhof_cdf(&eigen, lam * x).unwrap();
            assert!((p - chi.cdf(x)).abs() < 1e-8, "x={x}");
        }
    }

    #[test]
    fn mixed_eigenvalues_match_monte_carlo() {
        use crate::rng::{NormalSampler, Xoshiro256pp};
        let eigen = [2.0, 1.0, 0.5, 0.25, 0.1];
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        let mut ns = NormalSampler::new();
        let n = 200_000;
        let x_test = 4.0;
        let below = (0..n)
            .filter(|_| {
                let q: f64 = eigen
                    .iter()
                    .map(|&l| {
                        let z = ns.sample(&mut rng);
                        l * z * z
                    })
                    .sum();
                q <= x_test
            })
            .count();
        let mc = below as f64 / n as f64;
        let p = imhof_cdf(&eigen, x_test).unwrap();
        assert!((p - mc).abs() < 0.005, "imhof {p} vs MC {mc}");
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let eigen = [1.5, 0.9, 0.3];
        let mut prev = 0.0;
        for i in 1..40 {
            let x = i as f64 * 0.3;
            let p = imhof_cdf(&eigen, x).unwrap();
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev - 1e-10, "not monotone at {x}");
            prev = p;
        }
    }

    #[test]
    fn quantile_round_trips() {
        let eigen = [2.0, 1.0, 0.5];
        for &p in &[0.05, 0.5, 0.95] {
            let x = imhof_quantile(&eigen, p).unwrap();
            let back = imhof_cdf(&eigen, x).unwrap();
            assert!((back - p).abs() < 1e-7, "p={p}: {back}");
        }
    }

    #[test]
    fn chi2_two_moment_fit_is_close_but_not_exact() {
        // Quantifies what Yuan–Bentler trades for speed: for a skewed
        // eigenvalue set the χ² fit deviates from the exact law by a few
        // percent in CDF, and Imhof resolves that.
        let eigen = [5.0, 0.2, 0.2, 0.2];
        let tr: f64 = eigen.iter().sum();
        let tr2: f64 = eigen.iter().map(|l| l * l).sum();
        let fit = Gamma::new(tr * tr / tr2 / 2.0, 2.0 * tr2 / tr).unwrap();
        let mut max_gap = 0.0f64;
        for i in 1..30 {
            let x = i as f64 * 0.5;
            let exact = imhof_cdf(&eigen, x).unwrap();
            let approx = fit.cdf(x);
            max_gap = max_gap.max((exact - approx).abs());
        }
        assert!(max_gap > 0.005, "fit unexpectedly exact: {max_gap}");
        assert!(max_gap < 0.10, "fit unexpectedly bad: {max_gap}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(imhof_cdf(&[], 1.0).unwrap(), 1.0);
        assert_eq!(imhof_cdf(&[0.0, 0.0], -0.5).unwrap(), 0.0);
        assert_eq!(imhof_cdf(&[1.0], 0.0).unwrap(), 0.0);
        assert!(imhof_cdf(&[-1.0], 1.0).is_err());
        assert!(imhof_quantile(&[1.0], 0.0).is_err());
        assert!(imhof_quantile(&[1.0], 1.0).is_err());
    }
}
