//! Quad-tree spatial-correlation model (Agarwal et al., ASPDAC'03).
//!
//! The paper mentions the quad-tree model as the main alternative to the
//! grid model: the die is recursively quartered into `L` levels; level `ℓ`
//! has `4^ℓ` cells each carrying an independent random variable, and a
//! device's correlated variation is the sum of the variables of the cells
//! containing it, one per level. Two devices are more correlated the more
//! levels they share.
//!
//! [`QuadTreeModel::covariance_on_grid`] evaluates the implied covariance
//! at the centers of a [`GridSpec`], so the quad-tree plugs into the same
//! PCA pipeline as the paper's grid model.

use crate::{GridSpec, Result, VariationError};
use statobd_num::impl_json_struct;
use statobd_num::matrix::DMatrix;

/// A quad-tree correlation model with per-level variances.
///
/// # Example
///
/// ```
/// use statobd_variation::{QuadTreeModel, GridSpec};
///
/// // Three levels sharing the spatial variance equally.
/// let qt = QuadTreeModel::with_uniform_levels(3, 0.0147_f64.powi(2))?;
/// let grid = GridSpec::square_unit(4)?;
/// let cov = qt.covariance_on_grid(&grid);
/// // Same cell at every level ⇒ full variance on the diagonal.
/// assert!((cov[(0, 0)] - 0.0147_f64.powi(2)).abs() < 1e-12);
/// # Ok::<(), statobd_variation::VariationError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuadTreeModel {
    /// Variance assigned to each level, `level_variances[ℓ]` for level `ℓ`
    /// (level 0 is the whole die: the global component's natural home).
    level_variances: Vec<f64>,
}

impl_json_struct!(QuadTreeModel { level_variances });

impl QuadTreeModel {
    /// Creates a model from explicit per-level variances.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidParameter`] if empty or any
    /// variance is negative/non-finite.
    pub fn new(level_variances: Vec<f64>) -> Result<Self> {
        if level_variances.is_empty() {
            return Err(VariationError::InvalidParameter {
                detail: "quad-tree model needs at least one level".to_string(),
            });
        }
        if level_variances.iter().any(|&v| v < 0.0 || !v.is_finite()) {
            return Err(VariationError::InvalidParameter {
                detail: "level variances must be non-negative and finite".to_string(),
            });
        }
        Ok(QuadTreeModel { level_variances })
    }

    /// Creates `levels` levels that split `total_variance` equally.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidParameter`] if `levels == 0` or the
    /// variance is negative.
    pub fn with_uniform_levels(levels: usize, total_variance: f64) -> Result<Self> {
        if levels == 0 || total_variance < 0.0 {
            return Err(VariationError::InvalidParameter {
                detail: format!(
                    "need levels > 0 and non-negative variance, got {levels}, {total_variance}"
                ),
            });
        }
        Ok(QuadTreeModel {
            level_variances: vec![total_variance / levels as f64; levels],
        })
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.level_variances.len()
    }

    /// Per-level variances.
    pub fn level_variances(&self) -> &[f64] {
        &self.level_variances
    }

    /// Total correlated variance (sum over levels).
    pub fn total_variance(&self) -> f64 {
        self.level_variances.iter().sum()
    }

    /// Covariance between two points in normalized die coordinates
    /// `[0,1]²`: the sum of level variances over the levels where both
    /// points fall in the same quad-tree cell.
    pub fn covariance_points(&self, a: (f64, f64), b: (f64, f64)) -> f64 {
        let mut cov = 0.0;
        for (level, &var) in self.level_variances.iter().enumerate() {
            let cells = 1usize << level; // 2^level per axis
            let cell = |p: (f64, f64)| {
                let cx = ((p.0 * cells as f64).floor() as usize).min(cells - 1);
                let cy = ((p.1 * cells as f64).floor() as usize).min(cells - 1);
                (cx, cy)
            };
            if cell(a) == cell(b) {
                cov += var;
            }
        }
        cov
    }

    /// Evaluates the implied covariance matrix at the centers of `grid`
    /// (in normalized coordinates), producing input for
    /// [`crate::ThicknessModel::from_covariance`].
    pub fn covariance_on_grid(&self, grid: &GridSpec) -> DMatrix {
        let n = grid.n_grids();
        let norm = |g: usize| {
            let (x, y) = grid.center(g);
            (x / grid.chip_w(), y / grid.chip_h())
        };
        DMatrix::from_fn(n, n, |i, j| self.covariance_points(norm(i), norm(j)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_point_gets_total_variance() {
        let qt = QuadTreeModel::with_uniform_levels(4, 1.0).unwrap();
        assert!((qt.covariance_points((0.3, 0.7), (0.3, 0.7)) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn distant_points_share_only_level_zero() {
        let qt = QuadTreeModel::with_uniform_levels(4, 1.0).unwrap();
        // Opposite corners share only the root cell.
        let cov = qt.covariance_points((0.01, 0.01), (0.99, 0.99));
        assert!((cov - 0.25).abs() < 1e-15);
    }

    #[test]
    fn nearby_points_share_more_levels() {
        let qt = QuadTreeModel::with_uniform_levels(5, 1.0).unwrap();
        let near = qt.covariance_points((0.10, 0.10), (0.12, 0.12));
        let far = qt.covariance_points((0.10, 0.10), (0.45, 0.45));
        assert!(near > far, "near {near} should exceed far {far}");
    }

    #[test]
    fn covariance_decreases_with_distance_on_average() {
        let qt = QuadTreeModel::with_uniform_levels(4, 1.0).unwrap();
        let grid = GridSpec::square_unit(8).unwrap();
        let cov = qt.covariance_on_grid(&grid);
        // Monotone on average: compare adjacent vs far pairs from cell 0.
        assert!(cov[(0, 1)] >= cov[(0, 63)]);
        assert!(cov[(0, 0)] >= cov[(0, 1)]);
    }

    #[test]
    fn grid_covariance_is_symmetric_psd_compatible() {
        let qt = QuadTreeModel::new(vec![0.5, 0.3, 0.2]).unwrap();
        let grid = GridSpec::square_unit(4).unwrap();
        let cov = qt.covariance_on_grid(&grid);
        assert!(cov.is_symmetric(1e-12));
        // PSD: eigendecompose and check non-negative.
        let eig = statobd_num::eigen::SymmetricEigen::new(&cov).unwrap();
        for &l in eig.eigenvalues() {
            assert!(l > -1e-10, "eigenvalue {l}");
        }
    }

    #[test]
    fn pipeline_into_thickness_model() {
        use crate::{CorrelationKernel, ThicknessModel, VarianceBudget};
        let budget = VarianceBudget::itrs_2008(2.2).unwrap();
        let spatial_var = budget.sigma_spatial().powi(2) + budget.sigma_global().powi(2);
        let qt = QuadTreeModel::with_uniform_levels(3, spatial_var).unwrap();
        let grid = GridSpec::square_unit(4).unwrap();
        let cov = qt.covariance_on_grid(&grid);
        let model = ThicknessModel::from_covariance(
            grid,
            vec![2.2; 16],
            &cov,
            budget.sigma_independent(),
            budget,
            CorrelationKernel::Exponential { rel_distance: 0.5 },
            1.0,
        )
        .unwrap();
        assert!((model.grid_sigma(0) - spatial_var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(QuadTreeModel::new(vec![]).is_err());
        assert!(QuadTreeModel::new(vec![0.1, -0.2]).is_err());
        assert!(QuadTreeModel::with_uniform_levels(0, 1.0).is_err());
        assert!(QuadTreeModel::with_uniform_levels(2, -1.0).is_err());
    }
}
