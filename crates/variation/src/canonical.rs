//! The PCA canonical form of the thickness variation model (paper eq. 2).
//!
//! Assembles the grid-level covariance (global + spatially correlated
//! components), eigendecomposes it, and stores the loadings so the oxide
//! thickness of a device in grid `g` is
//!
//! ```text
//! x = nominal[g] + Σ_k loadings[g, k] · z_k + σ_ind · ε
//! ```
//!
//! with `z_k`, `ε` independent standard normals.

use crate::{
    CorrelationKernel, GridSpec, Result, SystematicPattern, VarianceBudget, VariationError,
};
use statobd_num::eigen::{SpectralOptions, SpectralSolver, SymmetricEigen};
use statobd_num::matrix::DMatrix;
use std::time::Instant;

/// Relative eigenvalue floor: components with `λ < EIG_FLOOR · λ_max` are
/// treated as numerically zero and dropped.
const EIG_FLOOR: f64 = 1e-12;

/// Wall-clock breakdown of one model construction (see
/// [`ThicknessModelBuilder::build_with_stats`]): covariance assembly,
/// eigendecomposition, and loading truncation/scaling, plus what the
/// spectral stage produced. The timings are measured, so they vary
/// run-to-run; the structural fields are deterministic.
#[derive(Debug, Clone, Copy)]
pub struct ModelBuildStats {
    /// Correlation-grid count `n` (the covariance is `n × n`).
    pub n_grids: usize,
    /// Principal components retained by the truncation.
    pub n_components: usize,
    /// Eigensolver backend that actually ran.
    pub solver: SpectralSolver,
    /// Seconds spent assembling the grid covariance matrix.
    pub covariance_s: f64,
    /// Seconds spent in the (possibly truncated) eigendecomposition.
    pub eigen_s: f64,
    /// Seconds spent selecting components and scaling the loadings.
    pub truncation_s: f64,
}

impl ModelBuildStats {
    /// Total build time across the three stages.
    pub fn total_s(&self) -> f64 {
        self.covariance_s + self.eigen_s + self.truncation_s
    }
}

/// The canonical-form thickness variation model (paper eq. 2).
///
/// Built by [`ThicknessModelBuilder`]. The correlated part (inter-die
/// global + intra-die spatial) is expressed over independent standard
/// normal principal components; the residual independent part is a single
/// sigma (`λ_r`).
#[derive(Debug, Clone)]
pub struct ThicknessModel {
    grid: GridSpec,
    nominal: Vec<f64>,
    loadings: DMatrix,
    sigma_ind: f64,
    budget: VarianceBudget,
    kernel: CorrelationKernel,
}

impl ThicknessModel {
    /// The correlation grid.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Number of correlation grids `n`.
    pub fn n_grids(&self) -> usize {
        self.grid.n_grids()
    }

    /// Number of retained principal components.
    pub fn n_components(&self) -> usize {
        self.loadings.ncols()
    }

    /// Per-grid nominal thickness (`λ_{i,0}` of eq. 2: the technology
    /// nominal plus any systematic pattern offset).
    pub fn nominal(&self) -> &[f64] {
        &self.nominal
    }

    /// The `n_grids × n_components` loadings matrix (`λ_{i,j}` of eq. 2).
    pub fn loadings(&self) -> &DMatrix {
        &self.loadings
    }

    /// Residual independent sigma (`λ_r` of eq. 2).
    pub fn sigma_ind(&self) -> f64 {
        self.sigma_ind
    }

    /// The variance budget the model was built from.
    pub fn budget(&self) -> &VarianceBudget {
        &self.budget
    }

    /// The correlation kernel the model was built from.
    pub fn kernel(&self) -> &CorrelationKernel {
        &self.kernel
    }

    /// Correlated (grid-level) thickness for every grid given principal
    /// component values `z`: `nominal + loadings · z`.
    ///
    /// This is the per-die "base field"; adding `σ_ind·ε` per device
    /// completes a device sample.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != n_components()`.
    pub fn grid_base(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(
            z.len(),
            self.n_components(),
            "principal-component vector length mismatch"
        );
        let mut out = self.nominal.clone();
        for g in 0..self.n_grids() {
            let row = self.loadings.row(g);
            let mut acc = 0.0;
            for (l, zk) in row.iter().zip(z) {
                acc += l * zk;
            }
            out[g] += acc;
        }
        out
    }

    /// Correlated standard deviation of grid `g` (should equal
    /// `sqrt(σ_g² + σ_spa²)` up to truncation).
    ///
    /// # Panics
    ///
    /// Panics if `g >= n_grids()`.
    pub fn grid_sigma(&self, g: usize) -> f64 {
        assert!(g < self.n_grids(), "grid index out of range");
        self.loadings
            .row(g)
            .iter()
            .map(|l| l * l)
            .sum::<f64>()
            .sqrt()
    }

    /// Covariance between the correlated components of grids `a` and `b`,
    /// reconstructed from the loadings.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn covariance(&self, a: usize, b: usize) -> f64 {
        assert!(
            a < self.n_grids() && b < self.n_grids(),
            "grid index out of range"
        );
        let ra = self.loadings.row(a);
        let rb = self.loadings.row(b);
        ra.iter().zip(rb).map(|(x, y)| x * y).sum()
    }

    /// Total per-device thickness standard deviation (correlated +
    /// independent) for grid `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g >= n_grids()`.
    pub fn device_sigma(&self, g: usize) -> f64 {
        let s = self.grid_sigma(g);
        (s * s + self.sigma_ind * self.sigma_ind).sqrt()
    }

    /// Reconstructs a model from previously computed parts — the artifact
    /// cache load path, which must skip the eigendecomposition entirely.
    ///
    /// Validates the cross-field invariants (`nominal` and `loadings` rows
    /// must match the grid count; `sigma_ind` must be finite and
    /// non-negative) but trusts the loadings themselves: they are whatever
    /// PCA produced at build time.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidParameter`] on any dimension or
    /// domain violation.
    pub fn from_parts(
        grid: GridSpec,
        nominal: Vec<f64>,
        loadings: DMatrix,
        sigma_ind: f64,
        budget: VarianceBudget,
        kernel: CorrelationKernel,
    ) -> Result<Self> {
        let n = grid.n_grids();
        if nominal.len() != n {
            return Err(VariationError::InvalidParameter {
                detail: format!("nominal has {} entries for {} grids", nominal.len(), n),
            });
        }
        if loadings.nrows() != n {
            return Err(VariationError::InvalidParameter {
                detail: format!("loadings have {} rows for {} grids", loadings.nrows(), n),
            });
        }
        if !(sigma_ind >= 0.0) || !sigma_ind.is_finite() {
            return Err(VariationError::InvalidParameter {
                detail: format!("sigma_ind must be non-negative, got {sigma_ind}"),
            });
        }
        Ok(ThicknessModel {
            grid,
            nominal,
            loadings,
            sigma_ind,
            budget,
            kernel,
        })
    }

    /// Constructs a model directly from a caller-supplied grid covariance
    /// matrix (e.g. extracted from silicon, or from a quad-tree model).
    ///
    /// `covariance` must be the full correlated covariance (global +
    /// spatial), `n_grids × n_grids`. The eigensolver is chosen
    /// automatically; use [`ThicknessModel::from_covariance_with`] to pin
    /// it.
    ///
    /// # Errors
    ///
    /// * [`VariationError::InvalidParameter`] on dimension mismatches,
    /// * [`VariationError::InvalidCovariance`] if the matrix has a
    ///   significantly negative eigenvalue,
    /// * [`VariationError::Numerical`] if the eigendecomposition fails.
    pub fn from_covariance(
        grid: GridSpec,
        nominal: Vec<f64>,
        covariance: &DMatrix,
        sigma_ind: f64,
        budget: VarianceBudget,
        kernel: CorrelationKernel,
        energy_fraction: f64,
    ) -> Result<Self> {
        Self::from_covariance_with(
            grid,
            nominal,
            covariance,
            sigma_ind,
            budget,
            kernel,
            &SpectralOptions::energy(energy_fraction),
        )
    }

    /// As [`ThicknessModel::from_covariance`], but with full control over
    /// the spectral stage: solver backend, energy target, component cap,
    /// tolerance and threading (see [`SpectralOptions`]).
    ///
    /// With `energy_fraction < 1` on a large grid the decomposition takes
    /// the Lanczos top-k path and only the retained components are ever
    /// computed — the dominant cost of model construction drops from
    /// `O(n³)` to `O(k·n²)`.
    ///
    /// # Errors
    ///
    /// As for [`ThicknessModel::from_covariance`]. Note that a truncated
    /// (partial-spectrum) solve cannot observe the smallest eigenvalue, so
    /// indefiniteness beyond what the trace reveals goes undetected —
    /// repair measured covariances first (see
    /// [`crate::extraction::nearest_psd`]).
    pub fn from_covariance_with(
        grid: GridSpec,
        nominal: Vec<f64>,
        covariance: &DMatrix,
        sigma_ind: f64,
        budget: VarianceBudget,
        kernel: CorrelationKernel,
        spectral: &SpectralOptions,
    ) -> Result<Self> {
        Self::decompose_covariance(
            grid, nominal, covariance, sigma_ind, budget, kernel, spectral,
        )
        .map(|(model, _, _)| model)
    }

    /// Shared core: eigendecompose, validate, truncate, scale loadings.
    /// Returns the model plus the solver used and the `(eigen, truncation)`
    /// stage timings for [`ThicknessModelBuilder::build_with_stats`].
    fn decompose_covariance(
        grid: GridSpec,
        nominal: Vec<f64>,
        covariance: &DMatrix,
        sigma_ind: f64,
        budget: VarianceBudget,
        kernel: CorrelationKernel,
        spectral: &SpectralOptions,
    ) -> Result<(Self, SpectralSolver, (f64, f64))> {
        let n = grid.n_grids();
        if covariance.nrows() != n || covariance.ncols() != n {
            return Err(VariationError::InvalidParameter {
                detail: format!(
                    "covariance is {}x{} but the grid has {} cells",
                    covariance.nrows(),
                    covariance.ncols(),
                    n
                ),
            });
        }
        if nominal.len() != n {
            return Err(VariationError::InvalidParameter {
                detail: format!("nominal has {} entries for {} grids", nominal.len(), n),
            });
        }
        if !(sigma_ind >= 0.0) {
            return Err(VariationError::InvalidParameter {
                detail: format!("sigma_ind must be non-negative, got {sigma_ind}"),
            });
        }
        let energy_fraction = spectral.energy_fraction;
        if !(0.0 < energy_fraction && energy_fraction <= 1.0) {
            return Err(VariationError::InvalidParameter {
                detail: format!("energy_fraction must be in (0, 1], got {energy_fraction}"),
            });
        }

        let eigen_start = Instant::now();
        let eig = SymmetricEigen::with_options(covariance, spectral)?;
        let eigen_s = eigen_start.elapsed().as_secs_f64();

        let truncation_start = Instant::now();
        let eigenvalues = eig.eigenvalues();
        let lambda_max = eigenvalues.first().copied().unwrap_or(0.0).max(0.0);
        if eig.is_full() {
            if let Some(&min) = eigenvalues.last() {
                if min < -1e-8 * lambda_max.max(1.0) {
                    return Err(VariationError::InvalidCovariance {
                        min_eigenvalue: min,
                    });
                }
            }
        } else if covariance.trace() < -1e-8 * lambda_max.max(1.0) {
            // The partial spectrum cannot see the smallest eigenvalue; a
            // negative trace is the one indefiniteness signal still
            // available.
            return Err(VariationError::InvalidCovariance {
                min_eigenvalue: covariance.trace(),
            });
        }

        // Retain components: positive eigenvalues up to the requested
        // cumulative energy fraction. The total energy is the trace — for
        // a PSD covariance that equals the positive-eigenvalue sum, and
        // using the trace keeps the selection identical whether the
        // spectrum arrived complete (Jacobi/QL) or already truncated at
        // the same target (Lanczos).
        let total_energy = covariance.trace();
        let mut kept = 0;
        let mut cum = 0.0;
        for &l in eigenvalues {
            if l <= EIG_FLOOR * lambda_max
                || (total_energy > 0.0 && cum >= energy_fraction * total_energy)
            {
                break;
            }
            cum += l;
            kept += 1;
        }
        // Symmetric grids have exactly repeated eigenvalues; never cut
        // inside such a cluster or the retained subspace (and hence the
        // model covariance) would depend on the solver backend.
        kept = statobd_num::lanczos::extend_over_cluster(eigenvalues, kept, eigenvalues.len());
        // Degenerate case: a zero covariance (pure-independent budget).
        let loadings = if kept == 0 {
            DMatrix::zeros(n, 0)
        } else {
            let v = eig.eigenvectors();
            DMatrix::from_fn(n, kept, |g, k| v[(g, k)] * eigenvalues[k].sqrt())
        };
        let truncation_s = truncation_start.elapsed().as_secs_f64();

        let model = ThicknessModel {
            grid,
            nominal,
            loadings,
            sigma_ind,
            budget,
            kernel,
        };
        Ok((model, eig.solver(), (eigen_s, truncation_s)))
    }
}

impl statobd_num::json::ToJson for ThicknessModel {
    fn to_json(&self) -> statobd_num::json::Json {
        use statobd_num::json::Json;
        Json::Object(vec![
            ("grid".to_string(), self.grid.to_json()),
            (
                "nominal".to_string(),
                statobd_num::json::pack_f64s(&self.nominal),
            ),
            ("loadings".to_string(), self.loadings.to_json()),
            ("sigma_ind".to_string(), self.sigma_ind.to_json()),
            ("budget".to_string(), self.budget.to_json()),
            ("kernel".to_string(), self.kernel.to_json()),
        ])
    }
}

impl statobd_num::json::FromJson for ThicknessModel {
    fn from_json(v: &statobd_num::json::Json) -> statobd_num::json::Result<Self> {
        use statobd_num::json::JsonError;
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| JsonError::new(format!("missing field '{k}' in ThicknessModel")))
        };
        ThicknessModel::from_parts(
            GridSpec::from_json(field("grid")?)?,
            statobd_num::json::unpack_f64s(field("nominal")?)?,
            DMatrix::from_json(field("loadings")?)?,
            f64::from_json(field("sigma_ind")?)?,
            VarianceBudget::from_json(field("budget")?)?,
            CorrelationKernel::from_json(field("kernel")?)?,
        )
        .map_err(|e| JsonError::new(e.to_string()))
    }
}

/// Builder for [`ThicknessModel`] (paper Sec. II pipeline: covariance
/// assembly → PCA → canonical form).
///
/// # Example
///
/// ```
/// use statobd_variation::*;
///
/// let model = ThicknessModelBuilder::new()
///     .grid(GridSpec::square_unit(10)?)
///     .nominal(2.2)
///     .budget(VarianceBudget::itrs_2008(2.2)?)
///     .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
///     .systematic(SystematicPattern::None)
///     .build()?;
/// // Grid sigma reproduces the correlated budget.
/// let expected = (model.budget().sigma_global().powi(2)
///     + model.budget().sigma_spatial().powi(2)).sqrt();
/// assert!((model.grid_sigma(0) - expected).abs() < 1e-9);
/// # Ok::<(), VariationError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ThicknessModelBuilder {
    grid: Option<GridSpec>,
    nominal: Option<f64>,
    budget: Option<VarianceBudget>,
    kernel: Option<CorrelationKernel>,
    systematic: SystematicPattern,
    spectral: SpectralOptions,
}

impl Default for ThicknessModelBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ThicknessModelBuilder {
    /// Creates a builder with no defaults for the required fields (grid,
    /// nominal, budget, kernel).
    pub fn new() -> Self {
        ThicknessModelBuilder {
            grid: None,
            nominal: None,
            budget: None,
            kernel: None,
            systematic: SystematicPattern::None,
            spectral: SpectralOptions::full(),
        }
    }

    /// Sets the correlation grid (required).
    pub fn grid(mut self, grid: GridSpec) -> Self {
        self.grid = Some(grid);
        self
    }

    /// Sets the nominal oxide thickness `u₀` (required).
    pub fn nominal(mut self, u0: f64) -> Self {
        self.nominal = Some(u0);
        self
    }

    /// Sets the variance budget (required).
    pub fn budget(mut self, budget: VarianceBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the correlation kernel (required).
    pub fn kernel(mut self, kernel: CorrelationKernel) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Sets a wafer-level systematic pattern (optional; default none).
    pub fn systematic(mut self, pattern: SystematicPattern) -> Self {
        self.systematic = pattern;
        self
    }

    /// Sets the PCA energy fraction to retain (optional; default 1.0 keeps
    /// every numerically positive component). Fractions below 1 on a large
    /// grid route the decomposition onto the Lanczos top-k path.
    pub fn energy_fraction(mut self, fraction: f64) -> Self {
        self.spectral.energy_fraction = fraction;
        self
    }

    /// Sets the full spectral configuration — solver backend, energy
    /// target, component cap, tolerance, threading (optional; default
    /// full spectrum with automatic solver).
    pub fn spectral(mut self, spectral: SpectralOptions) -> Self {
        self.spectral = spectral;
        self
    }

    /// Assembles the covariance, runs PCA and builds the model.
    ///
    /// # Errors
    ///
    /// * [`VariationError::InvalidParameter`] if a required field is
    ///   missing or invalid,
    /// * [`VariationError::InvalidCovariance`] if the kernel produces an
    ///   indefinite covariance,
    /// * [`VariationError::Numerical`] on eigendecomposition failure.
    pub fn build(self) -> Result<ThicknessModel> {
        self.build_with_stats().map(|(model, _)| model)
    }

    /// As [`ThicknessModelBuilder::build`], additionally returning a
    /// wall-clock breakdown of the three construction stages (covariance
    /// assembly, eigendecomposition, truncation) — the numbers behind the
    /// `statobd bench --timings` report and the `models` benchmark.
    ///
    /// # Errors
    ///
    /// As for [`ThicknessModelBuilder::build`].
    pub fn build_with_stats(self) -> Result<(ThicknessModel, ModelBuildStats)> {
        let grid = self.grid.ok_or_else(|| VariationError::InvalidParameter {
            detail: "grid is required".to_string(),
        })?;
        let u0 = self
            .nominal
            .ok_or_else(|| VariationError::InvalidParameter {
                detail: "nominal thickness is required".to_string(),
            })?;
        if !(u0 > 0.0) || !u0.is_finite() {
            return Err(VariationError::InvalidParameter {
                detail: format!("nominal thickness must be positive, got {u0}"),
            });
        }
        let budget = self
            .budget
            .ok_or_else(|| VariationError::InvalidParameter {
                detail: "variance budget is required".to_string(),
            })?;
        let kernel = self
            .kernel
            .ok_or_else(|| VariationError::InvalidParameter {
                detail: "correlation kernel is required".to_string(),
            })?;
        if !kernel.is_valid() {
            return Err(VariationError::InvalidParameter {
                detail: format!("invalid kernel {kernel:?}"),
            });
        }

        let n = grid.n_grids();
        let var_g = budget.sigma_global().powi(2);
        let var_s = budget.sigma_spatial().powi(2);
        let dim = grid.max_dimension();
        let covariance_start = Instant::now();
        let cov = DMatrix::from_fn(n, n, |i, j| {
            let d = grid.distance(i, j);
            var_g + var_s * kernel.correlation(d, dim)
        });
        let covariance_s = covariance_start.elapsed().as_secs_f64();

        let nominal: Vec<f64> = (0..n)
            .map(|g| {
                let (x, y) = grid.center(g);
                u0 + self.systematic.offset(x / grid.chip_w(), y / grid.chip_h())
            })
            .collect();

        let (model, solver, (eigen_s, truncation_s)) = ThicknessModel::decompose_covariance(
            grid,
            nominal,
            &cov,
            budget.sigma_independent(),
            budget,
            kernel,
            &self.spectral,
        )?;
        let stats = ModelBuildStats {
            n_grids: n,
            n_components: model.n_components(),
            solver,
            covariance_s,
            eigen_s,
            truncation_s,
        };
        Ok((model, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_model(n: usize, rel: f64) -> ThicknessModel {
        ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(n).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: rel })
            .build()
            .unwrap()
    }

    #[test]
    fn loadings_reproduce_covariance() {
        let m = build_model(6, 0.5);
        let grid = *m.grid();
        let b = m.budget();
        let var_g = b.sigma_global().powi(2);
        let var_s = b.sigma_spatial().powi(2);
        for &(a, c) in &[(0usize, 0usize), (0, 35), (5, 17), (12, 12)] {
            let d = grid.distance(a, c);
            let expected = var_g + var_s * (-d / 0.5).exp();
            let got = m.covariance(a, c);
            assert!(
                (got - expected).abs() < 1e-10,
                "cov({a},{c}): {got} vs {expected}"
            );
        }
    }

    #[test]
    fn grid_sigma_matches_budget() {
        let m = build_model(5, 0.25);
        let b = m.budget();
        let expected = (b.sigma_global().powi(2) + b.sigma_spatial().powi(2)).sqrt();
        for g in 0..m.n_grids() {
            assert!((m.grid_sigma(g) - expected).abs() < 1e-10);
        }
        assert!((m.device_sigma(0) - b.sigma_total()).abs() < 1e-10);
    }

    #[test]
    fn grid_base_at_zero_is_nominal() {
        let m = build_model(4, 0.5);
        let z = vec![0.0; m.n_components()];
        assert_eq!(m.grid_base(&z), m.nominal().to_vec());
    }

    #[test]
    fn grid_base_shifts_with_first_component() {
        let m = build_model(4, 0.5);
        let mut z = vec![0.0; m.n_components()];
        z[0] = 1.0;
        let base = m.grid_base(&z);
        // First PC of a global+spatial covariance is close to the common
        // mode: all grids move the same direction.
        let signs: Vec<bool> = base.iter().zip(m.nominal()).map(|(b, n)| b > n).collect();
        assert!(signs.iter().all(|&s| s) || signs.iter().all(|&s| !s));
    }

    #[test]
    fn systematic_bowl_shifts_nominal() {
        let m = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(3).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .systematic(SystematicPattern::Bowl {
                depth: 0.01,
                center: (0.5, 0.5),
            })
            .build()
            .unwrap();
        // Center grid (index 4 of a 3x3) is the bowl minimum.
        let center = m.nominal()[4];
        for (g, &n) in m.nominal().iter().enumerate() {
            if g != 4 {
                assert!(n >= center, "grid {g}: {n} < center {center}");
            }
        }
    }

    #[test]
    fn energy_truncation_reduces_components() {
        let full = build_model(8, 0.75);
        let truncated = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(8).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.75 })
            .energy_fraction(0.99)
            .build()
            .unwrap();
        assert!(truncated.n_components() < full.n_components());
        // Truncated model still captures at least 99 % of grid variance.
        let expected = full.grid_sigma(0);
        assert!(truncated.grid_sigma(0) > 0.99 * expected);
    }

    #[test]
    fn pure_independent_budget_has_no_components() {
        let m = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(3).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::new(0.03, 0.0, 0.0, 1.0).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap();
        assert_eq!(m.n_components(), 0);
        assert_eq!(m.grid_sigma(0), 0.0);
        assert_eq!(m.sigma_ind(), 0.03);
        let base = m.grid_base(&[]);
        assert_eq!(base, m.nominal().to_vec());
    }

    #[test]
    fn builder_requires_all_fields() {
        assert!(ThicknessModelBuilder::new().build().is_err());
        assert!(ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(2).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .build()
            .is_err());
    }

    #[test]
    fn builder_rejects_bad_values() {
        let base = || {
            ThicknessModelBuilder::new()
                .grid(GridSpec::square_unit(2).unwrap())
                .budget(VarianceBudget::itrs_2008(2.2).unwrap())
                .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
        };
        assert!(base().nominal(-2.2).build().is_err());
        assert!(base()
            .nominal(2.2)
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.0 })
            .build()
            .is_err());
        assert!(base().nominal(2.2).energy_fraction(0.0).build().is_err());
        assert!(base().nominal(2.2).energy_fraction(1.5).build().is_err());
    }

    #[test]
    fn build_with_stats_reports_the_breakdown() {
        let (model, stats) = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(8).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build_with_stats()
            .unwrap();
        assert_eq!(stats.n_grids, 64);
        assert_eq!(stats.n_components, model.n_components());
        // n = 64 ≥ JACOBI_MAX_DIM, full spectrum → tridiagonal QL.
        assert_eq!(stats.solver, SpectralSolver::TridiagonalQl);
        assert!(stats.covariance_s >= 0.0);
        assert!(stats.eigen_s >= 0.0);
        assert!(stats.truncation_s >= 0.0);
        assert!(stats.total_s() >= stats.eigen_s);
    }

    #[test]
    fn solver_choice_does_not_change_the_model() {
        let build = |spectral: SpectralOptions| {
            ThicknessModelBuilder::new()
                .grid(GridSpec::square_unit(8).unwrap())
                .nominal(2.2)
                .budget(VarianceBudget::itrs_2008(2.2).unwrap())
                .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
                .spectral(spectral)
                .build()
                .unwrap()
        };
        // The exponential kernel has a flat spectral tail: on the 8x8 grid
        // 0.95 of the energy sits in the leading ~30 components, while
        // 0.9999 would need essentially all 64.
        let energy = 0.95;
        let jac = build(SpectralOptions::energy(energy).with_solver(SpectralSolver::Jacobi));
        let ql = build(SpectralOptions::energy(energy).with_solver(SpectralSolver::TridiagonalQl));
        let lan = build(SpectralOptions::energy(energy).with_solver(SpectralSolver::Lanczos));
        assert_eq!(jac.n_components(), ql.n_components());
        assert_eq!(jac.n_components(), lan.n_components());
        assert!(jac.n_components() < 64, "energy target should truncate");
        // The loadings differ by sign / degenerate rotation, but the
        // covariance they span is the same model.
        let scale = jac.covariance(0, 0);
        for &(a, b) in &[(0usize, 0usize), (0, 63), (9, 40), (21, 21)] {
            assert!((jac.covariance(a, b) - ql.covariance(a, b)).abs() < 1e-10 * scale);
            assert!((jac.covariance(a, b) - lan.covariance(a, b)).abs() < 1e-8 * scale);
        }
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        use statobd_num::json::{from_str, to_string};
        let m = build_model(6, 0.5);
        let back: ThicknessModel = from_str(&to_string(&m)).unwrap();
        assert_eq!(back.n_grids(), m.n_grids());
        assert_eq!(back.n_components(), m.n_components());
        assert_eq!(back.sigma_ind().to_bits(), m.sigma_ind().to_bits());
        for (a, b) in m
            .loadings()
            .as_slice()
            .iter()
            .zip(back.loadings().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in m.nominal().iter().zip(back.nominal()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn from_parts_validates_dimensions() {
        let m = build_model(3, 0.5);
        // Wrong nominal length.
        assert!(ThicknessModel::from_parts(
            *m.grid(),
            vec![2.2; 5],
            m.loadings().clone(),
            m.sigma_ind(),
            *m.budget(),
            *m.kernel(),
        )
        .is_err());
        // Wrong loadings row count.
        assert!(ThicknessModel::from_parts(
            *m.grid(),
            m.nominal().to_vec(),
            DMatrix::zeros(4, 2),
            m.sigma_ind(),
            *m.budget(),
            *m.kernel(),
        )
        .is_err());
        // Negative sigma.
        assert!(ThicknessModel::from_parts(
            *m.grid(),
            m.nominal().to_vec(),
            m.loadings().clone(),
            -0.1,
            *m.budget(),
            *m.kernel(),
        )
        .is_err());
    }

    #[test]
    fn from_covariance_checks_dimensions() {
        let grid = GridSpec::square_unit(2).unwrap();
        let cov = DMatrix::identity(3); // wrong size
        let err = ThicknessModel::from_covariance(
            grid,
            vec![2.2; 4],
            &cov,
            0.01,
            VarianceBudget::itrs_2008(2.2).unwrap(),
            CorrelationKernel::Exponential { rel_distance: 0.5 },
            1.0,
        );
        assert!(err.is_err());
    }
}
