//! Spatial-correlation kernels.
//!
//! The paper derives its covariance matrix "from an exponential decaying
//! function of the respective distance" with the correlation distance
//! normalized to the chip dimensions (its `ρ_dist` is swept over
//! {0.25, 0.5, 0.75} in Table IV). Gaussian and spherical kernels are
//! provided for robustness studies.

use statobd_num::json::{FromJson, Json, JsonError, ToJson};

/// A stationary isotropic correlation kernel `ρ(d)` with `ρ(0) = 1`.
///
/// `rel_distance` is the correlation length *relative to the larger chip
/// dimension*, matching the paper's normalization.
///
/// # Example
///
/// ```
/// use statobd_variation::CorrelationKernel;
///
/// let k = CorrelationKernel::Exponential { rel_distance: 0.5 };
/// assert_eq!(k.correlation(0.0, 1.0), 1.0);
/// let half = k.correlation(0.5, 1.0); // one correlation length away
/// assert!((half - (-1.0f64).exp()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CorrelationKernel {
    /// `ρ(d) = exp(−d / (rel_distance · L))` — the paper's choice.
    Exponential {
        /// Correlation length relative to the chip dimension `L`.
        rel_distance: f64,
    },
    /// `ρ(d) = exp(−(d / (rel_distance · L))²)` — smoother short-range
    /// behaviour.
    Gaussian {
        /// Correlation length relative to the chip dimension `L`.
        rel_distance: f64,
    },
    /// Spherical kernel: compactly supported,
    /// `ρ(d) = 1 − 1.5 h + 0.5 h³` for `h = d/(rel_distance·L) ≤ 1`, else 0.
    Spherical {
        /// Support radius relative to the chip dimension `L`.
        rel_distance: f64,
    },
}

impl ToJson for CorrelationKernel {
    fn to_json(&self) -> Json {
        let (name, rel_distance) = match *self {
            CorrelationKernel::Exponential { rel_distance } => ("Exponential", rel_distance),
            CorrelationKernel::Gaussian { rel_distance } => ("Gaussian", rel_distance),
            CorrelationKernel::Spherical { rel_distance } => ("Spherical", rel_distance),
        };
        Json::Object(vec![(
            name.to_string(),
            Json::Object(vec![(
                "rel_distance".to_string(),
                Json::Number(rel_distance),
            )]),
        )])
    }
}

impl FromJson for CorrelationKernel {
    fn from_json(v: &Json) -> statobd_num::json::Result<Self> {
        let [(name, body)] = v
            .as_object()
            .ok_or_else(|| JsonError::new("expected a CorrelationKernel object"))?
        else {
            return Err(JsonError::new(
                "expected a single-variant CorrelationKernel object",
            ));
        };
        let rel_distance = f64::from_json(body.get("rel_distance").ok_or_else(|| {
            JsonError::new("CorrelationKernel variant is missing 'rel_distance'")
        })?)?;
        match name.as_str() {
            "Exponential" => Ok(CorrelationKernel::Exponential { rel_distance }),
            "Gaussian" => Ok(CorrelationKernel::Gaussian { rel_distance }),
            "Spherical" => Ok(CorrelationKernel::Spherical { rel_distance }),
            other => Err(JsonError::new(format!(
                "unknown CorrelationKernel variant '{other}'"
            ))),
        }
    }
}

impl CorrelationKernel {
    /// The relative correlation length parameter.
    pub fn rel_distance(&self) -> f64 {
        match *self {
            CorrelationKernel::Exponential { rel_distance }
            | CorrelationKernel::Gaussian { rel_distance }
            | CorrelationKernel::Spherical { rel_distance } => rel_distance,
        }
    }

    /// Returns `true` if the parameterization is valid (positive, finite
    /// relative distance).
    pub fn is_valid(&self) -> bool {
        let r = self.rel_distance();
        r > 0.0 && r.is_finite()
    }

    /// Correlation at distance `d` on a chip whose normalizing dimension is
    /// `chip_dim`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the kernel is invalid; release builds
    /// produce `NaN`s which the covariance assembly rejects.
    pub fn correlation(&self, d: f64, chip_dim: f64) -> f64 {
        debug_assert!(self.is_valid(), "invalid kernel parameter");
        let len = self.rel_distance() * chip_dim;
        match *self {
            CorrelationKernel::Exponential { .. } => (-d / len).exp(),
            CorrelationKernel::Gaussian { .. } => (-(d / len) * (d / len)).exp(),
            CorrelationKernel::Spherical { .. } => {
                let h = d / len;
                if h >= 1.0 {
                    0.0
                } else {
                    1.0 - 1.5 * h + 0.5 * h * h * h
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_are_one_at_zero() {
        for k in [
            CorrelationKernel::Exponential { rel_distance: 0.5 },
            CorrelationKernel::Gaussian { rel_distance: 0.5 },
            CorrelationKernel::Spherical { rel_distance: 0.5 },
        ] {
            assert_eq!(k.correlation(0.0, 1.0), 1.0);
        }
    }

    #[test]
    fn kernels_decay_monotonically() {
        for k in [
            CorrelationKernel::Exponential { rel_distance: 0.4 },
            CorrelationKernel::Gaussian { rel_distance: 0.4 },
            CorrelationKernel::Spherical { rel_distance: 0.4 },
        ] {
            let mut prev = 1.0;
            for i in 1..20 {
                let c = k.correlation(i as f64 * 0.1, 1.0);
                assert!(c <= prev + 1e-15, "{k:?} not decaying at step {i}");
                assert!((0.0..=1.0).contains(&c));
                prev = c;
            }
        }
    }

    #[test]
    fn spherical_has_compact_support() {
        let k = CorrelationKernel::Spherical { rel_distance: 0.3 };
        assert_eq!(k.correlation(0.30001, 1.0), 0.0);
        assert!(k.correlation(0.29, 1.0) > 0.0);
    }

    #[test]
    fn chip_dim_scales_the_length() {
        let k = CorrelationKernel::Exponential { rel_distance: 0.5 };
        // Distance 1 on a chip of dimension 2 == distance 0.5 on dimension 1.
        assert!((k.correlation(1.0, 2.0) - k.correlation(0.5, 1.0)).abs() < 1e-15);
    }

    #[test]
    fn validity_check() {
        assert!(!CorrelationKernel::Exponential { rel_distance: 0.0 }.is_valid());
        assert!(!CorrelationKernel::Gaussian { rel_distance: -1.0 }.is_valid());
        assert!(CorrelationKernel::Spherical { rel_distance: 0.7 }.is_valid());
    }
}
