//! The spatial-correlation grid (paper Fig. 2): the chip is partitioned
//! into `nx × ny` rectangular grids, each carrying one random variable for
//! the spatially correlated component of thickness variation.

use crate::{Result, VariationError};
use statobd_num::impl_json_struct;

/// Rectangular grid partition of a chip.
///
/// Grid cells are indexed row-major: cell `(ix, iy)` has linear index
/// `iy * nx + ix`, with `x` across the chip width and `y` across the
/// height. Distances between grids are measured center-to-center, which is
/// how the paper's exponential-decay covariance is evaluated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    chip_w: f64,
    chip_h: f64,
    nx: usize,
    ny: usize,
}

impl_json_struct!(GridSpec {
    chip_w,
    chip_h,
    nx,
    ny,
});

impl GridSpec {
    /// Creates a grid over a `chip_w × chip_h` die.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidParameter`] if the dimensions are
    /// not positive or either grid count is zero.
    pub fn new(chip_w: f64, chip_h: f64, nx: usize, ny: usize) -> Result<Self> {
        if !(chip_w > 0.0) || !(chip_h > 0.0) || !chip_w.is_finite() || !chip_h.is_finite() {
            return Err(VariationError::InvalidParameter {
                detail: format!("chip dimensions must be positive, got {chip_w} x {chip_h}"),
            });
        }
        if nx == 0 || ny == 0 {
            return Err(VariationError::InvalidParameter {
                detail: format!("grid counts must be positive, got {nx} x {ny}"),
            });
        }
        Ok(GridSpec {
            chip_w,
            chip_h,
            nx,
            ny,
        })
    }

    /// Square `n × n` grid over a square unit chip — the paper's default
    /// configuration (Table V explores 10×10, 20×20, 25×25).
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidParameter`] if `n == 0`.
    pub fn square_unit(n: usize) -> Result<Self> {
        Self::new(1.0, 1.0, n, n)
    }

    /// Chip width.
    pub fn chip_w(&self) -> f64 {
        self.chip_w
    }

    /// Chip height.
    pub fn chip_h(&self) -> f64 {
        self.chip_h
    }

    /// Grid count along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid count along y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of grid cells.
    pub fn n_grids(&self) -> usize {
        self.nx * self.ny
    }

    /// The larger chip dimension, used to normalize correlation distances.
    pub fn max_dimension(&self) -> f64 {
        self.chip_w.max(self.chip_h)
    }

    /// Center coordinates of grid `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g >= n_grids()`.
    pub fn center(&self, g: usize) -> (f64, f64) {
        assert!(g < self.n_grids(), "grid index {g} out of range");
        let ix = g % self.nx;
        let iy = g / self.nx;
        (
            (ix as f64 + 0.5) * self.chip_w / self.nx as f64,
            (iy as f64 + 0.5) * self.chip_h / self.ny as f64,
        )
    }

    /// Center-to-center distance between grids `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        let (xa, ya) = self.center(a);
        let (xb, yb) = self.center(b);
        ((xa - xb).powi(2) + (ya - yb).powi(2)).sqrt()
    }

    /// Linear grid index containing the point `(x, y)` (clamped to the die).
    pub fn grid_of_point(&self, x: f64, y: f64) -> usize {
        let fx = (x / self.chip_w * self.nx as f64).floor();
        let fy = (y / self.chip_h * self.ny as f64).floor();
        let ix = (fx.max(0.0) as usize).min(self.nx - 1);
        let iy = (fy.max(0.0) as usize).min(self.ny - 1);
        iy * self.nx + ix
    }

    /// Fraction of the axis-aligned rectangle `(x0, y0)–(x1, y1)` that
    /// overlaps each grid cell, as `(grid_index, overlap_area)` pairs for
    /// cells with non-zero overlap.
    ///
    /// Used to apportion a functional block's devices across correlation
    /// grids. The rectangle is clipped to the die.
    pub fn rect_overlaps(&self, x0: f64, y0: f64, x1: f64, y1: f64) -> Vec<(usize, f64)> {
        let x0 = x0.clamp(0.0, self.chip_w);
        let x1 = x1.clamp(0.0, self.chip_w);
        let y0 = y0.clamp(0.0, self.chip_h);
        let y1 = y1.clamp(0.0, self.chip_h);
        if !(x0 < x1) || !(y0 < y1) {
            return Vec::new();
        }
        let gw = self.chip_w / self.nx as f64;
        let gh = self.chip_h / self.ny as f64;
        let ix0 = ((x0 / gw).floor() as usize).min(self.nx - 1);
        let ix1 = (((x1 / gw).ceil() as usize).max(1) - 1).min(self.nx - 1);
        let iy0 = ((y0 / gh).floor() as usize).min(self.ny - 1);
        let iy1 = (((y1 / gh).ceil() as usize).max(1) - 1).min(self.ny - 1);
        let mut out = Vec::new();
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                let cx0 = ix as f64 * gw;
                let cy0 = iy as f64 * gh;
                let ox = (x1.min(cx0 + gw) - x0.max(cx0)).max(0.0);
                let oy = (y1.min(cy0 + gh) - y0.max(cy0)).max(0.0);
                let area = ox * oy;
                if area > 0.0 {
                    out.push((iy * self.nx + ix, area));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centers_and_indexing() {
        let g = GridSpec::new(2.0, 1.0, 4, 2).unwrap();
        assert_eq!(g.n_grids(), 8);
        assert_eq!(g.center(0), (0.25, 0.25));
        assert_eq!(g.center(7), (1.75, 0.75));
        assert_eq!(g.grid_of_point(0.1, 0.1), 0);
        assert_eq!(g.grid_of_point(1.9, 0.9), 7);
    }

    #[test]
    fn grid_of_point_clamps() {
        let g = GridSpec::square_unit(3).unwrap();
        assert_eq!(g.grid_of_point(-1.0, -1.0), 0);
        assert_eq!(g.grid_of_point(2.0, 2.0), 8);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_diagonal() {
        let g = GridSpec::square_unit(5).unwrap();
        assert_eq!(g.distance(3, 3), 0.0);
        assert_eq!(g.distance(2, 17), g.distance(17, 2));
    }

    #[test]
    fn rect_overlaps_full_die_sums_to_area() {
        let g = GridSpec::new(2.0, 3.0, 4, 6).unwrap();
        let overlaps = g.rect_overlaps(0.0, 0.0, 2.0, 3.0);
        assert_eq!(overlaps.len(), 24);
        let total: f64 = overlaps.iter().map(|&(_, a)| a).sum();
        assert!((total - 6.0).abs() < 1e-12);
    }

    #[test]
    fn rect_overlaps_partial_cell() {
        let g = GridSpec::square_unit(2).unwrap();
        // Rectangle in the lower-left quarter cell only.
        let overlaps = g.rect_overlaps(0.0, 0.0, 0.25, 0.25);
        assert_eq!(overlaps, vec![(0, 0.0625)]);
        // Straddling two cells horizontally.
        let overlaps = g.rect_overlaps(0.25, 0.0, 0.75, 0.5);
        assert_eq!(overlaps.len(), 2);
        let total: f64 = overlaps.iter().map(|&(_, a)| a).sum();
        assert!((total - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rect_overlaps_degenerate_is_empty() {
        let g = GridSpec::square_unit(2).unwrap();
        assert!(g.rect_overlaps(0.5, 0.5, 0.5, 0.9).is_empty());
        assert!(g.rect_overlaps(0.9, 0.9, 0.1, 0.1).is_empty());
    }

    #[test]
    fn rejects_invalid_specs() {
        assert!(GridSpec::new(0.0, 1.0, 2, 2).is_err());
        assert!(GridSpec::new(1.0, 1.0, 0, 2).is_err());
        assert!(GridSpec::new(f64::INFINITY, 1.0, 2, 2).is_err());
    }

    #[test]
    fn json_round_trip() {
        let g = GridSpec::new(1.5, 2.5, 10, 20).unwrap();
        let json = statobd_num::json::to_string(&g);
        let back: GridSpec = statobd_num::json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
