//! Wafer-level systematic thickness patterns.
//!
//! Recent variation literature (the paper cites Cheng et al., DAC'09)
//! attributes part of the "spatially correlated" component to a
//! deterministic wafer-level pattern — typically slanted or bowl-shaped —
//! characterized by low-order polynomials of position. The paper notes its
//! model stays compatible by replacing the common inter-die component with
//! a location-dependent per-grid term; [`SystematicPattern`] implements
//! that extension.

use statobd_num::json::{FromJson, Json, JsonError, ToJson};

/// Deterministic location-dependent offset added to the per-grid nominal
/// thickness.
///
/// Coordinates are normalized chip coordinates in `[0, 1]²` (the grid
/// builder performs the normalization), so pattern magnitudes are in
/// thickness units directly.
///
/// # Example
///
/// ```
/// use statobd_variation::SystematicPattern;
///
/// // A bowl 10 pm deep centered on the die.
/// let bowl = SystematicPattern::Bowl { depth: 0.010, center: (0.5, 0.5) };
/// assert!((bowl.offset(0.5, 0.5) - (-0.010)).abs() < 1e-15);
/// assert!(bowl.offset(0.0, 0.0) > bowl.offset(0.5, 0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SystematicPattern {
    /// No systematic pattern (the paper's baseline model).
    #[default]
    None,
    /// Linear slant across the die: `offset = gx·(x−0.5) + gy·(y−0.5)`.
    Slanted {
        /// Thickness gradient across the full die width.
        gx: f64,
        /// Thickness gradient across the full die height.
        gy: f64,
    },
    /// Quadratic bowl: `offset = depth·(r² − 1)` with `r` the normalized
    /// distance from `center` (so the center sits `depth` below the rim).
    Bowl {
        /// Bowl depth in thickness units.
        depth: f64,
        /// Bowl center in normalized coordinates.
        center: (f64, f64),
    },
    /// General quadratic `c00 + c10·x + c01·y + c20·x² + c02·y² + c11·x·y`.
    Quadratic {
        /// Polynomial coefficients `[c00, c10, c01, c20, c02, c11]`.
        coefficients: [f64; 6],
    },
}

impl ToJson for SystematicPattern {
    fn to_json(&self) -> Json {
        let variant = |name: &str, fields: Vec<(String, Json)>| {
            Json::Object(vec![(name.to_string(), Json::Object(fields))])
        };
        match *self {
            SystematicPattern::None => Json::String("None".to_string()),
            SystematicPattern::Slanted { gx, gy } => variant(
                "Slanted",
                vec![
                    ("gx".to_string(), Json::Number(gx)),
                    ("gy".to_string(), Json::Number(gy)),
                ],
            ),
            SystematicPattern::Bowl { depth, center } => variant(
                "Bowl",
                vec![
                    ("depth".to_string(), Json::Number(depth)),
                    ("center".to_string(), center.to_json()),
                ],
            ),
            SystematicPattern::Quadratic { coefficients } => variant(
                "Quadratic",
                vec![("coefficients".to_string(), coefficients.to_json())],
            ),
        }
    }
}

impl FromJson for SystematicPattern {
    // An absent pattern means "no systematic pattern", so documents
    // written before the field existed keep parsing.
    fn from_missing() -> Option<Self> {
        Some(SystematicPattern::None)
    }

    fn from_json(v: &Json) -> statobd_num::json::Result<Self> {
        if let Some("None") = v.as_str() {
            return Ok(SystematicPattern::None);
        }
        let [(name, body)] = v
            .as_object()
            .ok_or_else(|| JsonError::new("expected a SystematicPattern object or \"None\""))?
        else {
            return Err(JsonError::new(
                "expected a single-variant SystematicPattern object",
            ));
        };
        let field = |key: &str| {
            body.get(key).ok_or_else(|| {
                JsonError::new(format!("SystematicPattern::{name} is missing '{key}'"))
            })
        };
        match name.as_str() {
            "Slanted" => Ok(SystematicPattern::Slanted {
                gx: f64::from_json(field("gx")?)?,
                gy: f64::from_json(field("gy")?)?,
            }),
            "Bowl" => Ok(SystematicPattern::Bowl {
                depth: f64::from_json(field("depth")?)?,
                center: FromJson::from_json(field("center")?)?,
            }),
            "Quadratic" => Ok(SystematicPattern::Quadratic {
                coefficients: FromJson::from_json(field("coefficients")?)?,
            }),
            other => Err(JsonError::new(format!(
                "unknown SystematicPattern variant '{other}'"
            ))),
        }
    }
}

impl SystematicPattern {
    /// Offset at normalized coordinates `(x, y) ∈ [0,1]²`.
    pub fn offset(&self, x: f64, y: f64) -> f64 {
        match *self {
            SystematicPattern::None => 0.0,
            SystematicPattern::Slanted { gx, gy } => gx * (x - 0.5) + gy * (y - 0.5),
            SystematicPattern::Bowl { depth, center } => {
                let dx = x - center.0;
                let dy = y - center.1;
                // Normalize: a corner-to-center distance of ~0.707 maps to
                // r = 1 when centered; scale so r² ∈ [0, ~1].
                let r2 = 2.0 * (dx * dx + dy * dy);
                depth * (r2 - 1.0)
            }
            SystematicPattern::Quadratic { coefficients: c } => {
                c[0] + c[1] * x + c[2] * y + c[3] * x * x + c[4] * y * y + c[5] * x * y
            }
        }
    }

    /// Returns `true` if this is [`SystematicPattern::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, SystematicPattern::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_zero_everywhere() {
        let p = SystematicPattern::None;
        assert_eq!(p.offset(0.0, 0.0), 0.0);
        assert_eq!(p.offset(0.5, 1.0), 0.0);
        assert!(p.is_none());
    }

    #[test]
    fn slant_is_antisymmetric_about_center() {
        let p = SystematicPattern::Slanted {
            gx: 0.02,
            gy: -0.01,
        };
        assert_eq!(p.offset(0.5, 0.5), 0.0);
        assert!((p.offset(1.0, 0.5) + p.offset(0.0, 0.5)).abs() < 1e-15);
        assert!((p.offset(1.0, 0.5) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn bowl_center_is_minimum() {
        let p = SystematicPattern::Bowl {
            depth: 0.01,
            center: (0.5, 0.5),
        };
        let center = p.offset(0.5, 0.5);
        for &(x, y) in &[(0.0, 0.0), (1.0, 0.5), (0.3, 0.8)] {
            assert!(p.offset(x, y) >= center);
        }
        // Corner sits at r² = 1, i.e. offset 0 (the rim).
        assert!(p.offset(0.0, 0.0).abs() < 1e-15);
    }

    #[test]
    fn quadratic_evaluates_polynomial() {
        let p = SystematicPattern::Quadratic {
            coefficients: [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        };
        // 1 + 2·0.5 + 3·1 + 4·0.25 + 5·1 + 6·0.5 = 14
        assert!((p.offset(0.5, 1.0) - 14.0).abs() < 1e-12);
    }
}
