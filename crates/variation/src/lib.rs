//! Gate-oxide thickness variation modeling (paper Sec. II).
//!
//! The oxide thickness of a device is decomposed as
//!
//! ```text
//! x = u₀ + z_g + z_corr + z_ε                      (paper eq. 1)
//! ```
//!
//! with a die-to-die *global* component `z_g`, a *spatially correlated*
//! intra-die component `z_corr` (grid model: one random variable per grid,
//! exponentially decaying correlation with distance) and an *independent*
//! residual `z_ε` per device.
//!
//! The correlated structure is diagonalized by principal-component analysis
//! into the canonical form
//!
//! ```text
//! x = λ_{i,0} + Σ_j λ_{i,j} z_j + λ_r ε            (paper eq. 2)
//! ```
//!
//! which [`ThicknessModel`] represents: a loadings matrix over mutually
//! independent standard-normal principal components `z_j`, a per-grid
//! nominal, and the residual sigma `λ_r`.
//!
//! # Example
//!
//! ```
//! use statobd_variation::{GridSpec, VarianceBudget, CorrelationKernel, ThicknessModelBuilder};
//!
//! // Table II of the paper: u0 = 2.2 nm, 3σ/u0 = 4 %, split 50/25/25.
//! let budget = VarianceBudget::itrs_2008(2.2)?;
//! let model = ThicknessModelBuilder::new()
//!     .grid(GridSpec::new(1.0, 1.0, 5, 5)?)
//!     .nominal(2.2)
//!     .budget(budget)
//!     .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
//!     .build()?;
//! assert_eq!(model.n_grids(), 25);
//! # Ok::<(), statobd_variation::VariationError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod budget;
mod canonical;
mod extraction;
mod grid;
mod kernel;
mod quadtree;
mod sampling;
mod systematic;

pub use budget::VarianceBudget;
pub use canonical::{ModelBuildStats, ThicknessModel, ThicknessModelBuilder};
pub use extraction::{extract_covariance, nearest_psd, nearest_psd_with, ExtractedModel};
pub use grid::GridSpec;
pub use kernel::CorrelationKernel;
pub use quadtree::QuadTreeModel;
pub use sampling::{FieldSampler, GridBaseSample};
pub use systematic::SystematicPattern;

use statobd_num::NumError;

/// Errors produced by the variation-model construction pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum VariationError {
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Description of the offending parameter.
        detail: String,
    },
    /// The assembled covariance matrix is not positive semidefinite (after
    /// allowing for round-off): the kernel/budget combination is invalid.
    InvalidCovariance {
        /// Most negative eigenvalue encountered.
        min_eigenvalue: f64,
    },
    /// An underlying numerical routine failed.
    Numerical(NumError),
}

impl std::fmt::Display for VariationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VariationError::InvalidParameter { detail } => {
                write!(f, "invalid parameter: {detail}")
            }
            VariationError::InvalidCovariance { min_eigenvalue } => write!(
                f,
                "covariance matrix is not positive semidefinite (min eigenvalue {min_eigenvalue:.3e})"
            ),
            VariationError::Numerical(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl std::error::Error for VariationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VariationError::Numerical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumError> for VariationError {
    fn from(e: NumError) -> Self {
        VariationError::Numerical(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, VariationError>;
