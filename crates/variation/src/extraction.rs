//! Robust extraction of the spatial-correlation model from wafer
//! measurement data (the Xiong–Zolotov–He step the paper's Sec. II points
//! to: "the covariance matrix could be determined from measurement data
//! extracted from manufactured wafers").
//!
//! Given per-die thickness measurements at the grid locations, the raw
//! sample covariance is (a) noisy and (b) not guaranteed positive
//! semidefinite once measurement noise and missing data enter. The robust
//! extraction here:
//!
//! 1. computes the sample covariance across dies,
//! 2. optionally subtracts a known measurement-noise variance from the
//!    diagonal,
//! 3. projects to the nearest PSD matrix in Frobenius norm (eigenvalue
//!    clipping),
//!
//! producing a covariance directly usable by
//! [`crate::ThicknessModel::from_covariance`].
//!
//! The projection itself is tiered like the rest of the spectral pipeline:
//! small matrices clip the full spectrum, large ones extract only the
//! negative eigenpairs (Lanczos on `−A`) and add the rank-`m` repair
//! `A + Σ (−λᵢ)·vᵢvᵢᵀ` — the identical Frobenius-nearest projection
//! without ever resolving the (large, already valid) positive spectrum.

use crate::{Result, VariationError};
use statobd_num::eigen::{SpectralOptions, SpectralSolver, SymmetricEigen};
use statobd_num::lanczos::negative_eigenpairs;
use statobd_num::matrix::DMatrix;
use statobd_num::parallel::resolve_threads;

/// Relative floor for the partial repair: negative eigenvalues with
/// magnitude below `REPAIR_FLOOR · ‖A‖_F` are round-off, not structure,
/// and are left in place (the model builder tolerates them, as does the
/// full clipping path's `-1e-8` covariance check).
const REPAIR_FLOOR: f64 = 1e-12;

/// Result of a covariance extraction.
#[derive(Debug, Clone)]
pub struct ExtractedModel {
    /// Mean thickness per grid (the extracted nominal).
    pub mean: Vec<f64>,
    /// PSD-projected covariance of the correlated (grid-level) variation.
    pub covariance: DMatrix,
    /// Most negative raw eigenvalue before projection (a data-quality
    /// indicator: large magnitudes mean heavy noise or too few dies).
    pub min_raw_eigenvalue: f64,
}

/// Extracts the grid-level thickness covariance from per-die measurement
/// vectors (`samples[d][g]` = thickness of die `d` at grid `g`).
///
/// `noise_variance` is subtracted from the diagonal (set 0 for noiseless
/// data); after subtraction the matrix is projected to the nearest PSD
/// matrix by clipping negative eigenvalues to zero.
///
/// # Errors
///
/// Returns [`VariationError::InvalidParameter`] if fewer than 2 dies are
/// given, the dies have inconsistent lengths, or data is non-finite;
/// propagates eigendecomposition failures.
///
/// # Example
///
/// ```
/// use statobd_variation::extract_covariance;
///
/// // Three dies, two grids, perfectly correlated grids.
/// let samples = vec![
///     vec![2.18, 2.18],
///     vec![2.20, 2.20],
///     vec![2.22, 2.22],
/// ];
/// let ex = extract_covariance(&samples, 0.0)?;
/// assert!((ex.mean[0] - 2.20).abs() < 1e-12);
/// assert!((ex.covariance[(0, 1)] - ex.covariance[(0, 0)]).abs() < 1e-12);
/// # Ok::<(), statobd_variation::VariationError>(())
/// ```
pub fn extract_covariance(samples: &[Vec<f64>], noise_variance: f64) -> Result<ExtractedModel> {
    let n_dies = samples.len();
    if n_dies < 2 {
        return Err(VariationError::InvalidParameter {
            detail: format!("need at least 2 dies, got {n_dies}"),
        });
    }
    let n_grids = samples[0].len();
    if n_grids == 0 {
        return Err(VariationError::InvalidParameter {
            detail: "dies have no grid measurements".to_string(),
        });
    }
    for (d, die) in samples.iter().enumerate() {
        if die.len() != n_grids {
            return Err(VariationError::InvalidParameter {
                detail: format!("die {d} has {} measurements, expected {n_grids}", die.len()),
            });
        }
        if die.iter().any(|v| !v.is_finite()) {
            return Err(VariationError::InvalidParameter {
                detail: format!("die {d} contains non-finite measurements"),
            });
        }
    }
    if noise_variance < 0.0 || !noise_variance.is_finite() {
        return Err(VariationError::InvalidParameter {
            detail: format!("noise variance must be non-negative, got {noise_variance}"),
        });
    }

    // Per-grid means.
    let mut mean = vec![0.0; n_grids];
    for die in samples {
        for (m, &x) in mean.iter_mut().zip(die) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n_dies as f64;
    }

    // Sample covariance (unbiased), noise-corrected diagonal.
    let mut cov = DMatrix::zeros(n_grids, n_grids);
    for die in samples {
        for i in 0..n_grids {
            let di = die[i] - mean[i];
            for j in i..n_grids {
                let dj = die[j] - mean[j];
                cov[(i, j)] += di * dj;
            }
        }
    }
    let norm = 1.0 / (n_dies as f64 - 1.0);
    for i in 0..n_grids {
        for j in i..n_grids {
            let v = cov[(i, j)] * norm;
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
        cov[(i, i)] -= noise_variance;
    }

    let (projected, min_raw) = nearest_psd(&cov)?;
    Ok(ExtractedModel {
        mean,
        covariance: projected,
        min_raw_eigenvalue: min_raw,
    })
}

/// Projects a symmetric matrix to the nearest (Frobenius) positive
/// semidefinite matrix by clipping negative eigenvalues, returning the
/// projection and the most negative raw eigenvalue.
///
/// The solver is chosen by size: large matrices take the partial
/// negative-spectrum repair (see [`nearest_psd_with`]), small ones clip
/// the full spectrum.
///
/// # Errors
///
/// Propagates eigendecomposition failures for non-symmetric input.
pub fn nearest_psd(m: &DMatrix) -> Result<(DMatrix, f64)> {
    nearest_psd_with(m, &SpectralOptions::full())
}

/// As [`nearest_psd`], with explicit control over the spectral stage.
///
/// With the Lanczos backend (forced, or chosen by the auto dispatch for
/// `n ≥` [`SymmetricEigen::LANCZOS_MIN_DIM`]) only the eigenpairs with
/// `λ < −1e-12·‖A‖_F` (the repair floor) are extracted and repaired in
/// place:
/// `A ← A + Σ (−λᵢ)·vᵢvᵢᵀ`. For a near-PSD measured covariance that is a
/// handful of pairs instead of a full `O(n³)` decomposition. On the
/// partial path the reported "most negative eigenvalue" is `0.0` when no
/// eigenvalue lies below the floor.
///
/// # Errors
///
/// Propagates eigendecomposition failures for non-symmetric input.
pub fn nearest_psd_with(m: &DMatrix, spectral: &SpectralOptions) -> Result<(DMatrix, f64)> {
    let n = m.nrows();
    let solver = match spectral.solver {
        SpectralSolver::Auto => {
            if n >= SymmetricEigen::LANCZOS_MIN_DIM {
                // Negative-spectrum extraction is a top-k problem on −A,
                // so size alone decides — no energy fraction involved.
                SpectralSolver::Lanczos
            } else if n < SymmetricEigen::JACOBI_MAX_DIM {
                SpectralSolver::Jacobi
            } else {
                SpectralSolver::TridiagonalQl
            }
        }
        s => s,
    };

    if solver == SpectralSolver::Lanczos {
        let threads = resolve_threads(spectral.threads);
        let threshold = REPAIR_FLOOR * m.frobenius_norm();
        let (neg_vals, neg_vecs) = negative_eigenpairs(m, threshold, threads)?;
        let min_raw = neg_vals.first().copied().unwrap_or(0.0);
        if neg_vals.is_empty() {
            return Ok((m.clone(), min_raw));
        }
        let mut out = m.clone();
        for (k, &l) in neg_vals.iter().enumerate() {
            let v = neg_vecs.column(k);
            let c = -l; // positive: lift the negative direction to zero
            for (i, &vi) in v.iter().enumerate() {
                let row = out.row_mut(i);
                for (entry, &vj) in row.iter_mut().zip(&v) {
                    *entry += c * vi * vj;
                }
            }
        }
        return Ok((out, min_raw));
    }

    // Full-spectrum clip; the projection needs every eigenpair, so any
    // truncation in `spectral` is overridden here.
    let full = SpectralOptions {
        energy_fraction: 1.0,
        max_components: None,
        solver,
        ..*spectral
    };
    let eig = SymmetricEigen::with_options(m, &full)?;
    let min_raw = eig
        .eigenvalues()
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    if min_raw >= 0.0 {
        return Ok((m.clone(), min_raw));
    }
    let v = eig.eigenvectors();
    let clipped = DMatrix::from_fn(n, n, |i, j| {
        (0..n)
            .map(|k| eig.eigenvalues()[k].max(0.0) * v[(i, k)] * v[(j, k)])
            .sum()
    });
    Ok((clipped, min_raw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        CorrelationKernel, FieldSampler, GridSpec, ThicknessModel, ThicknessModelBuilder,
        VarianceBudget,
    };
    use statobd_num::rng::Xoshiro256pp;

    fn reference_model() -> ThicknessModel {
        ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(4).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap()
    }

    #[test]
    fn round_trips_a_known_model() {
        // Sample dies from a known model, extract, and compare the
        // covariance entries — the full extraction loop.
        let model = reference_model();
        let mut sampler = FieldSampler::new(&model);
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        let samples: Vec<Vec<f64>> = (0..20_000)
            .map(|_| sampler.sample_die(&mut rng).base)
            .collect();
        let extracted = extract_covariance(&samples, 0.0).unwrap();
        for g in 0..model.n_grids() {
            assert!((extracted.mean[g] - model.nominal()[g]).abs() < 1e-3);
        }
        for i in 0..model.n_grids() {
            for j in 0..model.n_grids() {
                let truth = model.covariance(i, j);
                let got = extracted.covariance[(i, j)];
                assert!(
                    (got - truth).abs() < 0.05 * truth.abs().max(1e-5),
                    "cov({i},{j}): {got:.3e} vs {truth:.3e}"
                );
            }
        }
    }

    #[test]
    fn extracted_covariance_feeds_the_model_builder() {
        let model = reference_model();
        let mut sampler = FieldSampler::new(&model);
        let mut rng = Xoshiro256pp::seed_from_u64(78);
        let samples: Vec<Vec<f64>> = (0..10_000)
            .map(|_| sampler.sample_die(&mut rng).base)
            .collect();
        let extracted = extract_covariance(&samples, 0.0).unwrap();
        let rebuilt = ThicknessModel::from_covariance(
            *model.grid(),
            extracted.mean,
            &extracted.covariance,
            model.sigma_ind(),
            *model.budget(),
            *model.kernel(),
            1.0,
        )
        .unwrap();
        // Grid sigma of the rebuilt model matches the source within
        // sampling error.
        for g in 0..model.n_grids() {
            let rel = (rebuilt.grid_sigma(g) - model.grid_sigma(g)).abs() / model.grid_sigma(g);
            assert!(rel < 0.05, "grid {g}: rel {rel}");
        }
    }

    #[test]
    fn noise_subtraction_corrects_the_diagonal() {
        let model = reference_model();
        let mut sampler = FieldSampler::new(&model);
        let mut rng = Xoshiro256pp::seed_from_u64(79);
        let noise_sd = 0.01;
        let mut normal = statobd_num::rng::NormalSampler::new();
        let samples: Vec<Vec<f64>> = (0..20_000)
            .map(|_| {
                let mut base = sampler.sample_die(&mut rng).base;
                for b in &mut base {
                    *b += noise_sd * normal.sample(&mut rng);
                }
                base
            })
            .collect();
        let corrected = extract_covariance(&samples, noise_sd * noise_sd).unwrap();
        let truth = model.covariance(0, 0);
        assert!(
            (corrected.covariance[(0, 0)] - truth).abs() < 0.08 * truth,
            "{} vs {truth}",
            corrected.covariance[(0, 0)]
        );
    }

    #[test]
    fn psd_projection_clips_negative_eigenvalues() {
        let indefinite = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        let (psd, min_raw) = nearest_psd(&indefinite).unwrap();
        assert!(min_raw < 0.0);
        let eig = SymmetricEigen::new(&psd).unwrap();
        for &l in eig.eigenvalues() {
            assert!(l >= -1e-12);
        }
        // Already-PSD input is untouched.
        let ok = DMatrix::from_rows(&[&[2.0, 0.5], &[0.5, 2.0]]);
        let (same, min2) = nearest_psd(&ok).unwrap();
        assert!(min2 > 0.0);
        assert_eq!(same, ok);
    }

    #[test]
    fn psd_repair_paths_agree_on_near_psd_measured_covariance() {
        // The measured-covariance failure mode: a valid model covariance
        // whose noise floor was over-subtracted, pushing the smallest few
        // eigenvalues slightly negative. Both projection paths — full
        // clip (QL) and partial negative-spectrum repair (Lanczos) — must
        // return the same Frobenius-nearest PSD matrix.
        let model = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(12).unwrap()) // n = 144 ≥ Lanczos floor
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap();
        let n = model.n_grids();
        let cov = DMatrix::from_fn(n, n, |i, j| model.covariance(i, j));
        let spectrum = SymmetricEigen::new(&cov).unwrap();
        // Subtract the third-smallest eigenvalue from the diagonal: the
        // two smallest go slightly negative, everything else stays PSD.
        let over_subtraction = spectrum.eigenvalues()[n - 3] * (1.0 + 1e-9);
        let near_psd = DMatrix::from_fn(n, n, |i, j| {
            cov[(i, j)] - if i == j { over_subtraction } else { 0.0 }
        });
        let expected_min = spectrum.eigenvalues()[n - 1] - over_subtraction;

        let (full_clip, full_min) = nearest_psd_with(
            &near_psd,
            &SpectralOptions::full().with_solver(SpectralSolver::TridiagonalQl),
        )
        .unwrap();
        let (partial, partial_min) = nearest_psd_with(
            &near_psd,
            &SpectralOptions::full().with_solver(SpectralSolver::Lanczos),
        )
        .unwrap();
        // `nearest_psd` auto-dispatch takes the partial path at this size.
        let (auto, _) = nearest_psd(&near_psd).unwrap();

        let lambda_max = spectrum.eigenvalues()[0];
        assert!((full_min - expected_min).abs() < 1e-10 * lambda_max);
        assert!((partial_min - expected_min).abs() < 1e-8 * lambda_max);
        assert!(full_min < 0.0 && partial_min < 0.0);

        // Both projections are PSD.
        for m in [&full_clip, &partial] {
            let eig = SymmetricEigen::new(m).unwrap();
            assert!(*eig.eigenvalues().last().unwrap() > -1e-10 * lambda_max);
        }
        // Frobenius-closest: the projection distance equals the clipped
        // negative mass, √(Σ λ_neg²).
        let clipped_mass: f64 = spectrum
            .eigenvalues()
            .iter()
            .map(|&l| l - over_subtraction)
            .filter(|&l| l < 0.0)
            .map(|l| l * l)
            .sum::<f64>()
            .sqrt();
        for m in [&full_clip, &partial] {
            let mut diff = 0.0;
            for (x, y) in m.as_slice().iter().zip(near_psd.as_slice()) {
                diff += (x - y) * (x - y);
            }
            assert!((diff.sqrt() - clipped_mass).abs() < 1e-8 * lambda_max);
        }
        // The two paths (and the auto dispatch) agree entrywise.
        for (x, y) in full_clip.as_slice().iter().zip(partial.as_slice()) {
            assert!((x - y).abs() < 1e-8 * lambda_max, "{x} vs {y}");
        }
        for (x, y) in auto.as_slice().iter().zip(partial.as_slice()) {
            assert!((x - y).abs() < 1e-12 * lambda_max);
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(extract_covariance(&[vec![1.0]], 0.0).is_err());
        assert!(extract_covariance(&[vec![1.0], vec![1.0, 2.0]], 0.0).is_err());
        assert!(extract_covariance(&[vec![], vec![]], 0.0).is_err());
        assert!(extract_covariance(&[vec![1.0], vec![f64::NAN]], 0.0).is_err());
        assert!(extract_covariance(&[vec![1.0], vec![2.0]], -1.0).is_err());
    }
}
