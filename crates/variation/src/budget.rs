//! Variance budgets: how total oxide-thickness variation splits into
//! global (inter-die), spatially correlated (intra-die) and independent
//! components.

use crate::{Result, VariationError};
use statobd_num::impl_json_struct;

/// Split of the total thickness variance across spatial scales.
///
/// The paper (Table II) uses the ITRS-2008 `3σ/u₀ = 4 %` total with the
/// Reda–Nassif split of 50 % global, 25 % spatially correlated and 25 %
/// independent *variance* fractions; [`VarianceBudget::itrs_2008`] builds
/// exactly that.
///
/// # Example
///
/// ```
/// use statobd_variation::VarianceBudget;
///
/// let b = VarianceBudget::itrs_2008(2.2)?;
/// let total = b.sigma_total();
/// assert!((total - 2.2 * 0.04 / 3.0).abs() < 1e-12);
/// // Variance fractions recombine to the total.
/// let recombined = b.sigma_global().powi(2)
///     + b.sigma_spatial().powi(2)
///     + b.sigma_independent().powi(2);
/// assert!((recombined - total * total).abs() < 1e-15);
/// # Ok::<(), statobd_variation::VariationError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VarianceBudget {
    sigma_total: f64,
    frac_global: f64,
    frac_spatial: f64,
    frac_independent: f64,
}

impl_json_struct!(VarianceBudget {
    sigma_total,
    frac_global,
    frac_spatial,
    frac_independent,
});

impl VarianceBudget {
    /// Creates a budget from the total sigma and variance fractions.
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidParameter`] if `sigma_total <= 0`,
    /// any fraction is negative, or the fractions do not sum to 1 (within
    /// `1e-9`).
    pub fn new(
        sigma_total: f64,
        frac_global: f64,
        frac_spatial: f64,
        frac_independent: f64,
    ) -> Result<Self> {
        if !(sigma_total > 0.0) || !sigma_total.is_finite() {
            return Err(VariationError::InvalidParameter {
                detail: format!("sigma_total must be positive, got {sigma_total}"),
            });
        }
        let fracs = [frac_global, frac_spatial, frac_independent];
        if fracs.iter().any(|&f| f < 0.0 || !f.is_finite()) {
            return Err(VariationError::InvalidParameter {
                detail: format!("variance fractions must be non-negative, got {fracs:?}"),
            });
        }
        let sum: f64 = fracs.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(VariationError::InvalidParameter {
                detail: format!("variance fractions must sum to 1, got {sum}"),
            });
        }
        Ok(VarianceBudget {
            sigma_total,
            frac_global,
            frac_spatial,
            frac_independent,
        })
    }

    /// The paper's Table II setup: `3σ_tot/u₀ = 4 %` of the given nominal
    /// thickness, split 50 % / 25 % / 25 % (global / spatial / independent).
    ///
    /// # Errors
    ///
    /// Returns [`VariationError::InvalidParameter`] if `nominal <= 0`.
    pub fn itrs_2008(nominal: f64) -> Result<Self> {
        if !(nominal > 0.0) {
            return Err(VariationError::InvalidParameter {
                detail: format!("nominal thickness must be positive, got {nominal}"),
            });
        }
        Self::new(nominal * 0.04 / 3.0, 0.50, 0.25, 0.25)
    }

    /// Total standard deviation `σ_tot`.
    pub fn sigma_total(&self) -> f64 {
        self.sigma_total
    }

    /// Inter-die (global) standard deviation.
    pub fn sigma_global(&self) -> f64 {
        self.sigma_total * self.frac_global.sqrt()
    }

    /// Spatially correlated intra-die standard deviation.
    pub fn sigma_spatial(&self) -> f64 {
        self.sigma_total * self.frac_spatial.sqrt()
    }

    /// Independent (residual) standard deviation, the `λ_r` of eq. (2).
    pub fn sigma_independent(&self) -> f64 {
        self.sigma_total * self.frac_independent.sqrt()
    }

    /// Global variance fraction.
    pub fn frac_global(&self) -> f64 {
        self.frac_global
    }

    /// Spatially correlated variance fraction.
    pub fn frac_spatial(&self) -> f64 {
        self.frac_spatial
    }

    /// Independent variance fraction.
    pub fn frac_independent(&self) -> f64 {
        self.frac_independent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn itrs_budget_matches_table_ii() {
        let b = VarianceBudget::itrs_2008(2.2).unwrap();
        assert!((b.sigma_total() - 0.029333333333333333).abs() < 1e-15);
        assert_eq!(b.frac_global(), 0.5);
        assert_eq!(b.frac_spatial(), 0.25);
        assert_eq!(b.frac_independent(), 0.25);
    }

    #[test]
    fn component_variances_sum_to_total() {
        let b = VarianceBudget::new(0.03, 0.4, 0.35, 0.25).unwrap();
        let sum =
            b.sigma_global().powi(2) + b.sigma_spatial().powi(2) + b.sigma_independent().powi(2);
        assert!((sum - 0.0009).abs() < 1e-15);
    }

    #[test]
    fn rejects_bad_fractions() {
        assert!(VarianceBudget::new(0.03, 0.5, 0.5, 0.5).is_err());
        assert!(VarianceBudget::new(0.03, -0.1, 0.6, 0.5).is_err());
        assert!(VarianceBudget::new(0.0, 0.5, 0.25, 0.25).is_err());
        assert!(VarianceBudget::new(f64::NAN, 0.5, 0.25, 0.25).is_err());
        assert!(VarianceBudget::itrs_2008(-1.0).is_err());
    }

    #[test]
    fn pure_global_budget_is_allowed() {
        let b = VarianceBudget::new(0.01, 1.0, 0.0, 0.0).unwrap();
        assert_eq!(b.sigma_spatial(), 0.0);
        assert_eq!(b.sigma_independent(), 0.0);
        assert_eq!(b.sigma_global(), 0.01);
    }

    #[test]
    fn json_round_trip() {
        let b = VarianceBudget::itrs_2008(2.2).unwrap();
        let json = statobd_num::json::to_string(&b);
        let back: VarianceBudget = statobd_num::json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}
