//! Monte-Carlo sampling of thickness fields from a [`ThicknessModel`].
//!
//! A *die sample* fixes the principal components `z` (one correlated "base"
//! thickness per grid); *device samples* add the independent residual
//! `σ_ind·ε` on top. The reference Monte-Carlo reliability engine and the
//! BLOD histogram experiments (paper Fig. 4) are built on this.

use crate::ThicknessModel;
use statobd_num::rng::{NormalSampler, Rng};

/// One sampled die: the principal-component draw and the resulting
/// correlated base thickness per grid.
#[derive(Debug, Clone)]
pub struct GridBaseSample {
    /// The principal-component values `z` drawn for this die.
    pub z: Vec<f64>,
    /// Correlated thickness (nominal + loadings·z) per grid.
    pub base: Vec<f64>,
}

/// Sampler of thickness fields bound to a model.
///
/// # Example
///
/// ```
/// use statobd_variation::*;
///
/// let model = ThicknessModelBuilder::new()
///     .grid(GridSpec::square_unit(4)?)
///     .nominal(2.2)
///     .budget(VarianceBudget::itrs_2008(2.2)?)
///     .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
///     .build()?;
/// let mut sampler = FieldSampler::new(&model);
/// let mut rng = statobd_num::rng::Xoshiro256pp::seed_from_u64(7);
/// let die = sampler.sample_die(&mut rng);
/// assert_eq!(die.base.len(), 16);
/// # Ok::<(), VariationError>(())
/// ```
#[derive(Debug)]
pub struct FieldSampler<'a> {
    model: &'a ThicknessModel,
    normal: NormalSampler,
}

impl<'a> FieldSampler<'a> {
    /// Creates a sampler for `model`.
    pub fn new(model: &'a ThicknessModel) -> Self {
        FieldSampler {
            model,
            normal: NormalSampler::new(),
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &ThicknessModel {
        self.model
    }

    /// Discards any cached polar-method spare, restoring the sampler to
    /// its freshly-constructed draw state.
    ///
    /// A reused sampler that starts chip `i+1` with chip `i`'s leftover
    /// spare would shift every subsequent draw; resetting makes a hoisted
    /// per-shard sampler draw-for-draw identical to constructing a fresh
    /// one per chip.
    pub fn reset(&mut self) {
        self.normal = NormalSampler::new();
    }

    /// Draws one die's principal components into lane `lane` of a
    /// `width`-interleaved SoA tile: component `k` lands at
    /// `z_tile[k·width + lane]`.
    ///
    /// Draw order is identical to [`FieldSampler::sample_z_into`] — only
    /// the destination stride differs — so a lane consumes exactly the
    /// substream its chip would consume on the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= width` or `z_tile.len()` is not `width` times
    /// the model's component count.
    pub fn sample_z_lane<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        z_tile: &mut [f64],
        width: usize,
        lane: usize,
    ) {
        assert!(lane < width, "lane index out of range");
        assert_eq!(
            z_tile.len(),
            self.model.n_components() * width,
            "z tile length must be width times the model's component count"
        );
        for slot in z_tile[lane..].iter_mut().step_by(width) {
            *slot = self.normal.sample(rng);
        }
    }

    /// Draws one die: principal components and grid base thicknesses.
    pub fn sample_die<R: Rng + ?Sized>(&mut self, rng: &mut R) -> GridBaseSample {
        let mut z = vec![0.0; self.model.n_components()];
        self.normal.fill(rng, &mut z);
        let base = self.model.grid_base(&z);
        GridBaseSample { z, base }
    }

    /// Draws one die's principal components into a caller-owned buffer.
    ///
    /// The allocation-free twin of [`FieldSampler::sample_die`] for hot
    /// loops that evaluate per-block `(u, v)` moments directly from `z`
    /// (via `uv_given_z`) and never need the grid base field. Draw order
    /// is identical to `sample_die`, so the two are interchangeable for a
    /// given RNG state.
    ///
    /// # Panics
    ///
    /// Panics if `z.len()` differs from the model's component count.
    pub fn sample_z_into<R: Rng + ?Sized>(&mut self, rng: &mut R, z: &mut [f64]) {
        assert_eq!(
            z.len(),
            self.model.n_components(),
            "z buffer length must match the model's component count"
        );
        self.normal.fill(rng, z);
    }

    /// Draws one device thickness in grid `g` of an already-sampled die.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range for the die sample.
    pub fn sample_device<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        die: &GridBaseSample,
        g: usize,
    ) -> f64 {
        die.base[g] + self.model.sigma_ind() * self.normal.sample(rng)
    }

    /// Draws `count` device thicknesses in grid `g` of a die into a vector.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range for the die sample.
    pub fn sample_devices<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        die: &GridBaseSample,
        g: usize,
        count: usize,
    ) -> Vec<f64> {
        let base = die.base[g];
        let sigma = self.model.sigma_ind();
        (0..count)
            .map(|_| base + sigma * self.normal.sample(rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};
    use statobd_num::rng::Xoshiro256pp;
    use statobd_num::stats::OnlineStats;

    fn model() -> ThicknessModel {
        ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(5).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap()
    }

    #[test]
    fn die_base_statistics_match_model() {
        let m = model();
        let mut sampler = FieldSampler::new(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut stats = OnlineStats::new();
        for _ in 0..20_000 {
            let die = sampler.sample_die(&mut rng);
            stats.push(die.base[12]);
        }
        assert!((stats.mean() - 2.2).abs() < 1e-3, "mean {}", stats.mean());
        let expected_sigma = m.grid_sigma(12);
        assert!(
            (stats.std_dev() - expected_sigma).abs() < 0.05 * expected_sigma,
            "sigma {} vs {}",
            stats.std_dev(),
            expected_sigma
        );
    }

    #[test]
    fn device_samples_add_independent_variance() {
        let m = model();
        let mut sampler = FieldSampler::new(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let die = sampler.sample_die(&mut rng);
        let devices = sampler.sample_devices(&mut rng, &die, 3, 50_000);
        let mut stats = OnlineStats::new();
        for &d in &devices {
            stats.push(d);
        }
        // Within one die, device spread is the independent sigma only.
        assert!((stats.mean() - die.base[3]).abs() < 3e-4);
        let sig = m.sigma_ind();
        assert!(
            (stats.std_dev() - sig).abs() < 0.05 * sig,
            "sigma {} vs {}",
            stats.std_dev(),
            sig
        );
    }

    #[test]
    fn neighboring_grids_are_correlated_across_dies() {
        let m = model();
        let mut sampler = FieldSampler::new(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let n = 20_000;
        let (mut sa, mut sb, mut sab) = (0.0, 0.0, 0.0);
        let (mut saa, mut sbb) = (0.0, 0.0);
        for _ in 0..n {
            let die = sampler.sample_die(&mut rng);
            let a = die.base[0];
            let b = die.base[1];
            sa += a;
            sb += b;
            sab += a * b;
            saa += a * a;
            sbb += b * b;
        }
        let nf = n as f64;
        let cov = sab / nf - (sa / nf) * (sb / nf);
        let var_a = saa / nf - (sa / nf).powi(2);
        let var_b = sbb / nf - (sb / nf).powi(2);
        let corr = cov / (var_a * var_b).sqrt();
        let expected = m.covariance(0, 1) / (m.grid_sigma(0) * m.grid_sigma(1));
        assert!(
            (corr - expected).abs() < 0.03,
            "corr {corr} vs expected {expected}"
        );
    }

    #[test]
    fn sample_z_into_matches_sample_die_bitwise() {
        let m = model();
        let mut rng_a = Xoshiro256pp::seed_from_u64(29);
        let mut rng_b = rng_a.clone();
        let mut sampler_a = FieldSampler::new(&m);
        let mut sampler_b = FieldSampler::new(&m);
        let mut z = vec![0.0; m.n_components()];
        for _ in 0..4 {
            let die = sampler_a.sample_die(&mut rng_a);
            sampler_b.sample_z_into(&mut rng_b, &mut z);
            for (a, b) in die.z.iter().zip(&z) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn sample_z_lane_matches_sample_z_into_bitwise() {
        // Same RNG state, same draws — only the destination stride
        // differs. Also covers reset(): the reused sampler must behave
        // like a fresh one even when a spare was cached mid-stream.
        let m = model();
        let n_pc = m.n_components();
        const W: usize = 4;
        let mut sampler = FieldSampler::new(&m);
        let mut poison_rng = Xoshiro256pp::seed_from_u64(1);
        let die = FieldSampler::new(&m).sample_die(&mut poison_rng);
        let mut z = vec![0.0; n_pc];
        let mut tile = vec![0.0; n_pc * W];
        for lane in 0..W {
            let mut rng_a = Xoshiro256pp::seed_from_u64(400 + lane as u64);
            let mut rng_b = rng_a.clone();
            // Poison the sampler with a cached spare (a lone sample()
            // call always leaves one); reset must clear it.
            sampler.sample_device(&mut poison_rng, &die, 0);
            sampler.reset();
            sampler.sample_z_lane(&mut rng_a, &mut tile, W, lane);
            let mut fresh = FieldSampler::new(&m);
            fresh.sample_z_into(&mut rng_b, &mut z);
            for k in 0..n_pc {
                assert_eq!(
                    tile[k * W + lane].to_bits(),
                    z[k].to_bits(),
                    "component {k} lane {lane}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "component count")]
    fn sample_z_into_rejects_wrong_length() {
        let m = model();
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        let mut sampler = FieldSampler::new(&m);
        let mut z = vec![0.0; m.n_components() + 1];
        sampler.sample_z_into(&mut rng, &mut z);
    }

    #[test]
    fn sampled_z_length_matches_components() {
        let m = model();
        let mut sampler = FieldSampler::new(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        let die = sampler.sample_die(&mut rng);
        assert_eq!(die.z.len(), m.n_components());
        assert_eq!(die.base.len(), m.n_grids());
    }
}

#[cfg(test)]
mod cholesky_cross_validation {
    use super::*;
    use crate::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};
    use statobd_num::cholesky::Cholesky;
    use statobd_num::matrix::DMatrix;
    use statobd_num::rng::Xoshiro256pp;

    /// The PCA canonical form and direct Cholesky coloring of the same
    /// covariance must produce statistically identical grid fields — an
    /// end-to-end check that the eigendecomposition-based model samples
    /// the covariance it claims to.
    #[test]
    fn pca_sampling_matches_cholesky_sampling() {
        let model = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(4).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap();
        let n = model.n_grids();
        let cov = DMatrix::from_fn(n, n, |i, j| model.covariance(i, j));
        let chol = Cholesky::new(&cov).unwrap();

        let mut rng = Xoshiro256pp::seed_from_u64(2024);
        let mut normal = statobd_num::rng::NormalSampler::new();
        let mut sampler = FieldSampler::new(&model);
        let samples = 30_000;
        // Accumulate the empirical covariance of grid pair (0, 5) from
        // both samplers.
        let (mut pca_cov, mut chol_cov) = (0.0, 0.0);
        for _ in 0..samples {
            let die = sampler.sample_die(&mut rng);
            pca_cov += (die.base[0] - 2.2) * (die.base[5] - 2.2);

            let mut z = vec![0.0; n];
            normal.fill(&mut rng, &mut z);
            let colored = chol.correlate(&z);
            chol_cov += colored[0] * colored[5];
        }
        let pca_cov = pca_cov / samples as f64;
        let chol_cov = chol_cov / samples as f64;
        let truth = model.covariance(0, 5);
        assert!(
            (pca_cov - truth).abs() < 0.05 * truth,
            "PCA sampler covariance {pca_cov:e} vs model {truth:e}"
        );
        assert!(
            (chol_cov - truth).abs() < 0.05 * truth,
            "Cholesky sampler covariance {chol_cov:e} vs model {truth:e}"
        );
    }
}
