//! Criterion benchmarks of the reliability engines — the runtime side of
//! the paper's Table III, measured rigorously: per-evaluation cost of each
//! engine, lifetime-solve cost, and the one-time construction costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use statobd_bench::{analyze, thickness_model_for};
use statobd_circuits::{build_design, Benchmark, DesignConfig};
use statobd_core::{
    solve_lifetime, ChipAnalysis, GuardBand, GuardBandConfig, HybridConfig, HybridTables,
    MonteCarlo, MonteCarloConfig, ReliabilityEngine, StClosed, StFast, StFastConfig, StMc,
    StMcConfig,
};
use statobd_device::ClosedFormTech;
use statobd_variation::ThicknessModel;
use std::hint::black_box;

struct Setup {
    analysis: ChipAnalysis,
    #[allow(dead_code)]
    model: ThicknessModel,
}

/// C1 on a 10×10 correlation grid: small enough to keep the bench loop
/// tight, large enough to exercise every code path.
fn setup() -> Setup {
    let built = build_design(
        Benchmark::C1,
        &DesignConfig {
            correlation_grid_side: 10,
            ..DesignConfig::default()
        },
    )
    .expect("design");
    let model = thickness_model_for(&built, 0.5);
    let tech = ClosedFormTech::nominal_45nm();
    let analysis = analyze(&built, &model, &tech).expect("characterization");
    Setup { analysis, model }
}

fn bench_engine_evaluations(c: &mut Criterion) {
    let s = setup();
    let t = 2e8;

    let mut group = c.benchmark_group("failure_probability");
    let mut fast = StFast::new(&s.analysis, StFastConfig::default());
    // Warm the quadrature cache outside the timed loop.
    let _ = fast.failure_probability(t).unwrap();
    group.bench_function("st_fast", |b| {
        b.iter(|| black_box(fast.failure_probability(black_box(t)).unwrap()))
    });

    let mut closed = StClosed::new(&s.analysis);
    group.bench_function("st_closed", |b| {
        b.iter(|| black_box(closed.failure_probability(black_box(t)).unwrap()))
    });

    let mut hybrid = HybridTables::build(&s.analysis, HybridConfig::default()).expect("tables");
    group.bench_function("hybrid_lookup", |b| {
        b.iter(|| black_box(hybrid.failure_probability(black_box(t)).unwrap()))
    });

    let mut guard = GuardBand::new(&s.analysis, GuardBandConfig::default()).expect("guard");
    group.bench_function("guard", |b| {
        b.iter(|| black_box(guard.failure_probability(black_box(t)).unwrap()))
    });

    let mut st_mc = StMc::new(
        &s.analysis,
        StMcConfig {
            n_samples: 2000,
            ..Default::default()
        },
    )
    .expect("st_MC");
    group.bench_function("st_mc_eval", |b| {
        b.iter(|| black_box(st_mc.failure_probability(black_box(t)).unwrap()))
    });
    group.finish();
}

fn bench_engine_construction(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("engine_construction");
    group.sample_size(10);

    group.bench_function("blod_characterize_all_blocks", |b| {
        b.iter(|| {
            black_box(
                ChipAnalysis::new(
                    s.analysis.spec().clone(),
                    s.analysis.model().clone(),
                    &ClosedFormTech::nominal_45nm(),
                )
                .unwrap(),
            )
        })
    });

    group.bench_function("hybrid_build_40x20", |b| {
        b.iter(|| {
            black_box(
                HybridTables::build(
                    &s.analysis,
                    HybridConfig {
                        n_gamma: 40,
                        n_b: 20,
                        ..Default::default()
                    },
                )
                .unwrap(),
            )
        })
    });

    group.bench_function("st_mc_build_2000", |b| {
        b.iter(|| {
            black_box(
                StMc::new(
                    &s.analysis,
                    StMcConfig {
                        n_samples: 2000,
                        ..Default::default()
                    },
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_monte_carlo_scaling(c: &mut Criterion) {
    // MC cost grows with device count — the scaling that makes the
    // statistical method necessary (Table III's right half).
    let mut group = c.benchmark_group("mc_build_by_devices");
    group.sample_size(10);
    for bench_id in [Benchmark::C1, Benchmark::C3] {
        let built = build_design(
            bench_id,
            &DesignConfig {
                correlation_grid_side: 10,
                ..DesignConfig::default()
            },
        )
        .expect("design");
        let model = thickness_model_for(&built, 0.5);
        let tech = ClosedFormTech::nominal_45nm();
        let analysis = analyze(&built, &model, &tech).expect("characterization");
        group.bench_with_input(
            BenchmarkId::from_parameter(built.spec.total_devices()),
            &analysis,
            |b, analysis| {
                b.iter(|| {
                    black_box(
                        MonteCarlo::build(
                            analysis,
                            MonteCarloConfig {
                                n_chips: 20,
                                ..Default::default()
                            },
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_lifetime_solve(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("lifetime_solve");
    let mut fast = StFast::new(&s.analysis, StFastConfig::default());
    let _ = fast.failure_probability(1e8).unwrap();
    group.bench_function("st_fast_1ppm", |b| {
        b.iter(|| black_box(solve_lifetime(&mut fast, 1e-6, (1e6, 1e12)).unwrap()))
    });
    let mut hybrid = HybridTables::build(&s.analysis, HybridConfig::default()).expect("tables");
    group.bench_function("hybrid_1ppm", |b| {
        b.iter(|| black_box(solve_lifetime(&mut hybrid, 1e-6, (1e6, 1e12)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_evaluations,
    bench_engine_construction,
    bench_monte_carlo_scaling,
    bench_lifetime_solve
);
criterion_main!(benches);
