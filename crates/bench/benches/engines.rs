//! Benchmarks of the reliability engines — the runtime side of the
//! paper's Table III: per-evaluation cost of each engine, lifetime-solve
//! cost, and the one-time construction costs. Plain `fn main` harness
//! (`harness = false`) built on [`statobd_bench::timing`].

use statobd_bench::timing::Group;
use statobd_bench::{analyze, thickness_model_for};
use statobd_circuits::{build_design, Benchmark, DesignConfig};
use statobd_core::{
    solve_lifetime, ChipAnalysis, GuardBand, GuardBandConfig, HybridConfig, HybridTables,
    MonteCarlo, MonteCarloConfig, ReliabilityEngine, StClosed, StFast, StFastConfig, StMc,
    StMcConfig,
};
use statobd_device::ClosedFormTech;
use std::hint::black_box;

/// C1 on a 10×10 correlation grid: small enough to keep the bench loop
/// tight, large enough to exercise every code path.
fn setup() -> ChipAnalysis {
    let built = build_design(
        Benchmark::C1,
        &DesignConfig {
            correlation_grid_side: 10,
            ..DesignConfig::default()
        },
    )
    .expect("design");
    let model = thickness_model_for(&built, 0.5);
    let tech = ClosedFormTech::nominal_45nm();
    analyze(&built, &model, &tech).expect("characterization")
}

fn bench_engine_evaluations(analysis: &ChipAnalysis) {
    let t = 2e8;
    let group = Group::new("failure_probability");

    let mut fast = StFast::new(analysis, StFastConfig::default());
    // Warm the quadrature cache outside the timed loop.
    let _ = fast.failure_probability(t).unwrap();
    group.bench("st_fast", || {
        black_box(fast.failure_probability(black_box(t)).unwrap())
    });

    let mut closed = StClosed::new(analysis);
    group.bench("st_closed", || {
        black_box(closed.failure_probability(black_box(t)).unwrap())
    });

    let mut hybrid = HybridTables::build(analysis, HybridConfig::default()).expect("tables");
    group.bench("hybrid_lookup", || {
        black_box(hybrid.failure_probability(black_box(t)).unwrap())
    });

    let mut guard = GuardBand::new(analysis, GuardBandConfig::default()).expect("guard");
    group.bench("guard", || {
        black_box(guard.failure_probability(black_box(t)).unwrap())
    });

    let mut st_mc = StMc::new(
        analysis,
        StMcConfig {
            n_samples: 2000,
            ..Default::default()
        },
    )
    .expect("st_MC");
    group.bench("st_mc_eval", || {
        black_box(st_mc.failure_probability(black_box(t)).unwrap())
    });
}

fn bench_engine_construction(analysis: &ChipAnalysis) {
    let group = Group::new("engine_construction");

    group.bench("blod_characterize_all_blocks", || {
        black_box(
            ChipAnalysis::new(
                analysis.spec().clone(),
                analysis.model().clone(),
                &ClosedFormTech::nominal_45nm(),
            )
            .unwrap(),
        )
    });

    group.bench("hybrid_build_40x20", || {
        black_box(
            HybridTables::build(
                analysis,
                HybridConfig {
                    n_gamma: 40,
                    n_b: 20,
                    ..Default::default()
                },
            )
            .unwrap(),
        )
    });

    group.bench("st_mc_build_2000", || {
        black_box(
            StMc::new(
                analysis,
                StMcConfig {
                    n_samples: 2000,
                    ..Default::default()
                },
            )
            .unwrap(),
        )
    });
}

fn bench_monte_carlo_scaling() {
    // MC cost grows with device count — the scaling that makes the
    // statistical method necessary (Table III's right half).
    let group = Group::new("mc_build_by_devices");
    for bench_id in [Benchmark::C1, Benchmark::C3] {
        let built = build_design(
            bench_id,
            &DesignConfig {
                correlation_grid_side: 10,
                ..DesignConfig::default()
            },
        )
        .expect("design");
        let model = thickness_model_for(&built, 0.5);
        let tech = ClosedFormTech::nominal_45nm();
        let analysis = analyze(&built, &model, &tech).expect("characterization");
        group.bench(&format!("{}_devices", built.spec.total_devices()), || {
            black_box(
                MonteCarlo::build(
                    &analysis,
                    MonteCarloConfig {
                        n_chips: 20,
                        ..Default::default()
                    },
                )
                .unwrap(),
            )
        });
    }
}

fn bench_lifetime_solve(analysis: &ChipAnalysis) {
    let group = Group::new("lifetime_solve");
    let mut fast = StFast::new(analysis, StFastConfig::default());
    let _ = fast.failure_probability(1e8).unwrap();
    group.bench("st_fast_1ppm", || {
        black_box(solve_lifetime(&mut fast, 1e-6, (1e6, 1e12)).unwrap())
    });
    let mut hybrid = HybridTables::build(analysis, HybridConfig::default()).expect("tables");
    group.bench("hybrid_1ppm", || {
        black_box(solve_lifetime(&mut hybrid, 1e-6, (1e6, 1e12)).unwrap())
    });
}

fn main() {
    let analysis = setup();
    bench_engine_evaluations(&analysis);
    bench_engine_construction(&analysis);
    bench_monte_carlo_scaling();
    bench_lifetime_solve(&analysis);
}
