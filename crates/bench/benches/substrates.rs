//! Criterion benchmarks of the substrate layers: PCA model construction
//! (the paper's pre-processing step), the thermal solver, and the
//! numerical kernels the engines lean on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use statobd_num::eigen::SymmetricEigen;
use statobd_num::matrix::DMatrix;
use statobd_num::special::{gamma_p, norm_inv_cdf};
use statobd_thermal::{alpha_ev6_floorplan, alpha_ev6_power, ThermalConfig, ThermalSolver};
use statobd_variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};
use std::hint::black_box;

fn bench_pca_model_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("pca_model_build");
    group.sample_size(10);
    for side in [5usize, 10, 15] {
        group.bench_with_input(
            BenchmarkId::from_parameter(side * side),
            &side,
            |b, &side| {
                b.iter(|| {
                    black_box(
                        ThicknessModelBuilder::new()
                            .grid(GridSpec::square_unit(side).unwrap())
                            .nominal(2.2)
                            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
                            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
                            .build()
                            .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_jacobi_eigen(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobi_eigen");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let a = DMatrix::from_fn(n, n, |i, j| {
            (-((i as f64 - j as f64).abs()) / (n as f64 / 4.0)).exp()
        });
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| black_box(SymmetricEigen::new(a).unwrap()))
        });
    }
    group.finish();
}

fn bench_thermal_solve(c: &mut Criterion) {
    let fp = alpha_ev6_floorplan().expect("floorplan");
    let pm = alpha_ev6_power().expect("power");
    let mut group = c.benchmark_group("thermal_solve");
    group.sample_size(10);
    for grid in [32usize, 64] {
        let solver = ThermalSolver::new(ThermalConfig {
            nx: grid,
            ny: grid,
            ..ThermalConfig::default()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(grid * grid),
            &solver,
            |b, solver| b.iter(|| black_box(solver.solve(&fp, &pm).unwrap())),
        );
    }
    group.finish();
}

fn bench_special_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("special_functions");
    group.bench_function("gamma_p", |b| {
        b.iter(|| black_box(gamma_p(black_box(3.7), black_box(2.9)).unwrap()))
    });
    group.bench_function("norm_inv_cdf", |b| {
        b.iter(|| black_box(norm_inv_cdf(black_box(1e-6)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pca_model_build,
    bench_jacobi_eigen,
    bench_thermal_solve,
    bench_special_functions
);
criterion_main!(benches);
