//! Benchmarks of the substrate layers: PCA model construction (the
//! paper's pre-processing step), the thermal solver, and the numerical
//! kernels the engines lean on. Plain `fn main` harness
//! (`harness = false`) built on [`statobd_bench::timing`].

use statobd_bench::timing::Group;
use statobd_num::eigen::{SpectralOptions, SpectralSolver, SymmetricEigen};
use statobd_num::matrix::DMatrix;
use statobd_num::special::{gamma_p, norm_inv_cdf};
use statobd_thermal::{alpha_ev6_floorplan, alpha_ev6_power, ThermalConfig, ThermalSolver};
use statobd_variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};
use std::hint::black_box;

fn bench_pca_model_build() {
    let group = Group::new("pca_model_build");
    for side in [5usize, 10, 15] {
        group.bench(&format!("{}_grids", side * side), || {
            black_box(
                ThicknessModelBuilder::new()
                    .grid(GridSpec::square_unit(side).unwrap())
                    .nominal(2.2)
                    .budget(VarianceBudget::itrs_2008(2.2).unwrap())
                    .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
                    .build()
                    .unwrap(),
            )
        });
    }
}

fn bench_spectral_eigen() {
    let group = Group::new("spectral_eigen");
    for n in [64usize, 256, 1024] {
        let a = DMatrix::from_fn(n, n, |i, j| {
            (-((i as f64 - j as f64).abs()) / (n as f64 / 4.0)).exp()
        });
        // Full-spectrum backends.
        for solver in [SpectralSolver::Jacobi, SpectralSolver::TridiagonalQl] {
            let opts = SpectralOptions::full().with_solver(solver).with_threads(1);
            group.bench(&format!("{}_{n}x{n}", solver.name()), || {
                black_box(SymmetricEigen::with_options(&a, &opts).unwrap())
            });
        }
        // Top-k path at the default model-construction energy target.
        let opts = SpectralOptions::energy(0.95)
            .with_solver(SpectralSolver::Lanczos)
            .with_threads(1);
        group.bench(&format!("lanczos_0.95_{n}x{n}"), || {
            black_box(SymmetricEigen::with_options(&a, &opts).unwrap())
        });
    }
}

fn bench_thermal_solve() {
    let fp = alpha_ev6_floorplan().expect("floorplan");
    let pm = alpha_ev6_power().expect("power");
    let group = Group::new("thermal_solve");
    for grid in [32usize, 64] {
        let solver = ThermalSolver::new(ThermalConfig {
            nx: grid,
            ny: grid,
            ..ThermalConfig::default()
        });
        group.bench(&format!("{}_cells", grid * grid), || {
            black_box(solver.solve(&fp, &pm).unwrap())
        });
    }
}

fn bench_special_functions() {
    let group = Group::new("special_functions");
    group.bench("gamma_p", || {
        black_box(gamma_p(black_box(3.7), black_box(2.9)).unwrap())
    });
    group.bench("norm_inv_cdf", || {
        black_box(norm_inv_cdf(black_box(1e-6)).unwrap())
    });
}

fn main() {
    bench_pca_model_build();
    bench_spectral_eigen();
    bench_thermal_solve();
    bench_special_functions();
}
