//! Minimal std-only timing harness for the `[[bench]]` targets.
//!
//! The benchmarks are plain `fn main` binaries (`harness = false`): each
//! measurement warms the closure up, calibrates an iteration count that
//! keeps the timed region around a third of a second, then reports the
//! mean and best per-iteration wall time. The output is meant for eyeball
//! comparison of the paper's runtime claims, not statistical rigor.

use std::hint::black_box;
use std::time::Instant;

/// Target wall time for one timed measurement window.
const TARGET_WINDOW_S: f64 = 0.3;
/// Iteration-count bounds for a measurement window.
const MAX_ITERS: u64 = 100_000;

/// A named group of measurements, mirroring criterion's `benchmark_group`.
#[derive(Debug)]
pub struct Group {
    name: &'static str,
}

impl Group {
    /// Starts a new group, printing its header.
    pub fn new(name: &'static str) -> Self {
        println!("\n== {name} ==");
        Group { name }
    }

    /// Times `f` and prints one result row.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        // Warm-up and calibration in one: the first call both populates
        // caches and estimates the single-iteration cost.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((TARGET_WINDOW_S / once) as u64).clamp(1, MAX_ITERS);

        let mut best = f64::INFINITY;
        let start = Instant::now();
        for _ in 0..iters {
            let it = Instant::now();
            black_box(f());
            best = best.min(it.elapsed().as_secs_f64());
        }
        let mean = start.elapsed().as_secs_f64() / iters as f64;
        println!(
            "{}/{name:<32} {iters:>7} iters  mean {}  best {}",
            self.name,
            fmt_duration(mean),
            fmt_duration(best)
        );
    }
}

/// Formats a per-iteration duration with an adaptive unit.
pub fn fmt_duration(s: f64) -> String {
    if s < 1e-6 {
        format!("{:8.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:8.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:8.2} ms", s * 1e3)
    } else {
        format!("{s:8.3} s ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_units() {
        assert!(fmt_duration(5e-9).contains("ns"));
        assert!(fmt_duration(5e-6).contains("µs"));
        assert!(fmt_duration(5e-3).contains("ms"));
        assert!(fmt_duration(5.0).trim_end().ends_with('s'));
    }

    #[test]
    fn bench_runs_closure() {
        let group = Group::new("test");
        let mut calls = 0u64;
        group.bench("noop", || calls += 1);
        assert!(calls >= 2); // warm-up + at least one timed iteration
    }
}
