//! Reproduces **Fig. 1**: steady-state temperature profiles of (a) an
//! Alpha-processor-class design and (b) a many-core design, showing the
//! structure the analysis exploits — compact hot spots tens of kelvin
//! above the inactive regions, with local (block-level) uniformity.

use statobd_thermal::{
    alpha_ev6_floorplan, alpha_ev6_power, kelvin_to_celsius, many_core_floorplan, many_core_power,
    ThermalConfig, ThermalSolver,
};

fn main() {
    let solver = ThermalSolver::new(ThermalConfig::default());

    println!("== Fig. 1(a): Alpha-processor-class temperature profile ==");
    let fp = alpha_ev6_floorplan().expect("floorplan");
    let pm = alpha_ev6_power().expect("power");
    let map = solver.solve(&fp, &pm).expect("thermal solve");
    println!("{}", map.ascii_render(48));
    println!(
        "die: min {:.1} C, mean {:.1} C, max {:.1} C, spread {:.1} K",
        kelvin_to_celsius(map.min_k()),
        kelvin_to_celsius(map.mean_k()),
        kelvin_to_celsius(map.max_k()),
        map.max_k() - map.min_k()
    );
    println!();
    println!(
        "{:<10} {:>9} {:>9} {:>9}",
        "block", "min C", "mean C", "max C"
    );
    let mut blocks: Vec<_> = fp.blocks().iter().collect();
    blocks.sort_by(|a, b| {
        map.block_stats(b.rect())
            .max_k
            .partial_cmp(&map.block_stats(a.rect()).max_k)
            .expect("finite temperatures")
    });
    for b in blocks {
        let s = map.block_stats(b.rect());
        println!(
            "{:<10} {:>9.1} {:>9.1} {:>9.1}",
            b.name(),
            kelvin_to_celsius(s.min_k),
            kelvin_to_celsius(s.mean_k),
            kelvin_to_celsius(s.max_k)
        );
    }

    // Hot-spot locality: fraction of the die within 5 K of the maximum.
    let hot_cells = map
        .temps()
        .iter()
        .filter(|&&t| t > map.max_k() - 5.0)
        .count();
    println!(
        "\nhot-spot locality: {:.1}% of the die within 5 K of the maximum",
        100.0 * hot_cells as f64 / map.temps().len() as f64
    );

    println!();
    println!("== Fig. 1(b): many-core temperature profile (cores 1,5,6,10,14 active) ==");
    let fp = many_core_floorplan().expect("floorplan");
    let pm = many_core_power(&[1, 5, 6, 10, 14], 6.5).expect("power");
    let map = solver.solve(&fp, &pm).expect("thermal solve");
    println!("{}", map.ascii_render(48));
    println!(
        "die: min {:.1} C, mean {:.1} C, max {:.1} C, spread {:.1} K",
        kelvin_to_celsius(map.min_k()),
        kelvin_to_celsius(map.mean_k()),
        kelvin_to_celsius(map.max_k()),
        map.max_k() - map.min_k()
    );
    let hot_cells = map
        .temps()
        .iter()
        .filter(|&&t| t > map.max_k() - 5.0)
        .count();
    println!(
        "hot-spot locality: {:.1}% of the die within 5 K of the maximum",
        100.0 * hot_cells as f64 / map.temps().len() as f64
    );
    println!();
    println!("Expected shape (paper): hot spots occupy a small region of the chip and");
    println!("sit tens of kelvin (~30 K) above the inactive regions.");
}
