//! Reproduces **Table IV**: lifetime-estimation error of the proposed
//! `st_fast` method w.r.t. Monte-Carlo for three relative correlation
//! distances (`ρ_dist ∈ {0.25, 0.5, 0.75}`), designs C1–C6.
//!
//! Run with `--quick` for a reduced sweep.

use statobd_bench::*;
use statobd_circuits::{build_design, Benchmark, DesignConfig};
use statobd_core::MonteCarloConfig;
use statobd_device::ClosedFormTech;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let designs: Vec<Benchmark> = if quick {
        vec![Benchmark::C1, Benchmark::C2]
    } else {
        Benchmark::table_iii().to_vec()
    };
    let mc_chips = if quick { 200 } else { 1000 };
    let rhos = [0.25, 0.5, 0.75];

    println!("== Table IV: st_fast error vs MC for different correlation distances ==");
    println!();
    println!(
        "{:<5} | {:>9} {:>10} | {:>9} {:>10} | {:>9} {:>10}",
        "ckt.", "1/mil", "10/mil", "1/mil", "10/mil", "1/mil", "10/mil"
    );
    println!(
        "{:<5} | {:^20} | {:^20} | {:^20}",
        "", "rho = 0.25", "rho = 0.5", "rho = 0.75"
    );
    println!("{}", "-".repeat(75));

    let tech = ClosedFormTech::nominal_45nm();
    let config = DesignConfig::default();

    // Pre-build the three thickness models (PCA once per rho).
    let probe = build_design(designs[0], &config).expect("design construction");
    let models: Vec<_> = rhos
        .iter()
        .map(|&rho| thickness_model_for(&probe, rho))
        .collect();

    for bench in designs {
        let built = build_design(bench, &config).expect("design construction");
        let mut cells = Vec::new();
        for model in &models {
            let analysis = analyze(&built, model, &tech).expect("characterization");
            let mc = run_mc(
                &analysis,
                MonteCarloConfig {
                    n_chips: mc_chips,
                    ..Default::default()
                },
            )
            .expect("MC");
            let fast = run_st_fast(&analysis).expect("st_fast");
            let (e1, e10) = fast.error_pct(&mc);
            cells.push((e1, e10));
        }
        println!(
            "{:<5} | {:>8.2}% {:>9.2}% | {:>8.2}% {:>9.2}% | {:>8.2}% {:>9.2}%",
            bench.name(),
            cells[0].0,
            cells[0].1,
            cells[1].0,
            cells[1].1,
            cells[2].0,
            cells[2].1
        );
    }
    println!();
    println!("Expected shape (paper): errors stay at the few-percent level for every");
    println!("correlation distance, typically largest at rho = 0.25 (sharpest spatial");
    println!("structure for the grid model to capture).");
}
