//! Model-construction benchmark: times `ThicknessModelBuilder` across the
//! spectral backends (Jacobi reference, Householder+QL full spectrum,
//! Lanczos top-k) and emits machine-readable `BENCH_models.json` so the
//! repo accumulates a perf trajectory for the spectral pipeline.
//!
//! For each correlation-grid size the runner builds the Table II model
//! with every requested solver at the full spectrum and at the default
//! energy target, records the covariance/eigen/truncation wall-time
//! breakdown from [`statobd_variation::ModelBuildStats`], and verifies
//! that every solver retained the same component count and produces the
//! same model covariance.
//!
//! ```text
//! cargo run --release -p statobd-bench --bin models -- \
//!     [--quick] [--out BENCH_models.json] [--grids 8,16,32] \
//!     [--threads 1] [--solvers jacobi,tridiagonal_ql,lanczos] \
//!     [--energy 0.95]
//! ```
//!
//! Defaults measure the algorithmic win at `--threads 1`. Output schema
//! (one JSON object):
//!
//! ```text
//! { "threads": 1, "energy": 0.95, "rows": [ { "grid_side": 32,
//!   "n_grids": 1024, "solver": "lanczos", "energy_fraction": 0.95,
//!   "n_components": ..., "covariance_s": ..., "eigen_s": ...,
//!   "truncation_s": ..., "total_s": ..., "speedup_vs_jacobi": ...,
//!   "consistent": true }, ... ] }
//! ```

use statobd_core::params::NOMINAL_THICKNESS_NM;
use statobd_num::eigen::{SpectralOptions, SpectralSolver};
use statobd_num::impl_json_struct;
use statobd_variation::{
    CorrelationKernel, GridSpec, ThicknessModel, ThicknessModelBuilder, VarianceBudget,
};

/// Default energy target for the top-k rows. The exponential kernel has a
/// flat spectral tail (0.99 of the energy already needs over half the
/// components), so 0.95 is the regime where truncation genuinely pays.
const DEFAULT_ENERGY: f64 = 0.95;

/// One measurement: a (grid, solver, energy target) cell.
#[derive(Debug, Clone)]
struct ModelRow {
    grid_side: usize,
    n_grids: usize,
    solver: String,
    energy_fraction: f64,
    n_components: usize,
    /// Covariance assembly seconds.
    covariance_s: f64,
    /// Eigendecomposition seconds (the dominant cost at scale).
    eigen_s: f64,
    /// Loading truncation/scaling seconds.
    truncation_s: f64,
    /// Whole model construction.
    total_s: f64,
    /// Jacobi total at the same energy target divided by this total
    /// (0 when no Jacobi baseline ran).
    speedup_vs_jacobi: f64,
    /// Whether the model matches the Jacobi-built one (component count and
    /// probed covariance entries; the run aborts non-zero if any is false).
    consistent: bool,
}

impl_json_struct!(ModelRow {
    grid_side,
    n_grids,
    solver,
    energy_fraction,
    n_components,
    covariance_s,
    eigen_s,
    truncation_s,
    total_s,
    speedup_vs_jacobi,
    consistent
});

/// The whole report (`BENCH_models.json`).
#[derive(Debug, Clone)]
struct ModelReport {
    /// Worker threads every decomposition was pinned to (0 = all cores).
    threads: usize,
    /// Energy target used for the top-k rows.
    energy: f64,
    rows: Vec<ModelRow>,
}

impl_json_struct!(ModelReport {
    threads,
    energy,
    rows
});

struct Options {
    out: String,
    grids: Vec<usize>,
    threads: usize,
    solvers: Vec<SpectralSolver>,
    energy: f64,
}

fn parse_solver(name: &str) -> SpectralSolver {
    match name.trim().to_ascii_lowercase().as_str() {
        "jacobi" => SpectralSolver::Jacobi,
        "tridiagonal_ql" | "ql" => SpectralSolver::TridiagonalQl,
        "lanczos" => SpectralSolver::Lanczos,
        other => {
            eprintln!("unknown solver {other:?} (expected jacobi, tridiagonal_ql or lanczos)");
            std::process::exit(2);
        }
    }
}

fn parse_options() -> Options {
    let mut opts = Options {
        out: "BENCH_models.json".to_string(),
        grids: vec![8, 16, 32],
        threads: 1,
        solvers: vec![
            SpectralSolver::Jacobi,
            SpectralSolver::TridiagonalQl,
            SpectralSolver::Lanczos,
        ],
        energy: DEFAULT_ENERGY,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => opts.grids = vec![8, 16],
            "--out" => opts.out = value("--out"),
            "--grids" => {
                opts.grids = value("--grids")
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad grid side {s:?}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--threads" => {
                opts.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("bad thread count");
                    std::process::exit(2);
                });
            }
            "--solvers" => {
                opts.solvers = value("--solvers").split(',').map(parse_solver).collect();
            }
            "--energy" => {
                opts.energy = value("--energy").parse().unwrap_or_else(|_| {
                    eprintln!("bad energy fraction");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn build_with(
    side: usize,
    spectral: SpectralOptions,
) -> (ThicknessModel, statobd_variation::ModelBuildStats) {
    ThicknessModelBuilder::new()
        .grid(GridSpec::square_unit(side).expect("grid"))
        .nominal(NOMINAL_THICKNESS_NM)
        .budget(VarianceBudget::itrs_2008(NOMINAL_THICKNESS_NM).expect("budget"))
        .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
        .spectral(spectral)
        .build_with_stats()
        .expect("model builds")
}

/// Component count plus probed covariance entries must match the Jacobi
/// reference (the spectral backend must not change the model).
fn models_agree(model: &ThicknessModel, reference: &ThicknessModel) -> bool {
    let n = reference.n_grids();
    if model.n_grids() != n || model.n_components() != reference.n_components() {
        return false;
    }
    let scale = reference.covariance(0, 0).abs().max(1e-300);
    [(0, 0), (0, n - 1), (n / 3, n / 2), (n - 1, n - 1)]
        .iter()
        .all(|&(a, b)| (model.covariance(a, b) - reference.covariance(a, b)).abs() < 1e-6 * scale)
}

fn main() {
    let opts = parse_options();
    let mut rows = Vec::new();
    let mut all_consistent = true;

    for &side in &opts.grids {
        let n = side * side;
        println!("grid {side}x{side} ({n} grids):");
        // Lanczos computes only the retained components, so a full-spectrum
        // request would just fall through to the dense path — skip that
        // redundant cell.
        let energies = if opts.energy < 1.0 {
            vec![1.0, opts.energy]
        } else {
            vec![1.0]
        };
        for &energy in &energies {
            let mut reference: Option<ThicknessModel> = None;
            for &solver in &opts.solvers {
                if solver == SpectralSolver::Lanczos && energy >= 1.0 {
                    continue;
                }
                let spectral = SpectralOptions::energy(energy)
                    .with_solver(solver)
                    .with_threads(opts.threads);
                let (model, stats) = build_with(side, spectral);
                let consistent = reference
                    .as_ref()
                    .map(|r| models_agree(&model, r))
                    .unwrap_or(true);
                all_consistent &= consistent;
                if solver == SpectralSolver::Jacobi {
                    reference = Some(model);
                }
                let baseline = rows
                    .iter()
                    .find(|r: &&ModelRow| {
                        r.grid_side == side && r.solver == "jacobi" && r.energy_fraction == energy
                    })
                    .map(|r| r.total_s);
                let total_s = stats.total_s();
                let row = ModelRow {
                    grid_side: side,
                    n_grids: n,
                    solver: solver.name().to_string(),
                    energy_fraction: energy,
                    n_components: stats.n_components,
                    covariance_s: stats.covariance_s,
                    eigen_s: stats.eigen_s,
                    truncation_s: stats.truncation_s,
                    total_s,
                    speedup_vs_jacobi: baseline.map(|b| b / total_s.max(1e-12)).unwrap_or(0.0),
                    consistent,
                };
                println!(
                    "  {:<14} energy {:<6} k={:<4} cov {:>8.4}s  eigen {:>9.4}s  \
                     trunc {:>8.4}s  total {:>9.4}s  {:>7.1}x  {}",
                    row.solver,
                    row.energy_fraction,
                    row.n_components,
                    row.covariance_s,
                    row.eigen_s,
                    row.truncation_s,
                    row.total_s,
                    row.speedup_vs_jacobi,
                    if consistent { "ok" } else { "MISMATCH" }
                );
                rows.push(row);
            }
        }
    }

    let report = ModelReport {
        threads: opts.threads,
        energy: opts.energy,
        rows,
    };
    std::fs::write(&opts.out, statobd_num::json::to_string_pretty(&report))
        .expect("report written");
    println!("wrote {}", opts.out);
    if !all_consistent {
        eprintln!("ERROR: a solver produced a model diverging from the Jacobi reference");
        std::process::exit(1);
    }
}
