//! Sweep benchmark: scalar-loop vs batched time-sweep evaluation for
//! every reliability engine, emitting machine-readable
//! `BENCH_sweeps.json` so the repo accumulates a perf trajectory.
//!
//! For each design × engine × sweep length the runner times `n` scalar
//! `failure_probability` calls against one batched
//! `failure_probabilities` call over the same log-spaced times, verifies
//! the two are **bit-identical**, and records build time, both eval
//! times, the speedup and the batched throughput.
//!
//! Each engine is warmed up (one throwaway evaluation, so lazily built
//! node sets and tables are charged to neither path) and every
//! measurement is the minimum over several repetitions, with fast cells
//! iterated until each repetition is long enough to time reliably. Full
//! runs additionally **assert batched ≥ scalar for every row** and exit
//! non-zero otherwise, so a committed `BENCH_sweeps.json` can never
//! contain a batched-path regression (`--quick` smokes skip the speedup
//! assertion but keep the bit-identity check).
//!
//! ```text
//! cargo run --release -p statobd-bench --bin sweeps -- \
//!     [--quick] [--out BENCH_sweeps.json] [--designs C1,C3] \
//!     [--sweeps 20,200] [--threads 1] [--mc-chips 1000]
//! ```
//!
//! Defaults measure the algorithmic win at `--threads 1`; pass
//! `--threads 0` to use every core. Output schema (one JSON object):
//!
//! ```text
//! { "threads": 1, "rows": [ { "design": "C1", "engine": "MC",
//!   "sweep_len": 200, "build_s": ..., "scalar_eval_s": ...,
//!   "batched_eval_s": ..., "speedup": ..., "batched_evals_per_s": ...,
//!   "bit_identical": true }, ... ] }
//! ```

use statobd_bench::{measure_min, session_for, BRACKET};
use statobd_circuits::Benchmark;
use statobd_core::{build_engine, EngineKind, EngineSpec, MonteCarloConfig};
use statobd_num::impl_json_struct;
use std::time::Instant;

/// One measurement: a (design, engine, sweep length) cell.
#[derive(Debug, Clone)]
struct SweepRow {
    design: String,
    engine: String,
    devices: u64,
    sweep_len: usize,
    /// Engine construction seconds (tables, chip samples, node sets).
    build_s: f64,
    /// Wall seconds for `sweep_len` scalar `failure_probability` calls.
    scalar_eval_s: f64,
    /// Wall seconds for one batched `failure_probabilities` call.
    batched_eval_s: f64,
    /// `scalar_eval_s / batched_eval_s`.
    speedup: f64,
    /// Time points per second through the batched path.
    batched_evals_per_s: f64,
    /// Whether every batched probability matched the scalar loop bit for
    /// bit (the run aborts with a non-zero exit if any row is false).
    bit_identical: bool,
}

impl_json_struct!(SweepRow {
    design,
    engine,
    devices,
    sweep_len,
    build_s,
    scalar_eval_s,
    batched_eval_s,
    speedup,
    batched_evals_per_s,
    bit_identical
});

/// The whole report (`BENCH_sweeps.json`).
#[derive(Debug, Clone)]
struct SweepReport {
    /// Worker threads every engine was pinned to (0 = all cores).
    threads: usize,
    rows: Vec<SweepRow>,
}

impl_json_struct!(SweepReport { threads, rows });

struct Options {
    out: String,
    designs: Vec<Benchmark>,
    sweeps: Vec<usize>,
    threads: usize,
    mc_chips: usize,
    quick: bool,
}

fn parse_benchmark(name: &str) -> Benchmark {
    Benchmark::parse(name).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

fn parse_options() -> Options {
    let mut opts = Options {
        out: "BENCH_sweeps.json".to_string(),
        designs: vec![Benchmark::C1, Benchmark::C3],
        sweeps: vec![20, 200],
        threads: 1,
        mc_chips: 1000,
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => {
                opts.designs = vec![Benchmark::C1];
                opts.sweeps = vec![8, 40];
                opts.mc_chips = 200;
                opts.quick = true;
            }
            "--out" => opts.out = value("--out"),
            "--designs" => {
                opts.designs = value("--designs").split(',').map(parse_benchmark).collect();
            }
            "--sweeps" => {
                opts.sweeps = value("--sweeps")
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad sweep length {s:?}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--threads" => {
                opts.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("bad thread count");
                    std::process::exit(2);
                });
            }
            "--mc-chips" => {
                opts.mc_chips = value("--mc-chips").parse().unwrap_or_else(|_| {
                    eprintln!("bad chip count");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Log-spaced times over the default lifetime bracket.
fn sweep_times(n: usize) -> Vec<f64> {
    let (t_lo, t_hi) = BRACKET;
    let ratio = (t_hi / t_lo).ln();
    (0..n)
        .map(|i| t_lo * (ratio * i as f64 / (n - 1) as f64).exp())
        .collect()
}

fn main() {
    let opts = parse_options();
    let threads = (opts.threads > 0).then_some(opts.threads);
    let mut rows = Vec::new();
    let mut all_identical = true;
    let mut regressions: Vec<String> = Vec::new();
    println!("lane dispatch: {}", statobd_num::simd::dispatch_label());

    for &benchmark in &opts.designs {
        let session = session_for(benchmark, 0.5);
        let analysis = session.analysis();
        let devices = analysis.spec().total_devices();
        println!(
            "{}: {} blocks, {} devices",
            benchmark.name(),
            analysis.spec().n_blocks(),
            devices
        );

        for kind in EngineKind::ALL {
            let spec = match kind.default_spec() {
                EngineSpec::MonteCarlo(c) => EngineSpec::MonteCarlo(MonteCarloConfig {
                    n_chips: opts.mc_chips,
                    ..c
                }),
                other => other,
            }
            .with_threads(threads);
            let build_start = Instant::now();
            let mut engine = build_engine(analysis, &spec).expect("engine builds");
            let build_s = build_start.elapsed().as_secs_f64();

            // Charge lazily built node sets / tables to neither timed
            // path (historically they landed in the first scalar sweep,
            // inflating short-sweep speedups).
            engine
                .failure_probability(0.5 * (BRACKET.0 + BRACKET.1))
                .expect("warm-up eval");

            for &n in &opts.sweeps {
                let ts = sweep_times(n.max(2));

                let scalar: Vec<f64> = ts
                    .iter()
                    .map(|&t| engine.failure_probability(t).expect("scalar eval"))
                    .collect();
                let batched = engine.failure_probabilities(&ts).expect("batched eval");

                let bit_identical = scalar.len() == batched.len()
                    && scalar
                        .iter()
                        .zip(&batched)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                all_identical &= bit_identical;

                let mut scalar_eval_s = measure_min(|| {
                    for &t in &ts {
                        engine.failure_probability(t).expect("scalar eval");
                    }
                });
                let mut batched_eval_s = measure_min(|| {
                    engine.failure_probabilities(&ts).expect("batched eval");
                });

                // Near-tie rows (engines whose batched path saves only
                // per-call overhead) can land a hair under 1.0x from
                // run-to-run jitter between the two measurements above.
                // Re-measure interleaved, keeping each path's min across
                // attempts: noise converges out, a real regression stays.
                let mut attempts = 0;
                while batched_eval_s > scalar_eval_s && attempts < 12 {
                    scalar_eval_s = scalar_eval_s.min(measure_min(|| {
                        for &t in &ts {
                            engine.failure_probability(t).expect("scalar eval");
                        }
                    }));
                    batched_eval_s = batched_eval_s.min(measure_min(|| {
                        engine.failure_probabilities(&ts).expect("batched eval");
                    }));
                    attempts += 1;
                }

                let speedup = scalar_eval_s / batched_eval_s.max(1e-12);
                if !opts.quick && speedup < 1.0 {
                    regressions.push(format!(
                        "{} {} n={}: batched {:.3e}s slower than scalar {:.3e}s ({speedup:.3}x)",
                        benchmark.name(),
                        kind.name(),
                        ts.len(),
                        batched_eval_s,
                        scalar_eval_s,
                    ));
                }
                let row = SweepRow {
                    design: benchmark.name().to_string(),
                    engine: kind.name().to_string(),
                    devices,
                    sweep_len: ts.len(),
                    build_s,
                    scalar_eval_s,
                    batched_eval_s,
                    speedup,
                    batched_evals_per_s: ts.len() as f64 / batched_eval_s.max(1e-12),
                    bit_identical,
                };
                println!(
                    "  {:<9} n={:<4} build {:>9.4}s  scalar {:>9.4}s  batched {:>9.4}s  \
                     {:>6.1}x  {}",
                    row.engine,
                    row.sweep_len,
                    row.build_s,
                    row.scalar_eval_s,
                    row.batched_eval_s,
                    row.speedup,
                    if bit_identical {
                        "bit-identical"
                    } else {
                        "MISMATCH"
                    }
                );
                rows.push(row);
            }
        }
    }

    let report = SweepReport {
        threads: opts.threads,
        rows,
    };
    std::fs::write(&opts.out, statobd_num::json::to_string_pretty(&report))
        .expect("report written");
    println!("wrote {}", opts.out);
    if !all_identical {
        eprintln!("ERROR: batched results diverged from the scalar loop");
        std::process::exit(1);
    }
    if !regressions.is_empty() {
        eprintln!("ERROR: batched path slower than the scalar loop:");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}
