//! Reproduces **Table V**: lifetime-estimation error of `st_fast` for
//! design C2 at three correlation-grid resolutions (10×10, 20×20, 25×25)
//! and three correlation distances, against a Monte-Carlo reference that
//! always uses the 25×25 model (as the paper does).
//!
//! Run with `--quick` to reduce the Monte-Carlo chip count.

use statobd_bench::*;
use statobd_circuits::{build_design, Benchmark, DesignConfig};
use statobd_core::MonteCarloConfig;
use statobd_device::ClosedFormTech;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mc_chips = if quick { 200 } else { 1000 };
    let rhos = [0.05, 0.25, 0.5];
    let grid_sides = [10usize, 20, 25];

    println!(
        "== Table V: st_fast error vs MC (25x25 reference) for grid resolutions, design C2 =="
    );
    println!();

    let tech = ClosedFormTech::nominal_45nm();

    // Reference: MC on the 25x25 model, one per rho.
    let ref_config = DesignConfig {
        correlation_grid_side: 25,
        ..DesignConfig::default()
    };
    let ref_built = build_design(Benchmark::C2, &ref_config).expect("reference design");
    let mut mc_refs = Vec::new();
    for &rho in &rhos {
        let model = thickness_model_for(&ref_built, rho);
        let analysis = analyze(&ref_built, &model, &tech).expect("characterization");
        let mc = run_mc(
            &analysis,
            MonteCarloConfig {
                n_chips: mc_chips,
                ..Default::default()
            },
        )
        .expect("MC");
        mc_refs.push(mc);
    }

    println!(
        "{:<10} | {:>9} {:>10} | {:>9} {:>10} | {:>9} {:>10}",
        "grid", "1/mil", "10/mil", "1/mil", "10/mil", "1/mil", "10/mil"
    );
    println!(
        "{:<10} | {:^20} | {:^20} | {:^20}",
        "", "rho = 0.05", "rho = 0.25", "rho = 0.5"
    );
    println!("{}", "-".repeat(80));

    for &side in &grid_sides {
        let config = DesignConfig {
            correlation_grid_side: side,
            ..DesignConfig::default()
        };
        let built = build_design(Benchmark::C2, &config).expect("design construction");
        let mut cells = Vec::new();
        for (i, &rho) in rhos.iter().enumerate() {
            let model = thickness_model_for(&built, rho);
            let analysis = analyze(&built, &model, &tech).expect("characterization");
            let fast = run_st_fast(&analysis).expect("st_fast");
            let (e1, e10) = fast.error_pct(&mc_refs[i]);
            cells.push((e1, e10));
        }
        println!(
            "{:<10} | {:>8.2}% {:>9.2}% | {:>8.2}% {:>9.2}% | {:>8.2}% {:>9.2}%",
            format!("{side} x {side}"),
            cells[0].0,
            cells[0].1,
            cells[1].0,
            cells[1].1,
            cells[2].0,
            cells[2].1
        );
    }
    // Pure discretization error: st_fast on the coarse grid vs st_fast on
    // the 25x25 reference grid — no Monte-Carlo noise.
    println!();
    println!("Pure discretization error of st_fast (vs st_fast on 25x25, no MC noise):");
    println!(
        "{:<10} | {:>10} | {:>10} | {:>10}",
        "grid", "rho=0.05", "rho=0.25", "rho=0.5"
    );
    println!("{}", "-".repeat(52));
    // Reference lifetimes on the 25x25 grid.
    let mut ref_t = Vec::new();
    for &rho in &rhos {
        let model = thickness_model_for(&ref_built, rho);
        let analysis = analyze(&ref_built, &model, &tech).expect("characterization");
        let fast = run_st_fast(&analysis).expect("st_fast");
        ref_t.push(fast.t_1pm);
    }
    for &side in &grid_sides {
        let config = DesignConfig {
            correlation_grid_side: side,
            ..DesignConfig::default()
        };
        let built = build_design(Benchmark::C2, &config).expect("design construction");
        let mut cells = Vec::new();
        for (i, &rho) in rhos.iter().enumerate() {
            let model = thickness_model_for(&built, rho);
            let analysis = analyze(&built, &model, &tech).expect("characterization");
            let fast = run_st_fast(&analysis).expect("st_fast");
            cells.push(100.0 * ((fast.t_1pm - ref_t[i]) / ref_t[i]).abs());
        }
        println!(
            "{:<10} | {:>9.3}% | {:>9.3}% | {:>9.3}%",
            format!("{side} x {side}"),
            cells[0],
            cells[1],
            cells[2]
        );
    }

    println!();
    println!("Expected shape (paper): error decreases (in general) as the grid is");
    println!("refined towards the 25x25 reference, while even the coarsest 10x10 grid");
    println!("stays accurate. Finding here: the pure discretization error decreases");
    println!("with refinement but is orders of magnitude below the MC noise floor -");
    println!("with the Table II budget (50% global variance) and processor-scale");
    println!("blocks, the BLOD projection is essentially grid-resolution independent,");
    println!("which *strengthens* the paper's conclusion that a coarse grid suffices.");
}
