//! Smoke test: runs every reliability method on design C1 and prints a
//! one-screen summary — a fast end-to-end sanity check of the whole
//! pipeline (design construction, thermal solve, PCA, BLOD, engines).
use statobd_bench::*;
use statobd_circuits::Benchmark;
use statobd_core::MonteCarloConfig;
use statobd_core::StMcConfig;

fn main() {
    let session = session_for(Benchmark::C1, 0.5);
    let analysis = session.analysis();
    println!(
        "C1 built: {} blocks, {} devices  (cold compile {:.2}s)",
        analysis.spec().n_blocks(),
        analysis.spec().total_devices(),
        session.stats().build_s
    );
    for b in analysis.spec().blocks() {
        println!(
            "  {:>4}: m={:>7} T={:.1}C",
            b.name(),
            b.m_devices(),
            b.temperature_k() - 273.15
        );
    }
    println!("retained components: {}", session.stats().n_components);
    let mc = run_mc(analysis, MonteCarloConfig::default()).unwrap();
    println!(
        "MC:      t1={} t10={} rt={}",
        fmt_lifetime(mc.t_1pm),
        fmt_lifetime(mc.t_10pm),
        fmt_seconds(mc.runtime_s)
    );
    let fast = run_st_fast(analysis).unwrap();
    let (e1, e10) = fast.error_pct(&mc);
    println!(
        "st_fast: t1={} err=({:.2}%,{:.2}%) rt={}",
        fmt_lifetime(fast.t_1pm),
        e1,
        e10,
        fmt_seconds(fast.runtime_s)
    );
    let smc = run_st_mc(analysis, StMcConfig::default()).unwrap();
    let (e1, e10) = smc.error_pct(&mc);
    println!(
        "st_MC:   t1={} err=({:.2}%,{:.2}%) rt={}",
        fmt_lifetime(smc.t_1pm),
        e1,
        e10,
        fmt_seconds(smc.runtime_s)
    );
    let (build_s, hyb) = run_hybrid(analysis).unwrap();
    let (e1, e10) = hyb.error_pct(&mc);
    println!(
        "hybrid:  t1={} err=({:.2}%,{:.2}%) rt={} (build {})",
        fmt_lifetime(hyb.t_1pm),
        e1,
        e10,
        fmt_seconds(hyb.runtime_s),
        fmt_seconds(build_s)
    );
    let guard = run_guard(analysis).unwrap();
    let (e1, e10) = guard.error_pct(&mc);
    println!(
        "guard:   t1={} err=({:.2}%,{:.2}%)",
        fmt_lifetime(guard.t_1pm),
        e1,
        e10
    );
}
