//! Smoke test: runs every reliability method on design C1 and prints a
//! one-screen summary — a fast end-to-end sanity check of the whole
//! pipeline (design construction, thermal solve, PCA, BLOD, engines).
use statobd_bench::*;
use statobd_circuits::{build_design, Benchmark, DesignConfig};
use statobd_core::MonteCarloConfig;
use statobd_core::StMcConfig;
use statobd_device::ClosedFormTech;

fn main() {
    let built = build_design(Benchmark::C1, &DesignConfig::default()).unwrap();
    println!(
        "C1 built: {} blocks, {} devices",
        built.spec.n_blocks(),
        built.spec.total_devices()
    );
    for b in built.spec.blocks() {
        println!(
            "  {:>4}: m={:>7} T={:.1}C",
            b.name(),
            b.m_devices(),
            b.temperature_k() - 273.15
        );
    }
    let t0 = std::time::Instant::now();
    let model = thickness_model_for(&built, 0.5);
    println!(
        "model built in {:.2}s: {} grids, {} PCs",
        t0.elapsed().as_secs_f64(),
        model.n_grids(),
        model.n_components()
    );
    let tech = ClosedFormTech::nominal_45nm();
    let t0 = std::time::Instant::now();
    let analysis = analyze(&built, &model, &tech).unwrap();
    println!("analysis in {:.2}s", t0.elapsed().as_secs_f64());
    let mc = run_mc(&analysis, MonteCarloConfig::default()).unwrap();
    println!(
        "MC:      t1={} t10={} rt={}",
        fmt_lifetime(mc.t_1pm),
        fmt_lifetime(mc.t_10pm),
        fmt_seconds(mc.runtime_s)
    );
    let fast = run_st_fast(&analysis).unwrap();
    let (e1, e10) = fast.error_pct(&mc);
    println!(
        "st_fast: t1={} err=({:.2}%,{:.2}%) rt={}",
        fmt_lifetime(fast.t_1pm),
        e1,
        e10,
        fmt_seconds(fast.runtime_s)
    );
    let smc = run_st_mc(&analysis, StMcConfig::default()).unwrap();
    let (e1, e10) = smc.error_pct(&mc);
    println!(
        "st_MC:   t1={} err=({:.2}%,{:.2}%) rt={}",
        fmt_lifetime(smc.t_1pm),
        e1,
        e10,
        fmt_seconds(smc.runtime_s)
    );
    let (build_s, hyb) = run_hybrid(&analysis).unwrap();
    let (e1, e10) = hyb.error_pct(&mc);
    println!(
        "hybrid:  t1={} err=({:.2}%,{:.2}%) rt={} (build {})",
        fmt_lifetime(hyb.t_1pm),
        e1,
        e10,
        fmt_seconds(hyb.runtime_s),
        fmt_seconds(build_s)
    );
    let guard = run_guard(&analysis).unwrap();
    let (e1, e10) = guard.error_pct(&mc);
    println!(
        "guard:   t1={} err=({:.2}%,{:.2}%)",
        fmt_lifetime(guard.t_1pm),
        e1,
        e10
    );
}
