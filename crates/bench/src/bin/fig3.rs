//! Reproduces **Fig. 3**: gate-leakage trace of a stressed device (the
//! paper shows a 45 nm device at 3.1 V / 100 °C) — a flat direct-tunneling
//! baseline, a 10–20× soft-breakdown jump, and a monotone wear-out ramp to
//! hard breakdown.

use statobd_device::{DegradationSimulator, PercolationConfig};
use statobd_num::rng::Xoshiro256pp;

fn main() {
    let sim = DegradationSimulator::new(PercolationConfig::default()).expect("valid config");
    let mut rng = Xoshiro256pp::seed_from_u64(2010);
    let trace = sim.simulate(&mut rng, 1.0, 10).expect("simulation");

    println!("== Fig. 3: gate leakage vs stress time (percolation simulator) ==");
    println!("   stress condition modeled: 3.1 V, 100 C equivalent");
    println!();
    println!("{:>12} {:>14}  (log-log trace)", "t (s)", "I_gate (A)");
    let i_max = trace.leakage_a.iter().cloned().fold(0.0, f64::max);
    let i_min = trace
        .leakage_a
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    for (t, i) in trace.times_s.iter().zip(&trace.leakage_a) {
        let frac = ((i / i_min).ln() / (i_max / i_min).ln() * 50.0) as usize;
        let marker = if *t >= trace.t_hbd_s {
            " <- HBD regime"
        } else if *t >= trace.t_sbd_s {
            " <- post-SBD"
        } else {
            ""
        };
        println!("{:>12.3e} {:>14.3e}  |{}{}", t, i, "#".repeat(frac), marker);
    }
    println!();
    println!(
        "SBD at t = {:.3e} s ({} traps generated); HBD at t = {:.3e} s",
        trace.t_sbd_s, trace.traps_at_sbd, trace.t_hbd_s
    );
    let pre = trace
        .times_s
        .iter()
        .zip(&trace.leakage_a)
        .filter(|(t, _)| **t < trace.t_sbd_s)
        .map(|(_, i)| *i)
        .next_back()
        .unwrap_or(i_min);
    let post = trace
        .times_s
        .iter()
        .zip(&trace.leakage_a)
        .find(|(t, _)| **t >= trace.t_sbd_s)
        .map(|(_, i)| *i)
        .unwrap_or(i_max);
    println!("SBD leakage jump: {:.1}x (paper: 10-20x)", post / pre);
    println!("HBD/baseline leakage ratio: {:.0}x", i_max / i_min);

    // The Weibull abstraction the chip analysis uses: slope estimate from
    // repeated SBD simulations.
    let slope = sim
        .estimate_weibull_slope(&mut rng, 500)
        .expect("slope estimation");
    println!();
    println!("Weibull slope of simulated SBD times: beta = {slope:.2} (thin-oxide range ~1-2.5)");
    println!();
    println!("Expected shape (paper): leakage increases continuously after SBD until");
    println!("HBD is triggered; SBD is an irreversible 10-20x jump.");
}
