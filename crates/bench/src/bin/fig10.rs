//! Reproduces **Fig. 10**: failure-rate curves of design C3 by four
//! methods — Monte-Carlo, the proposed temperature-aware statistical
//! approach, a temperature-unaware variant (worst-case temperature for
//! every block) and the conventional guard-band — plus the
//! 10-faults-per-million lifetime errors of each (the paper reports 1.8 %,
//! 25.1 % and 54.3 %).
//!
//! Run with `--quick` for fewer Monte-Carlo chips.

use statobd_bench::*;
use statobd_circuits::{build_design, Benchmark, DesignConfig};
use statobd_core::{
    failure_rate_curve, solve_lifetime, ChipAnalysis, GuardBand, GuardBandConfig, MonteCarlo,
    MonteCarloConfig, StFast, StFastConfig,
};
use statobd_device::ClosedFormTech;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // The paper simulates 10 000 sample chips for this figure.
    let mc_chips = if quick { 500 } else { 10_000 };

    println!("== Fig. 10: failure-rate curves and 10-per-million errors, design C3 ==");
    let built = build_design(Benchmark::C3, &DesignConfig::default()).expect("design");
    let model = thickness_model_for(&built, 0.5);
    let tech = ClosedFormTech::nominal_45nm();

    // Temperature-aware analysis.
    let aware = analyze(&built, &model, &tech).expect("characterization");
    // Temperature-unaware: every block at the chip's worst temperature.
    let unaware_spec = built
        .spec
        .with_uniform_worst_temperature()
        .expect("non-empty spec");
    let unaware = ChipAnalysis::new(unaware_spec, model.clone(), &tech).expect("characterization");

    let mut mc = MonteCarlo::build(
        &aware,
        MonteCarloConfig {
            n_chips: mc_chips,
            ..Default::default()
        },
    )
    .expect("MC build");
    let mut fast_aware = StFast::new(&aware, StFastConfig::default());
    let mut fast_unaware = StFast::new(&unaware, StFastConfig::default());
    let mut guard = GuardBand::new(&aware, GuardBandConfig::default()).expect("guard");

    // Lifetimes at the 10-per-million criterion.
    let p10 = statobd_core::params::TEN_PER_MILLION;
    let t_mc = solve_lifetime(&mut mc, p10, BRACKET).expect("MC lifetime");
    let t_aware = solve_lifetime(&mut fast_aware, p10, BRACKET).expect("aware lifetime");
    let t_unaware = solve_lifetime(&mut fast_unaware, p10, BRACKET).expect("unaware lifetime");
    let t_guard = guard.lifetime(p10).expect("guard lifetime");

    let err = |t: f64| 100.0 * ((t - t_mc) / t_mc).abs();
    println!();
    println!("10-faults-per-million lifetimes (MC = {} chips):", mc_chips);
    println!("  MC reference     : {}", fmt_lifetime(t_mc));
    println!(
        "  temp-aware       : {}  error {:>5.1}%  (paper:  1.8%)",
        fmt_lifetime(t_aware),
        err(t_aware)
    );
    println!(
        "  temp-unaware     : {}  error {:>5.1}%  (paper: 25.1%)",
        fmt_lifetime(t_unaware),
        err(t_unaware)
    );
    println!(
        "  guard-band       : {}  error {:>5.1}%  (paper: 54.3%)",
        fmt_lifetime(t_guard),
        err(t_guard)
    );

    // Failure-rate curves over the interesting window.
    let (t_lo, t_hi) = (t_guard / 4.0, t_mc * 6.0);
    let n_pts = 25;
    let c_mc = failure_rate_curve(&mut mc, t_lo, t_hi, n_pts).expect("curve");
    let c_aw = failure_rate_curve(&mut fast_aware, t_lo, t_hi, n_pts).expect("curve");
    let c_un = failure_rate_curve(&mut fast_unaware, t_lo, t_hi, n_pts).expect("curve");
    let c_gd = failure_rate_curve(&mut guard, t_lo, t_hi, n_pts).expect("curve");

    println!();
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>12}",
        "t (s)", "MC", "temp-aware", "temp-unaw.", "guard"
    );
    for i in 0..n_pts {
        println!(
            "{:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e} {:>12.3e}",
            c_mc[i].0, c_mc[i].1, c_aw[i].1, c_un[i].1, c_gd[i].1
        );
    }
    println!();
    println!("Expected shape (paper): the temperature-aware curve tracks MC closely;");
    println!("temp-unaware overstates the failure rate (lifetime error tens of %);");
    println!("guard-band overstates it the most (~half the real lifetime).");
    println!("Error ordering: temp-aware < temp-unaware < guard-band.");
}
