//! Kernel benchmark: scalar (lane width 1) vs vectorized (widths 4/8)
//! evaluation of the hot transcendental paths, emitting machine-readable
//! `BENCH_kernels.json`.
//!
//! Four kernel groups are measured, each at every lane width with the
//! same inputs:
//!
//! * raw `num::simd` slice kernels (`exp`, `exp_m1`, `ln_1p`) over
//!   seeded samples of the engines' argument ranges,
//! * `st_fast_integrate`: a batched StFast failure-probability sweep on
//!   the C3 design (the `(u, v)` quadrature lane sweep),
//! * `hybrid_table_fill`: the hybrid `(γ, b)` table construction,
//! * `mc_weight_table`: a batched Monte-Carlo sweep (the
//!   `scaled_exp_grid` weight-table fill plus histogram traversal —
//!   recurrence-dominated, reported for completeness without a speedup
//!   bar).
//!
//! Every width-4/8 row is gated at ≤ 1e-12 relative against the width-1
//! reference values. Full runs additionally require a ≥ 2× best-width
//! speedup on `st_fast_integrate` and `hybrid_table_fill`; the binary
//! exits non-zero if any gate fails, so a committed `BENCH_kernels.json`
//! always reflects a working lane layer. `--quick` keeps the accuracy
//! gates but skips the speedup bars (timings on loaded CI machines are
//! not trustworthy).
//!
//! ```text
//! cargo run --release -p statobd-bench --bin kernels -- \
//!     [--quick] [--out BENCH_kernels.json] [--threads 1]
//! ```

use statobd_bench::{measure_min, session_for, BRACKET};
use statobd_circuits::Benchmark;
use statobd_core::{
    build_engine, EngineSpec, HybridConfig, HybridTables, MonteCarloConfig, ReliabilityEngine,
    StFastConfig,
};
use statobd_num::impl_json_struct;
use statobd_num::simd::{self, LaneWidth};

/// Widths every kernel is measured at (width 1 is the reference row).
const WIDTHS: [LaneWidth; 3] = [LaneWidth::W1, LaneWidth::W4, LaneWidth::W8];
/// Best-width speedup bar for the quadrature kernels (full runs).
const GATE_SPEEDUP: f64 = 2.0;
/// Relative gate for width-4/8 values against the width-1 reference.
const GATE_REL_ERR: f64 = 1e-12;

/// One measurement: a (kernel, lane width) cell.
#[derive(Debug, Clone)]
struct KernelRow {
    kernel: String,
    /// What one `eval_s` unit covers (self-description for the JSON).
    unit: String,
    width: usize,
    /// Seconds per evaluation unit (min over repetitions).
    eval_s: f64,
    /// Width-1 `eval_s` divided by this row's `eval_s`.
    speedup_vs_scalar: f64,
    /// Max relative deviation from the width-1 values (0 for width 1).
    max_rel_err: f64,
}

impl_json_struct!(KernelRow {
    kernel,
    unit,
    width,
    eval_s,
    speedup_vs_scalar,
    max_rel_err
});

/// The whole report (`BENCH_kernels.json`).
#[derive(Debug, Clone)]
struct KernelReport {
    /// Lane dispatch decision active for the vector rows.
    dispatch: String,
    threads: usize,
    quick: bool,
    gate_speedup: f64,
    gate_rel_err: f64,
    rows: Vec<KernelRow>,
}

impl_json_struct!(KernelReport {
    dispatch,
    threads,
    quick,
    gate_speedup,
    gate_rel_err,
    rows
});

struct Options {
    out: String,
    threads: usize,
    quick: bool,
}

fn parse_options() -> Options {
    let mut opts = Options {
        out: "BENCH_kernels.json".to_string(),
        threads: 1,
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--out" => opts.out = value("--out"),
            "--threads" => {
                opts.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("bad thread count");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Max relative deviation between a row's values and the width-1
/// reference (denominator floored at the smallest positive normal, so
/// exact zeros compare exactly).
fn max_rel_err(got: &[f64], reference: &[f64]) -> f64 {
    got.iter()
        .zip(reference)
        .map(|(&g, &r)| {
            if g == r {
                0.0
            } else {
                (g - r).abs() / r.abs().max(f64::MIN_POSITIVE)
            }
        })
        .fold(0.0, f64::max)
}

/// Accumulates one kernel's per-width measurements and emits rows; the
/// width-1 measurement must be pushed first (it becomes the reference
/// for both the speedup and the accuracy gate).
struct KernelCells<'a> {
    kernel: &'a str,
    unit: &'a str,
    scalar_s: f64,
    reference: Vec<f64>,
}

impl<'a> KernelCells<'a> {
    fn new(kernel: &'a str, unit: &'a str) -> Self {
        Self {
            kernel,
            unit,
            scalar_s: 0.0,
            reference: Vec::new(),
        }
    }

    fn push(&mut self, rows: &mut Vec<KernelRow>, width: LaneWidth, eval_s: f64, values: &[f64]) {
        if width == LaneWidth::W1 {
            self.scalar_s = eval_s;
            self.reference = values.to_vec();
        }
        let row = KernelRow {
            kernel: self.kernel.to_string(),
            unit: self.unit.to_string(),
            width: width.lanes(),
            eval_s,
            speedup_vs_scalar: self.scalar_s / eval_s.max(1e-12),
            max_rel_err: max_rel_err(values, &self.reference),
        };
        println!(
            "  {:<18} w={:<2} {:>10.4e} s/{:<14} {:>6.2}x  rel {:.2e}",
            row.kernel, row.width, row.eval_s, self.unit, row.speedup_vs_scalar, row.max_rel_err
        );
        rows.push(row);
    }
}

/// Benchmarks one raw slice kernel at every width: the timed unit is the
/// kernel writing into a pre-allocated output buffer (no allocation or
/// copy in the measured region).
fn bench_slice(
    kernel: &str,
    unit: &str,
    rows: &mut Vec<KernelRow>,
    args: &[f64],
    f: impl Fn(&[f64], &mut [f64]),
) {
    let mut cells = KernelCells::new(kernel, unit);
    let mut out = vec![0.0; args.len()];
    for width in WIDTHS {
        simd::force_width(Some(width));
        f(args, &mut out);
        let eval_s = measure_min(|| f(args, &mut out));
        f(args, &mut out);
        cells.push(rows, width, eval_s, &out);
    }
    simd::force_width(None);
}

/// Benchmarks an engine-level kernel at every width. `setup` runs once
/// per width (after the width is forced) and returns the evaluation
/// closure; a warm-up call charges lazy state (quadrature nodes, chip
/// samples) to neither path before the timed repetitions.
fn bench_engine<E: FnMut() -> Vec<f64>>(
    kernel: &str,
    unit: &str,
    rows: &mut Vec<KernelRow>,
    mut setup: impl FnMut() -> E,
) {
    let mut cells = KernelCells::new(kernel, unit);
    for width in WIDTHS {
        simd::force_width(Some(width));
        let mut eval = setup();
        let values = eval();
        let eval_s = measure_min(|| {
            eval();
        });
        cells.push(rows, width, eval_s, &values);
    }
    simd::force_width(None);
}

/// Seeded argument samples for the raw slice kernels, spanning the
/// engines' ranges: quadrature log-domain arguments for `exp`, the
/// non-positive hazard exponents for `exp_m1`, weakest-link log terms
/// for `ln_1p`.
fn sample_args(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    use statobd_num::rng::Rng;
    let mut rng = statobd_num::rng::Xoshiro256pp::seed_from_u64(0x6b65726e656c73);
    let mut exp_args = Vec::with_capacity(n);
    let mut exp_m1_args = Vec::with_capacity(n);
    let mut ln_1p_args = Vec::with_capacity(n);
    for _ in 0..n {
        exp_args.push(rng.gen_range(-100.0..50.0));
        exp_m1_args.push(rng.gen_range(-25.0..0.0));
        ln_1p_args.push(rng.gen_range(-0.999..9.0));
    }
    (exp_args, exp_m1_args, ln_1p_args)
}

fn main() {
    let opts = parse_options();
    let threads = (opts.threads > 0).then_some(opts.threads);
    // Resolve the dispatch before any width forcing so the report shows
    // the production decision.
    let dispatch = simd::dispatch_label();
    println!("lane dispatch: {dispatch}");

    let mut rows: Vec<KernelRow> = Vec::new();

    // --- Raw slice kernels -------------------------------------------------
    let n_args = if opts.quick { 20_000 } else { 200_000 };
    let (exp_args, exp_m1_args, ln_1p_args) = sample_args(n_args);
    let unit = format!("{}k-elem slice", n_args / 1000);
    bench_slice("exp_slice", &unit, &mut rows, &exp_args, simd::exp_slice);
    bench_slice(
        "exp_m1_slice",
        &unit,
        &mut rows,
        &exp_m1_args,
        simd::exp_m1_slice,
    );
    bench_slice(
        "ln_1p_slice",
        &unit,
        &mut rows,
        &ln_1p_args,
        simd::ln_1p_slice,
    );
    bench_slice(
        "failure_term_slice",
        &unit,
        &mut rows,
        &exp_args,
        |xs, out| simd::failure_term_slice(xs, 1e-3, out),
    );

    // --- Engine kernels ----------------------------------------------------
    let session = session_for(Benchmark::C3, 0.5);
    let analysis = session.analysis();
    let n_sweep = if opts.quick { 32 } else { 256 };
    let (t_lo, t_hi) = BRACKET;
    let ratio = (t_hi / t_lo).ln();
    let ts: Vec<f64> = (0..n_sweep)
        .map(|i| t_lo * (ratio * i as f64 / (n_sweep - 1) as f64).exp())
        .collect();

    bench_engine(
        "st_fast_integrate",
        &format!("{n_sweep}-pt sweep"),
        &mut rows,
        || {
            let spec = EngineSpec::StFast(StFastConfig::default()).with_threads(threads);
            let mut engine = build_engine(analysis, &spec).expect("st_fast builds");
            let ts = ts.clone();
            move || engine.failure_probabilities(&ts).expect("st_fast sweep")
        },
    );

    let hybrid_config = HybridConfig {
        n_gamma: if opts.quick { 30 } else { 100 },
        n_b: if opts.quick { 30 } else { 100 },
        threads,
        ..HybridConfig::default()
    };
    // The timed unit is the (γ, b) table construction itself; the sweep
    // through the finished tables supplies the gate values and costs
    // only interpolation.
    bench_engine("hybrid_table_fill", "table build", &mut rows, || {
        let ts = ts.clone();
        move || {
            let mut tables = HybridTables::build(analysis, hybrid_config).expect("hybrid builds");
            tables.failure_probabilities(&ts).expect("hybrid sweep")
        }
    });

    let mc_config = MonteCarloConfig {
        n_chips: if opts.quick { 100 } else { 500 },
        ..MonteCarloConfig::default()
    };
    let mc_ts: Vec<f64> = ts[..ts.len().min(64)].to_vec();
    bench_engine(
        "mc_weight_table",
        &format!("{}-pt sweep", mc_ts.len()),
        &mut rows,
        || {
            let spec = EngineSpec::MonteCarlo(mc_config).with_threads(threads);
            let mut engine = build_engine(analysis, &spec).expect("mc builds");
            let mc_ts = mc_ts.clone();
            move || engine.failure_probabilities(&mc_ts).expect("mc sweep")
        },
    );

    // --- Gates -------------------------------------------------------------
    let mut failures: Vec<String> = Vec::new();
    for row in &rows {
        if row.width > 1 && row.max_rel_err > GATE_REL_ERR {
            failures.push(format!(
                "{} w={}: rel err {:.3e} above the {GATE_REL_ERR:.0e} gate",
                row.kernel, row.width, row.max_rel_err
            ));
        }
    }
    if !opts.quick {
        for kernel in ["st_fast_integrate", "hybrid_table_fill"] {
            let best = rows
                .iter()
                .filter(|r| r.kernel == kernel && r.width > 1)
                .map(|r| r.speedup_vs_scalar)
                .fold(0.0, f64::max);
            if best < GATE_SPEEDUP {
                failures.push(format!(
                    "{kernel}: best lane speedup {best:.2}x below the {GATE_SPEEDUP}x bar"
                ));
            }
        }
    }

    let report = KernelReport {
        dispatch,
        threads: opts.threads,
        quick: opts.quick,
        gate_speedup: GATE_SPEEDUP,
        gate_rel_err: GATE_REL_ERR,
        rows,
    };
    std::fs::write(&opts.out, statobd_num::json::to_string_pretty(&report))
        .expect("report written");
    println!("wrote {}", opts.out);
    if !failures.is_empty() {
        eprintln!("ERROR: kernel gates failed:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
