//! Reproduces **Fig. 8**: the CDF of the BLOD sample variance (a quadratic
//! form in normal variables) against its Yuan–Bentler χ² approximation
//! (eqs. 29–30).

use statobd_core::{BlockSpec, BlodMoments};
use statobd_num::rng::NormalSampler;
use statobd_num::rng::Xoshiro256pp;
use statobd_num::stats::ks_distance;
use statobd_variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};

fn main() {
    let model = ThicknessModelBuilder::new()
        .grid(GridSpec::square_unit(25).expect("grid"))
        .nominal(2.2)
        .budget(VarianceBudget::itrs_2008(2.2).expect("budget"))
        .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
        .build()
        .expect("model");

    // A wide block spanning a 6x4 patch of grids — a genuinely
    // multi-dimensional quadratic form.
    let mut weights = Vec::new();
    for row in 5..9 {
        for col in 4..10 {
            weights.push((row * 25 + col, 1.0 / 24.0));
        }
    }
    let block = BlockSpec::new("fig8", 50_000.0, 50_000, 358.15, 1.2, weights).expect("block spec");
    let moments = BlodMoments::characterize(&model, &block).expect("BLOD characterization");
    let v_dist = moments.v_dist();

    println!("== Fig. 8: quadratic-form CDF vs chi-square approximation ==");
    println!(
        "chi2 fit: a_hat = {:.4e}, b_hat = {:.3} dof; v floor = {:.4e}",
        moments.chi2_scale(),
        moments.chi2_dof(),
        moments.v_floor()
    );
    println!();

    // Monte-Carlo CDF of the exact quadratic form.
    let n_samples = 100_000;
    let mut rng = Xoshiro256pp::seed_from_u64(8);
    let mut normal = NormalSampler::new();
    let mut z = vec![0.0; model.n_components()];
    let mut samples: Vec<f64> = (0..n_samples)
        .map(|_| {
            normal.fill(&mut rng, &mut z);
            moments.uv_given_z(&z).1
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    println!("{:>12} {:>12} {:>12}", "v (nm^2)", "MC CDF", "chi2 CDF");
    let n = samples.len();
    for q in [0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999] {
        let idx = ((n as f64 * q) as usize).min(n - 1);
        let v = samples[idx];
        println!("{:>12.4e} {:>12.4} {:>12.4}", v, q, v_dist.cdf(v));
    }

    let ks = ks_distance(&mut samples, |v| v_dist.cdf(v)).expect("ks");
    println!();
    println!("Kolmogorov-Smirnov distance: {ks:.4}");
    println!();
    println!("Expected shape (paper): the computationally efficient chi-square");
    println!("representation is in good agreement with the MC-simulated CDF of the");
    println!("quadratic normal form.");
}
