//! Reproduces **Fig. 6** (joint PDF `f(u,v)` vs the marginal product
//! `f(u)·f(v)`) and **Fig. 7** (contour of their normalized error, plus
//! the mutual information ≈ 0.003 the paper quotes) for a multi-grid
//! block — the evidence behind the independence approximation of
//! Sec. IV-C.

use statobd_core::{BlockSpec, BlodMoments};
use statobd_num::hist::Histogram2d;
use statobd_num::rng::NormalSampler;
use statobd_num::rng::Xoshiro256pp;
use statobd_num::stats::mutual_information;
use statobd_variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};

fn main() {
    let model = ThicknessModelBuilder::new()
        .grid(GridSpec::square_unit(25).expect("grid"))
        .nominal(2.2)
        .budget(VarianceBudget::itrs_2008(2.2).expect("budget"))
        .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
        .build()
        .expect("model");

    // A block spanning a 5x3 patch of grids (row-major indices).
    let mut weights = Vec::new();
    for row in 10..13 {
        for col in 8..13 {
            weights.push((row * 25 + col, 1.0 / 15.0));
        }
    }
    let block = BlockSpec::new("fig6", 20_000.0, 20_000, 358.15, 1.2, weights).expect("block spec");
    let moments = BlodMoments::characterize(&model, &block).expect("BLOD characterization");

    // Sample (u, v) pairs.
    let n_samples = 200_000;
    let mut rng = Xoshiro256pp::seed_from_u64(67);
    let mut normal = NormalSampler::new();
    let mut z = vec![0.0; model.n_components()];
    let mut pairs = Vec::with_capacity(n_samples);
    let (mut ulo, mut uhi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut vlo, mut vhi) = (f64::INFINITY, f64::NEG_INFINITY);
    for _ in 0..n_samples {
        normal.fill(&mut rng, &mut z);
        let (u, v) = moments.uv_given_z(&z);
        ulo = ulo.min(u);
        uhi = uhi.max(u);
        vlo = vlo.min(v);
        vhi = vhi.max(v);
        pairs.push((u, v));
    }
    let bins = 30;
    let mut hist = Histogram2d::new(
        (ulo, uhi + 1e-9 * (uhi - ulo), bins),
        (vlo, vhi + 1e-9 * (vhi - vlo), bins),
    )
    .expect("histogram");
    for &(u, v) in &pairs {
        hist.add(u, v);
    }

    let joint = hist.joint_probabilities();
    let mu = hist.marginal_x();
    let mv = hist.marginal_y();
    let peak = joint.iter().cloned().fold(0.0, f64::max);

    // Fig. 7: normalized error contour and its maximum.
    let mut max_err = 0.0f64;
    let mut contour = vec![vec![' '; bins]; bins];
    for i in 0..bins {
        for j in 0..bins {
            let err = (joint[i * bins + j] - mu[i] * mv[j]).abs() / peak;
            max_err = max_err.max(err);
            contour[i][j] = match err {
                e if e >= 0.05 => '#',
                e if e >= 0.02 => '+',
                e if e >= 0.01 => '.',
                _ => ' ',
            };
        }
    }

    let mi = mutual_information(&hist);

    println!("== Fig. 6: joint PDF vs marginal product (block over 15 grids) ==");
    println!(
        "u range: [{ulo:.4}, {uhi:.4}] nm; v range: [{vlo:.3e}, {vhi:.3e}] nm^2; {n_samples} samples"
    );
    println!();
    println!("joint-PDF heat map (rows = u bins, cols = v bins, '@' = peak):");
    for i in 0..bins {
        let row: String = (0..bins)
            .map(|j| {
                let p = joint[i * bins + j] / peak;
                match p {
                    p if p >= 0.75 => '@',
                    p if p >= 0.50 => '#',
                    p if p >= 0.25 => '+',
                    p if p >= 0.05 => '.',
                    _ => ' ',
                }
            })
            .collect();
        println!("  {row}");
    }
    println!();
    println!(
        "== Fig. 7: normalized |joint - product| contour ('#' >= 5%, '+' >= 2%, '.' >= 1%) =="
    );
    for row in &contour {
        let s: String = row.iter().collect();
        println!("  {s}");
    }
    println!();
    println!(
        "max normalized error: {:.1}%  (paper: ~7% in a small region)",
        max_err * 100.0
    );
    println!("mutual information I(u; v) = {mi:.4} nats  (paper: ~0.003)");
    println!();
    println!("Expected shape (paper): the dependence between u and v is weak — small");
    println!("mutual information, with the largest normalized errors confined to a");
    println!("small low-probability region.");
}
