//! Reproduces **Fig. 4**: the BLOD property — the histogram of oxide
//! thicknesses within one block of one sample chip follows a Gaussian
//! curve, with R² ≈ 99.8 % (5 K devices) and 99.5 % (20 K devices) in the
//! paper.

use statobd_num::dist::{ContinuousDistribution, Normal};
use statobd_num::hist::Histogram1d;
use statobd_num::rng::Xoshiro256pp;
use statobd_num::stats::{mean, r_squared, sample_variance};
use statobd_variation::{
    CorrelationKernel, FieldSampler, GridSpec, ThicknessModelBuilder, VarianceBudget,
};

fn blod_histogram(n_devices: usize, seed: u64) -> (f64, Vec<(f64, f64, f64)>) {
    let model = ThicknessModelBuilder::new()
        .grid(GridSpec::square_unit(25).expect("grid"))
        .nominal(2.2)
        .budget(VarianceBudget::itrs_2008(2.2).expect("budget"))
        .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
        .build()
        .expect("model");
    let mut sampler = FieldSampler::new(&model);
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let die = sampler.sample_die(&mut rng);
    // One block sitting in a single grid (grid 312 = center): its devices
    // share the correlated base and differ by the independent residual.
    let xs = sampler.sample_devices(&mut rng, &die, 312, n_devices);

    let bins = 40;
    let hist = Histogram1d::from_data(&xs, bins).expect("histogram");
    let density = hist.density();
    let fit = Normal::new(mean(&xs), sample_variance(&xs).sqrt()).expect("fit");
    let modeled: Vec<f64> = (0..bins).map(|i| fit.pdf(hist.bin_center(i))).collect();
    let r2 = r_squared(&density, &modeled).expect("r-squared");

    let rows = (0..bins)
        .map(|i| (hist.bin_center(i), density[i], modeled[i]))
        .collect();
    (r2, rows)
}

fn main() {
    println!("== Fig. 4: BLOD histograms vs Gaussian fit ==");
    for (n, label) in [(5_000usize, "(a) 5K devices"), (20_000, "(b) 20K devices")] {
        let (r2, rows) = blod_histogram(n, 42);
        println!();
        println!("-- {label}: R^2 = {:.2}% --", r2 * 100.0);
        println!("{:>10} {:>12} {:>12}", "x (nm)", "density", "gauss fit");
        let max_d = rows.iter().map(|r| r.1).fold(0.0, f64::max);
        for &(x, d, m) in rows.iter().step_by(2) {
            let bar = "#".repeat((d / max_d * 40.0) as usize);
            println!("{x:>10.4} {d:>12.2} {m:>12.2}  |{bar}");
        }
    }
    println!();
    println!("Expected shape (paper): distinctly Gaussian-like curves with fitting");
    println!("goodness (R-square) above 99% for both block sizes.");
}
