//! Manager benchmark: the paper's "very fast response" claim, measured.
//!
//! For each design the runner builds a [`ReliabilityManager`] on the
//! hybrid tables and (a) cross-validates the accumulated-damage chip
//! failure probability under a *constant* operating point against a
//! direct `Hybrid` engine built from the **same** table configuration —
//! the two must agree to ≤1e-9 relative, and the run exits non-zero if
//! they do not; (b) times the runtime monitoring loop (manager steps per
//! second and per-table-query latency, the figure that must stay in the
//! microsecond range for an embedded monitor); and (c) times a throttled
//! three-level DVFS schedule, whose ladder walks cost extra projection
//! sweeps.
//!
//! ```text
//! cargo run --release -p statobd-bench --bin manager -- \
//!     [--quick] [--out BENCH_manager.json] [--designs C1,C3] \
//!     [--steps 2000] [--threads 1]
//! ```
//!
//! Output schema (one JSON object):
//!
//! ```text
//! { "threads": 1, "rows": [ { "design": "C1", "scenario": "monitor",
//!   "blocks": 10, "steps": 2000, "build_s": ..., "run_s": ...,
//!   "steps_per_s": ..., "per_query_us": ..., "rel_vs_hybrid": ...,
//!   "transitions": 0, "off_grid_queries": 0, "within_tolerance": true },
//!   ... ] }
//! ```

use statobd_bench::session_for;
use statobd_circuits::Benchmark;
use statobd_core::{HybridTables, ReliabilityEngine};
use statobd_device::ClosedFormTech;
use statobd_manager::{DvfsLevel, ManagerConfig, PolicyConfig, ReliabilityManager};
use statobd_num::impl_json_struct;
use std::time::Instant;

/// Cross-validation tolerance: constant-point manager P(t) vs the direct
/// engine on identical tables.
const TOLERANCE: f64 = 1e-9;
const YEAR_S: f64 = 3.156e7;

/// One measurement: a (design, scenario) cell.
#[derive(Debug, Clone)]
struct ManagerRow {
    design: String,
    scenario: String,
    blocks: u64,
    steps: u64,
    /// Manager construction seconds (widened-table build).
    build_s: f64,
    /// Wall seconds for the whole stepping loop.
    run_s: f64,
    /// Manager damage/decision steps per second.
    steps_per_s: f64,
    /// Mean per-table-query latency in microseconds (each step performs
    /// one monitoring sweep and one projection sweep per ladder level
    /// visited).
    per_query_us: f64,
    /// Constant-point relative deviation vs the direct `Hybrid` engine
    /// on the same table configuration (NaN for throttled scenarios,
    /// where no constant-point identity holds).
    rel_vs_hybrid: f64,
    /// DVFS ladder transitions taken during the run.
    transitions: u64,
    /// Queries that fell off the non-conservative table edges.
    off_grid_queries: u64,
    /// Whether `rel_vs_hybrid` met the 1e-9 criterion (the run exits
    /// non-zero if any constant-point row is false).
    within_tolerance: bool,
}

impl_json_struct!(ManagerRow {
    design,
    scenario,
    blocks,
    steps,
    build_s,
    run_s,
    steps_per_s,
    per_query_us,
    rel_vs_hybrid,
    transitions,
    off_grid_queries,
    within_tolerance
});

/// The whole report (`BENCH_manager.json`).
#[derive(Debug, Clone)]
struct ManagerReport {
    /// Worker threads the table build was pinned to (0 = all cores).
    threads: usize,
    rows: Vec<ManagerRow>,
}

impl_json_struct!(ManagerReport { threads, rows });

struct Options {
    out: String,
    designs: Vec<Benchmark>,
    steps: usize,
    threads: usize,
}

fn parse_benchmark(name: &str) -> Benchmark {
    Benchmark::parse(name).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

fn parse_options() -> Options {
    let mut opts = Options {
        out: "BENCH_manager.json".to_string(),
        designs: vec![Benchmark::C1, Benchmark::C3],
        steps: 2000,
        threads: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => {
                opts.designs = vec![Benchmark::C1];
                opts.steps = 200;
            }
            "--out" => opts.out = value("--out"),
            "--designs" => {
                opts.designs = value("--designs").split(',').map(parse_benchmark).collect();
            }
            "--steps" => {
                opts.steps = value("--steps").parse().unwrap_or_else(|_| {
                    eprintln!("bad step count");
                    std::process::exit(2);
                });
                if opts.steps == 0 {
                    eprintln!("--steps: need at least one step");
                    std::process::exit(2);
                }
            }
            "--threads" => {
                opts.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("bad thread count");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn print_row(row: &ManagerRow) {
    println!(
        "  {:<9} steps={:<5} build {:>7.3}s  run {:>8.4}s  {:>9.0} steps/s  \
         {:>6.2} µs/query  rel {:>9.2e}  {}",
        row.scenario,
        row.steps,
        row.build_s,
        row.run_s,
        row.steps_per_s,
        row.per_query_us,
        row.rel_vs_hybrid,
        if row.within_tolerance {
            "ok"
        } else {
            "DIVERGED"
        }
    );
}

fn main() {
    let opts = parse_options();
    let threads = (opts.threads > 0).then_some(opts.threads);
    let tech = ClosedFormTech::nominal_45nm();
    let service_life_s = 10.0 * YEAR_S;
    let mut rows = Vec::new();
    let mut all_within = true;

    for &benchmark in &opts.designs {
        let session = session_for(benchmark, 0.5);
        let analysis = session.analysis();
        let n_blocks = analysis.n_blocks();
        let spec_temps: Vec<f64> = analysis
            .blocks()
            .iter()
            .map(|b| b.spec().temperature_k())
            .collect();
        let vdd_spec = analysis
            .blocks()
            .iter()
            .map(|b| b.spec().voltage_v())
            .fold(f64::MIN, f64::max);
        println!(
            "{}: {} blocks, {} devices",
            benchmark.name(),
            n_blocks,
            analysis.spec().total_devices()
        );
        let manager_config = ManagerConfig {
            tables: statobd_core::HybridConfig {
                threads,
                ..statobd_core::HybridConfig::default()
            },
            ..ManagerConfig::default()
        };

        // Scenario 1 — "monitor": a constant operating point at the
        // specification conditions. The effective-age identity ξ = t/α
        // makes the manager's P(t) directly comparable to the static
        // engine, anchoring the damage model.
        let build_start = Instant::now();
        let mut mgr = ReliabilityManager::new(
            analysis,
            Box::new(tech),
            PolicyConfig::monitoring_only(1.0, service_life_s),
            manager_config,
        )
        .expect("manager builds");
        let build_s = build_start.elapsed().as_secs_f64();

        let dt_s = 0.8 * service_life_s / opts.steps as f64;
        let run_start = Instant::now();
        for _ in 0..opts.steps {
            mgr.step(dt_s, &spec_temps, vdd_spec).expect("step");
        }
        let run_s = run_start.elapsed().as_secs_f64();
        let p_mgr = mgr.failure_probability_now().expect("query");

        // The direct engine must use the manager's own (γ/b-widened)
        // table configuration — identical grids, so the only difference
        // is Σ(dt/α) vs (Σdt)/α float rounding.
        let mut direct =
            HybridTables::build(analysis, *mgr.tables().config()).expect("direct tables");
        let p_direct = direct
            .failure_probability(mgr.damage().elapsed_s())
            .expect("direct eval");
        let rel = ((p_mgr - p_direct) / p_direct).abs();
        let within = rel <= TOLERANCE;
        all_within &= within;

        // One monitoring sweep + one projection sweep per step
        // (monitoring ladder has a single level).
        let queries = (2 * n_blocks * opts.steps) as f64;
        let row = ManagerRow {
            design: benchmark.name().to_string(),
            scenario: "monitor".to_string(),
            blocks: n_blocks as u64,
            steps: opts.steps as u64,
            build_s,
            run_s,
            steps_per_s: opts.steps as f64 / run_s.max(1e-12),
            per_query_us: run_s / queries * 1e6,
            rel_vs_hybrid: rel,
            transitions: mgr.transitions(),
            off_grid_queries: mgr.off_grid_queries(),
            within_tolerance: within,
        };
        print_row(&row);
        rows.push(row);

        // Scenario 2 — "throttle": a bursty turbo request against a
        // three-level ladder and a tight budget, so the policy layer's
        // ladder walks (extra projection sweeps) are included in the
        // step cost.
        let policy = PolicyConfig {
            budget: 1e-5,
            service_life_s,
            hysteresis: 0.85,
            levels: vec![
                DvfsLevel {
                    name: "turbo".to_string(),
                    vdd_cap_v: vdd_spec * 1.05,
                    dt_when_capped_k: 0.0,
                },
                DvfsLevel {
                    name: "nominal".to_string(),
                    vdd_cap_v: vdd_spec,
                    dt_when_capped_k: -6.0,
                },
                DvfsLevel {
                    name: "eco".to_string(),
                    vdd_cap_v: vdd_spec * 0.92,
                    dt_when_capped_k: -14.0,
                },
            ],
        };
        let build_start = Instant::now();
        let mut mgr = ReliabilityManager::new(
            analysis,
            Box::new(tech),
            policy,
            ManagerConfig {
                tables: statobd_core::HybridConfig {
                    threads,
                    ..statobd_core::HybridConfig::default()
                },
                ..ManagerConfig::default()
            },
        )
        .expect("manager builds");
        let build_s = build_start.elapsed().as_secs_f64();

        let hot: Vec<f64> = spec_temps.iter().map(|t| t + 8.0).collect();
        let run_start = Instant::now();
        for i in 0..opts.steps {
            // Alternate turbo bursts with typical stretches.
            let (temps, vdd) = if i % 8 < 2 {
                (&hot, vdd_spec * 1.05)
            } else {
                (&spec_temps, vdd_spec)
            };
            mgr.step(dt_s, temps, vdd).expect("step");
        }
        let run_s = run_start.elapsed().as_secs_f64();
        // ≥ 2 sweeps per step, more when the ladder moved; report the
        // conservative lower bound so the µs figure is an upper bound.
        let queries = (2 * n_blocks * opts.steps) as f64;
        let row = ManagerRow {
            design: benchmark.name().to_string(),
            scenario: "throttle".to_string(),
            blocks: n_blocks as u64,
            steps: opts.steps as u64,
            build_s,
            run_s,
            steps_per_s: opts.steps as f64 / run_s.max(1e-12),
            per_query_us: run_s / queries * 1e6,
            rel_vs_hybrid: f64::NAN,
            transitions: mgr.transitions(),
            off_grid_queries: mgr.off_grid_queries(),
            within_tolerance: true,
        };
        print_row(&row);
        rows.push(row);
    }

    let report = ManagerReport {
        threads: opts.threads,
        rows,
    };
    std::fs::write(&opts.out, statobd_num::json::to_string_pretty(&report))
        .expect("report written");
    println!("wrote {}", opts.out);
    if !all_within {
        eprintln!("ERROR: constant-point manager P(t) diverged from the direct Hybrid engine");
        std::process::exit(1);
    }
}
