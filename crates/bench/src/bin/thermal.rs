//! Thermal linear-algebra benchmark: times the steady-state solve, the
//! leakage fixed point (warm vs cold start) and the transient stepper
//! across the linear-solver tiers (plain CG, Jacobi-PCG, IC(0)-PCG,
//! MGCG) on the Alpha EV6 reference profile, and emits machine-readable
//! `BENCH_thermal.json` so the repo accumulates a perf trajectory for the
//! thermal fast path.
//!
//! ```text
//! cargo run --release -p statobd-bench --bin thermal -- \
//!     [--quick] [--out BENCH_thermal.json] [--grids 64,128,256,512] \
//!     [--threads 1]
//! ```
//!
//! Row kinds:
//!
//! * `steady` — one linear solve (leakage folded into fixed dynamic
//!   power), every solver at every grid: the MGCG-vs-Jacobi speedup
//!   headline.
//! * `leakage_warm` / `leakage_cold` — the full leakage–temperature fixed
//!   point with warm starting on and off; the CG-iteration totals show
//!   what warm starting buys. Plain CG and Jacobi-PCG are skipped above
//!   128² where a cold leakage loop costs minutes.
//! * `transient` — a 3·τ_v backward-Euler run with the auto-dispatched
//!   solver: one operator + preconditioner build amortized over all steps.
//!
//! Every solved temperature field is checked against the grid's first
//! steady map (block mean and max within 1e-6 K); the run exits non-zero
//! on mismatch. Defaults measure the algorithmic win at `--threads 1`.

use statobd_num::impl_json_struct;
use statobd_thermal::{
    alpha_ev6_floorplan, alpha_ev6_power, BlockPower, Floorplan, PowerModel, TemperatureMap,
    ThermalConfig, ThermalSolver, ThermalSolverKind,
};

/// Consistency tolerance (K) on block mean/max temperatures.
const AGREE_TOL_K: f64 = 1e-6;

/// Cold leakage loops with non-scalable solvers are minutes-slow past
/// this grid side; those cells are skipped (and logged).
const SLOW_SOLVER_LEAKAGE_LIMIT: usize = 128;

/// One measurement: a (grid, kind, solver) cell.
#[derive(Debug, Clone)]
struct ThermalRow {
    grid_side: usize,
    n_cells: usize,
    /// `steady`, `leakage_warm`, `leakage_cold` or `transient`.
    kind: String,
    /// Resolved solver name (`auto` never appears).
    solver: String,
    /// Conductance assembly + power rasterization seconds.
    assembly_s: f64,
    /// Preconditioner build seconds.
    precond_s: f64,
    /// Accumulated CG seconds.
    solve_s: f64,
    total_s: f64,
    /// Leakage fixed-point iterations (backward-Euler steps for
    /// `transient` rows).
    outer_iters: usize,
    /// CG iterations summed over the whole run.
    total_cg_iters: usize,
    /// Relative residual of the final CG solve (0 for transient rows).
    final_residual: f64,
    /// Jacobi-PCG total at the same (grid, kind) divided by this total
    /// (0 when no Jacobi baseline ran).
    speedup_vs_jacobi: f64,
    /// Whether block temperatures match the grid's reference map (the run
    /// aborts non-zero if any is false).
    consistent: bool,
}

impl_json_struct!(ThermalRow {
    grid_side,
    n_cells,
    kind,
    solver,
    assembly_s,
    precond_s,
    solve_s,
    total_s,
    outer_iters,
    total_cg_iters,
    final_residual,
    speedup_vs_jacobi,
    consistent
});

/// The whole report (`BENCH_thermal.json`).
#[derive(Debug, Clone)]
struct ThermalReport {
    /// Worker threads the solves were pinned to.
    threads: usize,
    rows: Vec<ThermalRow>,
}

impl_json_struct!(ThermalReport { threads, rows });

struct Options {
    out: String,
    grids: Vec<usize>,
    threads: usize,
}

fn parse_options() -> Options {
    let mut opts = Options {
        out: "BENCH_thermal.json".to_string(),
        grids: vec![64, 128, 256, 512],
        threads: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => opts.grids = vec![32, 64],
            "--out" => opts.out = value("--out"),
            "--grids" => {
                opts.grids = value("--grids")
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad grid side {s:?}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--threads" => {
                opts.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("bad thread count");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// The alpha power profile with leakage folded into fixed dynamic power —
/// turns the fixed point into a single linear solve of the same total
/// wattage.
fn zero_leakage(pm: &PowerModel) -> PowerModel {
    let mut out = PowerModel::new();
    for (name, bp) in pm.iter() {
        out.set_block_power(
            name,
            BlockPower::new(bp.dynamic_w() + bp.leakage_ref_w(), 0.0).expect("power"),
        )
        .expect("block");
    }
    out
}

fn config(side: usize, solver: ThermalSolverKind, warm_start: bool) -> ThermalConfig {
    ThermalConfig {
        nx: side,
        ny: side,
        solver,
        warm_start,
        ..ThermalConfig::default()
    }
}

/// Block mean and max temperatures, the quantities the reliability model
/// consumes — the consistency contract between solver variants.
fn block_temps(map: &TemperatureMap, fp: &Floorplan) -> Vec<f64> {
    fp.blocks()
        .iter()
        .flat_map(|b| {
            let s = map.block_stats(b.rect());
            [s.mean_k, s.max_k]
        })
        .collect()
}

fn agrees(a: &[f64], b: &[f64]) -> bool {
    a.iter().zip(b).all(|(x, y)| (x - y).abs() < AGREE_TOL_K)
}

#[allow(clippy::too_many_arguments)]
fn print_row(row: &ThermalRow) {
    println!(
        "  {:<13} {:<11} outer {:>3}  cg {:>6}  asm {:>7.4}s  pre {:>7.4}s  \
         solve {:>8.4}s  total {:>8.4}s  {:>6.1}x  {}",
        row.kind,
        row.solver,
        row.outer_iters,
        row.total_cg_iters,
        row.assembly_s,
        row.precond_s,
        row.solve_s,
        row.total_s,
        row.speedup_vs_jacobi,
        if row.consistent { "ok" } else { "MISMATCH" }
    );
}

fn main() {
    let opts = parse_options();
    // The thermal solver reads its thread budget from the environment.
    std::env::set_var("STATOBD_THREADS", opts.threads.to_string());
    let fp = alpha_ev6_floorplan().expect("floorplan");
    let pm = alpha_ev6_power().expect("power");
    let pm_steady = zero_leakage(&pm);
    let solvers = [
        ThermalSolverKind::JacobiPcg,
        ThermalSolverKind::PlainCg,
        ThermalSolverKind::Ic0Pcg,
        ThermalSolverKind::Mgcg,
    ];

    let mut rows: Vec<ThermalRow> = Vec::new();
    let mut all_consistent = true;
    for &side in &opts.grids {
        println!("grid {side}x{side} ({} cells):", side * side);
        let mut reference: Option<Vec<f64>> = None;
        let mut leakage_reference: Option<Vec<f64>> = None;
        let baseline = |rows: &[ThermalRow], kind: &str| {
            rows.iter()
                .find(|r| r.grid_side == side && r.kind == kind && r.solver == "jacobi_pcg")
                .map(|r| r.total_s)
        };

        for &solver in &solvers {
            // Steady: one linear solve, the headline comparison.
            let t0 = std::time::Instant::now();
            let map = ThermalSolver::new(config(side, solver, true))
                .solve(&fp, &pm_steady)
                .expect("steady solve");
            let total_s = t0.elapsed().as_secs_f64();
            let temps = block_temps(&map, &fp);
            let consistent = reference
                .as_ref()
                .map(|r| agrees(&temps, r))
                .unwrap_or(true);
            all_consistent &= consistent;
            if reference.is_none() {
                reference = Some(temps);
            }
            let b = map.breakdown();
            let row = ThermalRow {
                grid_side: side,
                n_cells: side * side,
                kind: "steady".to_string(),
                solver: b.solver.clone(),
                assembly_s: b.assembly_s,
                precond_s: b.precond_s,
                solve_s: b.solve_s,
                total_s,
                outer_iters: map.leakage_iterations(),
                total_cg_iters: map.total_cg_iterations(),
                final_residual: map.final_residual(),
                speedup_vs_jacobi: baseline(&rows, "steady")
                    .map(|b| b / total_s.max(1e-12))
                    .unwrap_or(0.0),
                consistent,
            };
            print_row(&row);
            rows.push(row);

            // Leakage fixed point, warm vs cold.
            if matches!(
                solver,
                ThermalSolverKind::PlainCg | ThermalSolverKind::JacobiPcg
            ) && side > SLOW_SOLVER_LEAKAGE_LIMIT
            {
                println!(
                    "  (skipping {} leakage rows at {side}x{side}: cold loop is minutes-slow)",
                    solver.name()
                );
                continue;
            }
            for (kind, warm) in [("leakage_warm", true), ("leakage_cold", false)] {
                let t0 = std::time::Instant::now();
                let map = ThermalSolver::new(config(side, solver, warm))
                    .solve(&fp, &pm)
                    .expect("leakage solve");
                let total_s = t0.elapsed().as_secs_f64();
                let temps = block_temps(&map, &fp);
                let consistent = leakage_reference
                    .as_ref()
                    .map(|r| agrees(&temps, r))
                    .unwrap_or(true);
                all_consistent &= consistent;
                if leakage_reference.is_none() {
                    leakage_reference = Some(temps);
                }
                let b = map.breakdown();
                let row = ThermalRow {
                    grid_side: side,
                    n_cells: side * side,
                    kind: kind.to_string(),
                    solver: b.solver.clone(),
                    assembly_s: b.assembly_s,
                    precond_s: b.precond_s,
                    solve_s: b.solve_s,
                    total_s,
                    outer_iters: map.leakage_iterations(),
                    total_cg_iters: map.total_cg_iterations(),
                    final_residual: map.final_residual(),
                    speedup_vs_jacobi: baseline(&rows, kind)
                        .map(|b| b / total_s.max(1e-12))
                        .unwrap_or(0.0),
                    consistent,
                };
                print_row(&row);
                rows.push(row);
            }
        }

        // Transient: auto-dispatched solver, 3 vertical time constants.
        let cfg = config(side, ThermalSolverKind::Auto, true);
        let tau_v = cfg.r_package * cfg.c_volumetric * cfg.die_thickness;
        let t0 = std::time::Instant::now();
        let result = ThermalSolver::new(cfg)
            .solve_transient(&fp, &pm, cfg.ambient_k, 3.0 * tau_v, 3)
            .expect("transient solve");
        let total_s = t0.elapsed().as_secs_f64();
        let s = &result.stats;
        assert_eq!(s.operator_assemblies, 1, "transient must assemble once");
        let row = ThermalRow {
            grid_side: side,
            n_cells: side * side,
            kind: "transient".to_string(),
            solver: s.solver.clone(),
            assembly_s: s.assembly_s,
            precond_s: s.precond_s,
            solve_s: s.solve_s,
            total_s,
            outer_iters: s.steps,
            total_cg_iters: s.total_cg_iterations,
            final_residual: 0.0,
            speedup_vs_jacobi: 0.0,
            consistent: true,
        };
        print_row(&row);
        rows.push(row);
    }

    let report = ThermalReport {
        threads: opts.threads,
        rows,
    };
    std::fs::write(&opts.out, statobd_num::json::to_string_pretty(&report))
        .expect("report written");
    println!("wrote {}", opts.out);
    if !all_consistent {
        eprintln!("ERROR: a solver produced block temperatures diverging from the reference");
        std::process::exit(1);
    }
}
