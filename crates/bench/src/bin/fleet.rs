//! Fleet benchmark: millions of chips through the sharded constant-memory
//! streaming reducer, with the determinism claims enforced.
//!
//! Three gates, any failure exits non-zero:
//!
//! 1. **Cross-thread/shard determinism** — the deterministic aggregate
//!    block of [`statobd::FleetReport`] must render to bit-identical JSON
//!    across a thread × shard matrix (1/2/8 threads × 1/2/5 shards).
//! 2. **Constant memory** — every run must report
//!    `workspaces_created <= shards`: the hot path allocates one reusable
//!    workspace per shard and nothing per chip.
//! 3. **Time budget** (full mode only) — the 10⁶-chip headline run must
//!    finish inside [`HEADLINE_BUDGET_S`].
//!
//! ```text
//! cargo run --release -p statobd-bench --bin fleet -- \
//!     [--quick] [--out BENCH_fleet.json] [--chips 1000000] [--threads N]
//! ```
//!
//! Output schema (one JSON object):
//!
//! ```text
//! { "lanes": "...", "rows": [ { "design": "two_block", "scenario":
//!   "throughput", "profile": "datacenter", "chips": 100000, "threads": 1,
//!   "shards": 1, "run_s": ..., "chips_per_s": ..., "exceed_budget": ...,
//!   "deterministic": true, "workspaces_ok": true }, ... ] }
//! ```

use statobd::{run_fleet, AnalysisSpec, FleetConfig, FleetReport, Session};
use statobd_core::{BlockSpec, ChipSpec};
use statobd_device::ClosedFormTech;
use statobd_manager::MissionProfile;
use statobd_num::impl_json_struct;
use statobd_num::json;

/// Wall-clock budget for the full-mode headline run (10⁶ chips).
const HEADLINE_BUDGET_S: f64 = 120.0;

/// Thread × shard determinism matrix.
const THREAD_MATRIX: [usize; 3] = [1, 2, 8];
const SHARD_MATRIX: [usize; 3] = [1, 2, 5];

/// One measurement row.
#[derive(Debug, Clone)]
struct FleetRow {
    design: String,
    scenario: String,
    profile: String,
    chips: u64,
    threads: u64,
    shards: u64,
    run_s: f64,
    chips_per_s: f64,
    /// Chips over the failure-probability budget at mission end (a
    /// deterministic aggregate — identical across rows of one scenario).
    exceed_budget: u64,
    /// Aggregates bit-identical to the scenario's reference run.
    deterministic: bool,
    /// `workspaces_created <= shards` held for this run.
    workspaces_ok: bool,
}

impl_json_struct!(FleetRow {
    design,
    scenario,
    profile,
    chips,
    threads,
    shards,
    run_s,
    chips_per_s,
    exceed_budget,
    deterministic,
    workspaces_ok
});

/// The whole report (`BENCH_fleet.json`).
#[derive(Debug, Clone)]
struct Report {
    /// SIMD lane dispatch active during the run.
    lanes: String,
    rows: Vec<FleetRow>,
}

impl_json_struct!(Report { lanes, rows });

struct Options {
    out: String,
    quick: bool,
    /// Headline fleet size.
    chips: u64,
    /// Thread override for the throughput/headline rows (0 = all cores).
    threads: usize,
}

fn parse_options() -> Options {
    let mut opts = Options {
        out: "BENCH_fleet.json".to_string(),
        quick: false,
        chips: 1_000_000,
        threads: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--out" => opts.out = value("--out"),
            "--chips" => {
                opts.chips = value("--chips").parse().unwrap_or_else(|_| {
                    eprintln!("bad chip count");
                    std::process::exit(2);
                });
                if opts.chips == 0 {
                    eprintln!("--chips: need at least one chip");
                    std::process::exit(2);
                }
            }
            "--threads" => {
                opts.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("bad thread count");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// The benchmark design: a hot two-block chip over a 10×10 correlation
/// grid — small enough that the per-chip hot path, not the model build,
/// dominates, like a production fleet sweep over a compiled model.
fn bench_session() -> Session {
    let mut chip = ChipSpec::new();
    chip.add_block(
        BlockSpec::new(
            "core",
            60_000.0,
            60_000,
            368.15,
            1.2,
            vec![(0, 0.3), (1, 0.3), (11, 0.4)],
        )
        .expect("bench block is valid"),
    )
    .expect("bench chip accepts blocks");
    chip.add_block(
        BlockSpec::new("cache", 140_000.0, 140_000, 341.15, 1.2, vec![(55, 1.0)])
            .expect("bench block is valid"),
    )
    .expect("bench chip accepts blocks");
    Session::build(&AnalysisSpec::chip(chip).with_grid_side(10)).expect("bench model compiles")
}

fn config(
    chips: u64,
    profile: MissionProfile,
    threads: usize,
    shards: Option<usize>,
) -> FleetConfig {
    FleetConfig {
        chips,
        profile,
        threads: (threads > 0).then_some(threads),
        shards,
        ..FleetConfig::default()
    }
}

fn row(report: &FleetReport, scenario: &str, profile: &str, deterministic: bool) -> FleetRow {
    FleetRow {
        design: "two_block".to_string(),
        scenario: scenario.to_string(),
        profile: profile.to_string(),
        chips: report.aggregates.chips,
        threads: report.threads,
        shards: report.shards,
        run_s: report.run_s,
        chips_per_s: report.chips_per_s,
        exceed_budget: report.aggregates.exceed_budget,
        deterministic,
        workspaces_ok: report.workspaces_created <= report.shards,
    }
}

fn print_row(r: &FleetRow) {
    println!(
        "  {:<12} {:<13} chips={:<8} t={} s={}  {:>7.3}s  {:>9.0} chips/s  {}{}",
        r.scenario,
        r.profile,
        r.chips,
        r.threads,
        r.shards,
        r.run_s,
        r.chips_per_s,
        if r.deterministic { "ok" } else { "DIVERGED" },
        if r.workspaces_ok { "" } else { " ALLOCATING" }
    );
}

fn main() {
    let opts = parse_options();
    let session = bench_session();
    let analysis = session.analysis();
    let tech = ClosedFormTech::nominal_45nm();
    let mut rows = Vec::new();
    let mut all_ok = true;

    // Gate 1+2 — the determinism matrix: one fleet, every thread × shard
    // combination, aggregates compared bit-for-bit as compact JSON.
    let det_chips: u64 = if opts.quick { 2_000 } else { 20_000 };
    println!("determinism matrix ({det_chips} chips):");
    let mut reference: Option<String> = None;
    for &threads in &THREAD_MATRIX {
        for &shards in &SHARD_MATRIX {
            let report = run_fleet(
                analysis,
                &tech,
                &config(
                    det_chips,
                    MissionProfile::datacenter(),
                    threads,
                    Some(shards),
                ),
            )
            .expect("fleet runs");
            let rendered = json::to_string(&report.aggregates);
            let deterministic = match &reference {
                None => {
                    reference = Some(rendered);
                    true
                }
                Some(r) => r == &rendered,
            };
            let r = row(&report, "determinism", "datacenter", deterministic);
            all_ok &= r.deterministic && r.workspaces_ok;
            print_row(&r);
            rows.push(r);
        }
    }

    // Per-profile throughput at a moderate fleet size.
    let prof_chips: u64 = if opts.quick { 5_000 } else { 100_000 };
    println!("profile throughput ({prof_chips} chips):");
    for profile in MissionProfile::all() {
        let name = profile.name();
        let report = run_fleet(
            analysis,
            &tech,
            &config(prof_chips, profile, opts.threads, None),
        )
        .expect("fleet runs");
        let r = row(&report, "throughput", name, true);
        all_ok &= r.workspaces_ok;
        print_row(&r);
        rows.push(r);
    }

    // Gate 3 — the headline: a production-scale fleet, all cores.
    let headline_chips = if opts.quick { 10_000 } else { opts.chips };
    println!("headline ({headline_chips} chips):");
    let report = run_fleet(
        analysis,
        &tech,
        &config(
            headline_chips,
            MissionProfile::datacenter(),
            opts.threads,
            None,
        ),
    )
    .expect("fleet runs");
    let r = row(&report, "headline", "datacenter", true);
    all_ok &= r.workspaces_ok;
    if !opts.quick && r.run_s > HEADLINE_BUDGET_S {
        eprintln!(
            "ERROR: headline run took {:.1}s, budget {HEADLINE_BUDGET_S}s",
            r.run_s
        );
        all_ok = false;
    }
    print_row(&r);
    rows.push(r);

    let report = Report {
        lanes: statobd_num::simd::dispatch_label(),
        rows,
    };
    std::fs::write(&opts.out, json::to_string_pretty(&report)).expect("report written");
    println!("wrote {}", opts.out);
    if !all_ok {
        eprintln!(
            "ERROR: fleet aggregates diverged across threads/shards, allocated per chip, \
             or blew the time budget"
        );
        std::process::exit(1);
    }
}
