//! Fleet benchmark: millions of chips through the sharded constant-memory
//! streaming reducer, with the determinism claims enforced.
//!
//! Six gates, any failure exits non-zero:
//!
//! 1. **Cross-thread/shard determinism** — the deterministic aggregate
//!    block of [`statobd::FleetReport`] must render to bit-identical JSON
//!    across a thread × shard matrix (1/2/8 threads × 1/2/5 shards).
//! 2. **Constant memory** — every run must report
//!    `workspaces_created <= shards`: the hot path allocates one reusable
//!    workspace per shard and nothing per chip.
//! 3. **Time budget** (full mode only) — the 10⁶-chip headline run must
//!    finish inside [`HEADLINE_BUDGET_S`].
//! 4. **Tiled-vs-scalar agreement** — at the default lane width the fleet
//!    aggregates must match the forced width-1 (scalar reference) run:
//!    discrete counts exactly, the exact per-chip extremes within
//!    [`DIVERGENCE_GATE`] relative, sketch quantiles in the same bin.
//! 5. **Tiled speedup** (full mode, lane width > 1) — single-thread tiled
//!    chips/s must beat the scalar path on **every** mission profile,
//!    and by ≥ [`W8_SPEEDUP_BAR`]× on the datacenter profile at lane
//!    width 8. Both sides are re-measured interleaved (min across up to
//!    [`MAX_ATTEMPTS`] attempts, as BENCH_sweeps does) so noise
//!    converges out but a real regression stays.
//! 6. **Spares determinism** — the same fleet with one spare block
//!    (`spares: 1`) must hold the scalar dispatch (grouped composition
//!    routes around the lane kernels) and render bit-identical
//!    aggregates across the full thread × shard matrix *and* across
//!    forced lane widths, and must never exceed the failure budget more
//!    often than the weakest-link fleet.
//!
//! ```text
//! cargo run --release -p statobd-bench --bin fleet -- \
//!     [--quick] [--out BENCH_fleet.json] [--chips 1000000] [--threads N]
//! ```
//!
//! Output schema (one JSON object):
//!
//! ```text
//! { "lanes": "...", "rows": [ { "design": "two_block", "scenario":
//!   "throughput", "profile": "datacenter", "chips": 100000, "threads": 1,
//!   "shards": 1, "run_s": ..., "chips_per_s": ..., "exceed_budget": ...,
//!   "deterministic": true, "workspaces_ok": true }, ... ],
//!   "speedup": [ { "profile": "datacenter", "chips": 100000,
//!   "lane_width": 8, "scalar_chips_per_s": ..., "tiled_chips_per_s": ...,
//!   "speedup": ..., "max_rel_divergence": ..., "within_gate": true },
//!   ... ] }
//! ```

use statobd::{run_fleet, AnalysisSpec, FleetAggregates, FleetConfig, FleetReport, Session};
use statobd_core::{BlockSpec, ChipSpec};
use statobd_device::ClosedFormTech;
use statobd_manager::MissionProfile;
use statobd_num::impl_json_struct;
use statobd_num::json;
use statobd_num::simd::{self, LaneWidth};

/// Wall-clock budget for the full-mode headline run (10⁶ chips).
const HEADLINE_BUDGET_S: f64 = 120.0;

/// Thread × shard determinism matrix.
const THREAD_MATRIX: [usize; 3] = [1, 2, 8];
const SHARD_MATRIX: [usize; 3] = [1, 2, 5];

/// Minimum tiled/scalar throughput ratio on the datacenter profile at
/// lane width 8 — the cross-chip tiling headline claim.
const W8_SPEEDUP_BAR: f64 = 2.5;

/// Relative gate on the exact aggregate extremes between the tiled and
/// the scalar run (the lane kernels' per-chip error budget).
const DIVERGENCE_GATE: f64 = 1e-12;

/// Interleaved re-measure cap for the speedup rows.
const MAX_ATTEMPTS: usize = 12;

/// One measurement row.
#[derive(Debug, Clone)]
struct FleetRow {
    design: String,
    scenario: String,
    profile: String,
    chips: u64,
    threads: u64,
    shards: u64,
    run_s: f64,
    chips_per_s: f64,
    /// Chips over the failure-probability budget at mission end (a
    /// deterministic aggregate — identical across rows of one scenario).
    exceed_budget: u64,
    /// Aggregates bit-identical to the scenario's reference run.
    deterministic: bool,
    /// `workspaces_created <= shards` held for this run.
    workspaces_ok: bool,
}

impl_json_struct!(FleetRow {
    design,
    scenario,
    profile,
    chips,
    threads,
    shards,
    run_s,
    chips_per_s,
    exceed_budget,
    deterministic,
    workspaces_ok
});

/// One scalar-vs-tiled speedup row (single thread, one mission profile).
#[derive(Debug, Clone)]
struct SpeedupRow {
    profile: String,
    chips: u64,
    /// Lanes per chip tile on the tiled side (the scalar side is always
    /// the forced width-1 reference path).
    lane_width: u64,
    scalar_chips_per_s: f64,
    tiled_chips_per_s: f64,
    /// `tiled_chips_per_s / scalar_chips_per_s`.
    speedup: f64,
    /// Max relative difference across the exact aggregate extremes
    /// (infinite if any discrete count differs).
    max_rel_divergence: f64,
    /// Counts exact, extremes within [`DIVERGENCE_GATE`], quantiles in
    /// the same sketch bin.
    within_gate: bool,
}

impl_json_struct!(SpeedupRow {
    profile,
    chips,
    lane_width,
    scalar_chips_per_s,
    tiled_chips_per_s,
    speedup,
    max_rel_divergence,
    within_gate
});

/// The whole report (`BENCH_fleet.json`).
#[derive(Debug, Clone)]
struct Report {
    /// SIMD lane dispatch active during the run.
    lanes: String,
    rows: Vec<FleetRow>,
    speedup: Vec<SpeedupRow>,
}

impl_json_struct!(Report {
    lanes,
    rows,
    speedup
});

/// Tiled-vs-scalar aggregate divergence: `None` if any discrete count
/// differs or a sketch quantile landed in a different bin (rendered as
/// an infinite divergence by the caller); otherwise the max relative
/// difference over the exact per-chip extremes.
fn aggregates_divergence(tiled: &FleetAggregates, scalar: &FleetAggregates) -> Option<f64> {
    if tiled.exceed_budget != scalar.exceed_budget
        || tiled.censored_low != scalar.censored_low
        || tiled.censored_high != scalar.censored_high
        || tiled.weakest_counts != scalar.weakest_counts
    {
        return None;
    }
    let rel = |a: f64, b: f64| {
        if a == b {
            0.0
        } else {
            (a - b).abs() / b.abs().max(f64::MIN_POSITIVE)
        }
    };
    // Quantiles pass through the log-sketch's binning: a sub-gate per-chip
    // difference either leaves them bit-identical or moves one whole bin,
    // so "same bin" is the right equality there (1e-9 spans rounding in
    // the pow/log round-trip but never a bin).
    for (a, b) in tiled
        .lifetime_quantiles_s
        .iter()
        .zip(&scalar.lifetime_quantiles_s)
        .chain(
            tiled
                .p_mission_quantiles
                .iter()
                .zip(&scalar.p_mission_quantiles),
        )
    {
        if rel(*a, *b) > 1e-9 {
            return None;
        }
    }
    Some(
        [
            rel(tiled.lifetime_min_s, scalar.lifetime_min_s),
            rel(tiled.lifetime_max_s, scalar.lifetime_max_s),
            rel(tiled.p_mission_min, scalar.p_mission_min),
            rel(tiled.p_mission_max, scalar.p_mission_max),
        ]
        .into_iter()
        .fold(0.0, f64::max),
    )
}

struct Options {
    out: String,
    quick: bool,
    /// Headline fleet size.
    chips: u64,
    /// Thread override for the throughput/headline rows (0 = all cores).
    threads: usize,
}

fn parse_options() -> Options {
    let mut opts = Options {
        out: "BENCH_fleet.json".to_string(),
        quick: false,
        chips: 1_000_000,
        threads: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--out" => opts.out = value("--out"),
            "--chips" => {
                opts.chips = value("--chips").parse().unwrap_or_else(|_| {
                    eprintln!("bad chip count");
                    std::process::exit(2);
                });
                if opts.chips == 0 {
                    eprintln!("--chips: need at least one chip");
                    std::process::exit(2);
                }
            }
            "--threads" => {
                opts.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("bad thread count");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// The benchmark design: a hot two-block chip over a 10×10 correlation
/// grid — small enough that the per-chip hot path, not the model build,
/// dominates, like a production fleet sweep over a compiled model.
fn bench_session() -> Session {
    let mut chip = ChipSpec::new();
    chip.add_block(
        BlockSpec::new(
            "core",
            60_000.0,
            60_000,
            368.15,
            1.2,
            vec![(0, 0.3), (1, 0.3), (11, 0.4)],
        )
        .expect("bench block is valid"),
    )
    .expect("bench chip accepts blocks");
    chip.add_block(
        BlockSpec::new("cache", 140_000.0, 140_000, 341.15, 1.2, vec![(55, 1.0)])
            .expect("bench block is valid"),
    )
    .expect("bench chip accepts blocks");
    Session::build(&AnalysisSpec::chip(chip).with_grid_side(10)).expect("bench model compiles")
}

fn config(
    chips: u64,
    profile: MissionProfile,
    threads: usize,
    shards: Option<usize>,
) -> FleetConfig {
    FleetConfig {
        chips,
        profile,
        threads: (threads > 0).then_some(threads),
        shards,
        ..FleetConfig::default()
    }
}

fn row(report: &FleetReport, scenario: &str, profile: &str, deterministic: bool) -> FleetRow {
    FleetRow {
        design: "two_block".to_string(),
        scenario: scenario.to_string(),
        profile: profile.to_string(),
        chips: report.aggregates.chips,
        threads: report.threads,
        shards: report.shards,
        run_s: report.run_s,
        chips_per_s: report.chips_per_s,
        exceed_budget: report.aggregates.exceed_budget,
        deterministic,
        workspaces_ok: report.workspaces_created <= report.shards,
    }
}

fn print_row(r: &FleetRow) {
    println!(
        "  {:<12} {:<13} chips={:<8} t={} s={}  {:>7.3}s  {:>9.0} chips/s  {}{}",
        r.scenario,
        r.profile,
        r.chips,
        r.threads,
        r.shards,
        r.run_s,
        r.chips_per_s,
        if r.deterministic { "ok" } else { "DIVERGED" },
        if r.workspaces_ok { "" } else { " ALLOCATING" }
    );
}

fn main() {
    let opts = parse_options();
    let session = bench_session();
    let analysis = session.analysis();
    let tech = ClosedFormTech::nominal_45nm();
    let mut rows = Vec::new();
    let mut all_ok = true;

    // Gate 1+2 — the determinism matrix: one fleet, every thread × shard
    // combination, aggregates compared bit-for-bit as compact JSON.
    let det_chips: u64 = if opts.quick { 2_000 } else { 20_000 };
    println!("determinism matrix ({det_chips} chips):");
    let mut reference: Option<String> = None;
    for &threads in &THREAD_MATRIX {
        for &shards in &SHARD_MATRIX {
            let report = run_fleet(
                analysis,
                &tech,
                &config(
                    det_chips,
                    MissionProfile::datacenter(),
                    threads,
                    Some(shards),
                ),
            )
            .expect("fleet runs");
            let rendered = json::to_string(&report.aggregates);
            let deterministic = match &reference {
                None => {
                    reference = Some(rendered);
                    true
                }
                Some(r) => r == &rendered,
            };
            let r = row(&report, "determinism", "datacenter", deterministic);
            all_ok &= r.deterministic && r.workspaces_ok;
            print_row(&r);
            rows.push(r);
        }
    }

    // Gate 6 — the redundancy-aware scenario: the same fleet with one
    // spare over the chip's blocks. Grouped runs force the scalar
    // dispatch internally, so the aggregates must be bit-identical not
    // only across the thread × shard matrix but also across *forced
    // lane widths* — the forced width alternates across the matrix to
    // prove it. Any divergence past DIVERGENCE_GATE exits non-zero (in
    // practice the comparison is bit-exact).
    let spares_chips: u64 = if opts.quick { 2_000 } else { 20_000 };
    println!("spares scenario ({spares_chips} chips, 1 spare):");
    let mut spares_reference: Option<FleetReport> = None;
    for &threads in &THREAD_MATRIX {
        for (i, &shards) in SHARD_MATRIX.iter().enumerate() {
            let forced = if (threads + i) % 2 == 0 {
                Some(LaneWidth::W1)
            } else {
                None
            };
            simd::force_width(forced);
            let report = run_fleet(
                analysis,
                &tech,
                &FleetConfig {
                    spares: 1,
                    ..config(
                        spares_chips,
                        MissionProfile::datacenter(),
                        threads,
                        Some(shards),
                    )
                },
            )
            .expect("spares fleet runs");
            simd::force_width(None);
            if report.lane_width != 1 {
                eprintln!("ERROR: spares run did not hold the scalar dispatch");
                all_ok = false;
            }
            let deterministic = match &spares_reference {
                None => {
                    spares_reference = Some(report.clone());
                    true
                }
                Some(reference) => {
                    let bit_identical = json::to_string(&reference.aggregates)
                        == json::to_string(&report.aggregates);
                    let divergence =
                        aggregates_divergence(&report.aggregates, &reference.aggregates)
                            .unwrap_or(f64::INFINITY);
                    if divergence > DIVERGENCE_GATE {
                        eprintln!(
                            "ERROR: spares aggregates diverged across the width/layout \
                             matrix (max rel {divergence:.3e}, gate {DIVERGENCE_GATE:.0e})"
                        );
                    }
                    bit_identical && divergence <= DIVERGENCE_GATE
                }
            };
            let r = row(&report, "spares", "datacenter", deterministic);
            all_ok &= r.deterministic && r.workspaces_ok;
            print_row(&r);
            rows.push(r);
        }
    }
    // The spare must matter: a fleet that tolerates one block failure
    // exceeds the budget no more often than the weakest-link fleet.
    if let (Some(spares), Some(_)) = (&spares_reference, &reference) {
        let wl_exceed = rows
            .iter()
            .find(|r| r.scenario == "determinism")
            .map_or(0, |r| r.exceed_budget);
        if spares_chips == det_chips && spares.aggregates.exceed_budget > wl_exceed {
            eprintln!(
                "ERROR: spares fleet exceeds the budget more often ({}) than weakest-link ({})",
                spares.aggregates.exceed_budget, wl_exceed
            );
            all_ok = false;
        }
    }

    // Per-profile throughput at a moderate fleet size.
    let prof_chips: u64 = if opts.quick { 5_000 } else { 100_000 };
    println!("profile throughput ({prof_chips} chips):");
    for profile in MissionProfile::all() {
        let name = profile.name();
        let report = run_fleet(
            analysis,
            &tech,
            &config(prof_chips, profile, opts.threads, None),
        )
        .expect("fleet runs");
        let r = row(&report, "throughput", name, true);
        all_ok &= r.workspaces_ok;
        print_row(&r);
        rows.push(r);
    }

    // Gates 4+5 — scalar vs tiled per mission profile, single thread.
    // Skipped when the default dispatch is already width 1 (forced scalar
    // CI runs): both sides would time the identical path and the ≥1×
    // gate would be a coin flip on noise.
    let mut speedup_rows = Vec::new();
    let default_width = simd::active_width();
    if default_width.lanes() > 1 {
        let sp_chips: u64 = if opts.quick { 5_000 } else { 100_000 };
        println!("scalar vs tiled, single thread ({sp_chips} chips):");
        for profile in MissionProfile::all() {
            let name = profile.name();
            let cfg = config(sp_chips, profile, 1, None);
            let run_at = |w: Option<LaneWidth>| {
                simd::force_width(w);
                let report = run_fleet(analysis, &tech, &cfg).expect("fleet runs");
                simd::force_width(None);
                report
            };
            let mut scalar = run_at(Some(LaneWidth::W1));
            let mut tiled = run_at(None);
            // Interleaved re-measure, keeping each path's best run: noise
            // converges out, a real regression stays. The datacenter row
            // additionally chases the width-8 headline bar.
            let bar = if name == "datacenter" && default_width.lanes() == 8 {
                W8_SPEEDUP_BAR
            } else {
                1.0
            };
            let mut attempts = 0;
            while tiled.chips_per_s < bar * scalar.chips_per_s && attempts < MAX_ATTEMPTS {
                let s = run_at(Some(LaneWidth::W1));
                if s.chips_per_s > scalar.chips_per_s {
                    scalar = s;
                }
                let t = run_at(None);
                if t.chips_per_s > tiled.chips_per_s {
                    tiled = t;
                }
                attempts += 1;
            }
            let divergence = aggregates_divergence(&tiled.aggregates, &scalar.aggregates);
            let max_rel_divergence = divergence.unwrap_or(f64::INFINITY);
            let within_gate = divergence.is_some_and(|d| d <= DIVERGENCE_GATE);
            let row = SpeedupRow {
                profile: name.to_string(),
                chips: sp_chips,
                lane_width: tiled.lane_width,
                scalar_chips_per_s: scalar.chips_per_s,
                tiled_chips_per_s: tiled.chips_per_s,
                speedup: tiled.chips_per_s / scalar.chips_per_s.max(1e-12),
                max_rel_divergence,
                within_gate,
            };
            println!(
                "  {:<13} w={}  scalar {:>9.0} chips/s  tiled {:>9.0} chips/s  {:.2}x  {}",
                row.profile,
                row.lane_width,
                row.scalar_chips_per_s,
                row.tiled_chips_per_s,
                row.speedup,
                if row.within_gate { "agree" } else { "DIVERGED" }
            );
            if !row.within_gate {
                eprintln!(
                    "ERROR: {name}: tiled aggregates diverged from scalar \
                     (max rel {max_rel_divergence:.3e}, gate {DIVERGENCE_GATE:.0e})"
                );
                all_ok = false;
            }
            if !opts.quick && row.speedup < bar {
                eprintln!(
                    "ERROR: {name}: tiled {:.0} chips/s is below {bar}x the scalar \
                     {:.0} chips/s ({:.2}x)",
                    row.tiled_chips_per_s, row.scalar_chips_per_s, row.speedup
                );
                all_ok = false;
            }
            speedup_rows.push(row);
        }
    } else {
        println!("scalar vs tiled: skipped (default dispatch is width 1)");
    }

    // Gate 3 — the headline: a production-scale fleet, all cores.
    let headline_chips = if opts.quick { 10_000 } else { opts.chips };
    println!("headline ({headline_chips} chips):");
    let report = run_fleet(
        analysis,
        &tech,
        &config(
            headline_chips,
            MissionProfile::datacenter(),
            opts.threads,
            None,
        ),
    )
    .expect("fleet runs");
    let r = row(&report, "headline", "datacenter", true);
    all_ok &= r.workspaces_ok;
    if !opts.quick && r.run_s > HEADLINE_BUDGET_S {
        eprintln!(
            "ERROR: headline run took {:.1}s, budget {HEADLINE_BUDGET_S}s",
            r.run_s
        );
        all_ok = false;
    }
    print_row(&r);
    rows.push(r);

    let report = Report {
        lanes: statobd_num::simd::dispatch_label(),
        rows,
        speedup: speedup_rows,
    };
    std::fs::write(&opts.out, json::to_string_pretty(&report)).expect("report written");
    println!("wrote {}", opts.out);
    if !all_ok {
        eprintln!(
            "ERROR: fleet aggregates diverged across threads/shards or lane widths, \
             allocated per chip, missed the tiled speedup bar, or blew the time budget"
        );
        std::process::exit(1);
    }
}
