//! Reproduces **Table III**: lifetime-estimation accuracy and runtime of
//! `st_fast`, `st_MC`, `hybrid` and `guard` against the Monte-Carlo
//! reference, for designs C1–C6 at the 1- and 10-faults-per-million
//! criteria.
//!
//! Run with `--quick` to use fewer Monte-Carlo chips and skip the largest
//! designs (useful for smoke testing).

use statobd_bench::*;
use statobd_circuits::{build_design, Benchmark, DesignConfig};
use statobd_core::{MonteCarloConfig, StMcConfig};
use statobd_device::ClosedFormTech;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let designs: Vec<Benchmark> = if quick {
        vec![Benchmark::C1, Benchmark::C2]
    } else {
        Benchmark::table_iii().to_vec()
    };
    let mc_chips = if quick { 200 } else { 1000 };

    println!("== Table III: accuracy and runtime vs Monte-Carlo ==");
    println!(
        "   (rho_dist = {}, {}x{} correlation grid, {} MC chips)",
        statobd_core::params::DEFAULT_CORRELATION_DISTANCE,
        statobd_core::params::DEFAULT_GRID_SIDE,
        statobd_core::params::DEFAULT_GRID_SIDE,
        mc_chips
    );
    println!();

    let tech = ClosedFormTech::nominal_45nm();
    let config = DesignConfig::default();

    // All Table III designs share the die size and grid; the thickness
    // model (PCA) is the paper's shared pre-processing step.
    let first = build_design(designs[0], &config).expect("design construction");
    let model = thickness_model_for(&first, statobd_core::params::DEFAULT_CORRELATION_DISTANCE);

    println!(
        "{:<5} {:>9} | {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8}",
        "ckt.",
        "#device",
        "st_fast",
        "st_MC",
        "hybrid",
        "guard",
        "st_fast",
        "st_MC",
        "hybrid",
        "guard"
    );
    println!(
        "{:<5} {:>9} | {:^35} | {:^35}",
        "", "", "err% @ 1/million", "err% @ 10/million"
    );
    println!("{}", "-".repeat(100));

    let mut rows = Vec::new();
    for &bench in &designs {
        let built = build_design(bench, &config).expect("design construction");
        let analysis = analyze(&built, &model, &tech).expect("characterization");

        let mc = run_mc(
            &analysis,
            MonteCarloConfig {
                n_chips: mc_chips,
                ..Default::default()
            },
        )
        .expect("MC");
        let fast = run_st_fast(&analysis).expect("st_fast");
        let smc = run_st_mc(&analysis, StMcConfig::default()).expect("st_MC");
        let (hybrid_build_s, hybrid) = run_hybrid(&analysis).expect("hybrid");
        let guard = run_guard(&analysis).expect("guard");

        let (f1, f10) = fast.error_pct(&mc);
        let (s1, s10) = smc.error_pct(&mc);
        let (h1, h10) = hybrid.error_pct(&mc);
        let (g1, g10) = guard.error_pct(&mc);
        println!(
            "{:<5} {:>9} | {:>8.2} {:>8.2} {:>8.2} {:>8.1} | {:>8.2} {:>8.2} {:>8.2} {:>8.1}",
            bench.name(),
            built.spec.total_devices(),
            f1,
            s1,
            h1,
            g1,
            f10,
            s10,
            h10,
            g10
        );
        rows.push((bench, built, fast, smc, hybrid, hybrid_build_s, guard, mc));
    }

    println!();
    println!("== Runtime (s) / speed-up w.r.t. MC ==");
    println!(
        "{:<5} | {:>10} {:>9} | {:>10} {:>9} | {:>12} {:>11} | {:>10}",
        "ckt.", "st_fast", "speedup", "st_MC", "speedup", "hybrid(query)", "speedup", "MC"
    );
    println!("{}", "-".repeat(95));
    for (bench, _built, fast, smc, hybrid, hybrid_build_s, _guard, mc) in &rows {
        println!(
            "{:<5} | {:>10} {:>8.0}x | {:>10} {:>8.0}x | {:>12} {:>10.0}x | {:>10}",
            bench.name(),
            fmt_seconds(fast.runtime_s),
            mc.runtime_s / fast.runtime_s,
            fmt_seconds(smc.runtime_s),
            mc.runtime_s / smc.runtime_s,
            fmt_seconds(hybrid.runtime_s),
            mc.runtime_s / hybrid.runtime_s,
            fmt_seconds(mc.runtime_s),
        );
        let _ = hybrid_build_s;
    }
    println!();
    println!("== Lifetime estimates (MC reference) ==");
    for (bench, _built, _fast, _smc, _hybrid, hybrid_build_s, guard, mc) in &rows {
        println!(
            "{:<5} 1/million: {}   10/million: {}   guard 1/million: {}   (hybrid table build: {})",
            bench.name(),
            fmt_lifetime(mc.t_1pm),
            fmt_lifetime(mc.t_10pm),
            fmt_lifetime(guard.t_1pm),
            fmt_seconds(*hybrid_build_s),
        );
    }
    println!();
    println!("Expected shape (paper): st_fast/st_MC/hybrid within ~1-3% of MC;");
    println!("guard ~40-60% pessimistic; st_* runtimes roughly flat in device count");
    println!("while MC grows with devices; hybrid queries 3-5 orders faster than MC.");
}
