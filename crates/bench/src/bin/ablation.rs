//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! 1. integration resolution `l0` (the paper claims `l0 = 10` suffices),
//! 2. `u`-domain width in sigmas,
//! 3. χ² (Yuan–Bentler) vs exact Imhof evaluation of the sample-variance
//!    distribution,
//! 4. the fully closed-form `st_closed` engine vs numerical `st_fast`,
//! 5. multi-breakdown (SBD-tolerant) failure criteria.

use statobd_bench::*;
use statobd_circuits::{build_design, Benchmark, DesignConfig};
use statobd_core::{
    solve_lifetime, MonteCarlo, MonteCarloConfig, StClosed, StFast, StFastConfig, StMc, StMcConfig,
    VarianceMethod,
};
use statobd_device::ClosedFormTech;

fn main() {
    let built = build_design(Benchmark::C3, &DesignConfig::default()).expect("design");
    let model = thickness_model_for(&built, 0.5);
    let tech = ClosedFormTech::nominal_45nm();
    let analysis = analyze(&built, &model, &tech).expect("characterization");
    let p_target = statobd_core::params::ONE_PER_MILLION;

    // Reference: very fine quadrature.
    let mut reference = StFast::new(
        &analysis,
        StFastConfig {
            l0: 400,
            u_width_sigmas: 8.0,
            ..Default::default()
        },
    );
    let t_ref = solve_lifetime(&mut reference, p_target, BRACKET).expect("reference");

    println!("== Ablation 1: integration sub-domains l0 (vs l0 = 400 reference) ==");
    println!("{:>6} {:>14} {:>10}", "l0", "t_1pm (s)", "error");
    for l0 in [2usize, 4, 6, 10, 20, 50, 100] {
        let mut e = StFast::new(
            &analysis,
            StFastConfig {
                l0,
                ..Default::default()
            },
        );
        let t = solve_lifetime(&mut e, p_target, BRACKET).expect("solve");
        println!(
            "{:>6} {:>14.5e} {:>9.3}%",
            l0,
            t,
            100.0 * ((t - t_ref) / t_ref).abs()
        );
    }
    println!("(paper: l0 = 10 'is already a reasonable number')");

    println!();
    println!("== Ablation 2: u-domain width (sigmas), l0 = 10 ==");
    println!("{:>8} {:>14} {:>10}", "width", "t_1pm (s)", "error");
    for width in [2.0, 3.0, 4.0, 6.0, 8.0] {
        let mut e = StFast::new(
            &analysis,
            StFastConfig {
                l0: 10,
                u_width_sigmas: width,
                ..Default::default()
            },
        );
        let t = solve_lifetime(&mut e, p_target, BRACKET).expect("solve");
        println!(
            "{:>8.1} {:>14.5e} {:>9.3}%",
            width,
            t,
            100.0 * ((t - t_ref) / t_ref).abs()
        );
    }

    println!();
    println!("== Ablation 3: chi-square (Yuan-Bentler) vs exact Imhof f_v ==");
    for l0 in [10usize, 50] {
        let mut chi = StFast::new(
            &analysis,
            StFastConfig {
                l0,
                ..Default::default()
            },
        );
        let mut imhof = StFast::new(
            &analysis,
            StFastConfig {
                l0,
                v_method: VarianceMethod::Imhof,
                ..Default::default()
            },
        );
        let t_chi = solve_lifetime(&mut chi, p_target, BRACKET).expect("chi2");
        let start = std::time::Instant::now();
        let t_imhof = solve_lifetime(&mut imhof, p_target, BRACKET).expect("imhof");
        let imhof_s = start.elapsed().as_secs_f64();
        println!(
            "l0 = {l0:>3}: chi2 {t_chi:.5e} s vs imhof {t_imhof:.5e} s  (gap {:.3}%, imhof solve {:.0} ms)",
            100.0 * ((t_chi - t_imhof) / t_imhof).abs(),
            imhof_s * 1e3
        );
    }
    println!("(the cheap two-moment fit costs <1% accuracy — the paper's trade-off)");

    println!();
    println!("== Ablation 4: closed-form st_closed vs numerical st_fast ==");
    let mut closed = StClosed::new(&analysis);
    let t_closed = solve_lifetime(&mut closed, p_target, BRACKET).expect("closed");
    println!(
        "st_closed t_1pm = {:.5e} s, gap to reference {:.3}%",
        t_closed,
        100.0 * ((t_closed - t_ref) / t_ref).abs()
    );

    println!();
    println!("== Ablation 5: multi-breakdown failure criteria (SBD-tolerant designs) ==");
    let st_mc = StMc::new(&analysis, StMcConfig::default()).expect("st_MC");
    let mc = MonteCarlo::build(
        &analysis,
        MonteCarloConfig {
            n_chips: 1000,
            ..Default::default()
        },
    )
    .expect("MC");
    println!("{:>4} {:>16} {:>16}", "k", "P(N>=k) st_MC", "P(N>=k) MC");
    let t_probe = 4.0 * t_ref;
    for k in 1..=4u32 {
        let p_smc = st_mc.failure_probability_multi(t_probe, k).expect("st_MC");
        let p_mc = mc.failure_probability_multi(t_probe, k).expect("MC");
        println!("{k:>4} {p_smc:>16.4e} {p_mc:>16.4e}");
    }
    println!("(at t = 4x the 1-ppm lifetime; a design tolerating one extra breakdown");
    println!(" gains orders of magnitude in failure probability)");
}
