//! Serve benchmark: the build/serve split, measured — emitting
//! machine-readable `BENCH_serve.json`.
//!
//! The runner compiles the C3 hybrid spec cold into a scratch
//! [`ArtifactCache`], re-opens it warm (the load must come from the
//! cache and skip the eigendecomposition / table construction
//! entirely), verifies the two sessions answer a committed query sweep
//! **bit-identically**, then times sustained queries two ways: direct
//! [`Session::p_at`] calls and full request/reply round trips through
//! [`serve_lines`] (JSON parse + dispatch + JSON print per query).
//!
//! ```text
//! cargo run --release -p statobd-bench --bin serve -- \
//!     [--quick] [--out BENCH_serve.json] [--design C3] \
//!     [--threads 1] [--queries 20000]
//! ```
//!
//! The run exits non-zero when the warm open misses the cache, the warm
//! and cold sweeps diverge, or (outside `--quick`) the warm/cold
//! speedup falls below 10x. Output schema (one JSON object):
//!
//! ```text
//! { "design": "C3", "engine": "hybrid", "threads": 1,
//!   "cold_build_s": ..., "warm_load_s": ..., "speedup": ...,
//!   "warm_source": "cache", "bit_identical": true, "queries": 20000,
//!   "session_queries_per_s": ..., "serve_requests_per_s": ...,
//!   "speedup_ok": true }
//! ```

use statobd::{serve_lines, AnalysisSpec, ArtifactCache, EngineKind, ServeConfig, Session};
use statobd_circuits::Benchmark;
use statobd_num::impl_json_struct;
use statobd_num::json::ToJson;
use std::io::Cursor;
use std::time::Instant;

/// Minimum warm/cold speedup the full run enforces; `--quick` designs
/// are too small for the ratio to be stable, so they only record it.
const MIN_SPEEDUP: f64 = 10.0;
/// Committed query sweep for the bit-equality check (log-spaced).
const SWEEP: (f64, f64, usize) = (1e6, 1e12, 64);

/// The whole report (`BENCH_serve.json`).
#[derive(Debug, Clone)]
struct ServeReport {
    design: String,
    engine: String,
    /// Worker threads the cold build was pinned to (0 = all cores).
    threads: usize,
    /// Cold compile seconds (eigendecomposition + hybrid tables).
    cold_build_s: f64,
    /// Warm open seconds (artifact deserialization + validation only).
    warm_load_s: f64,
    /// `cold_build_s / warm_load_s`.
    speedup: f64,
    /// Where the warm open came from (must be `"cache"`).
    warm_source: String,
    /// Whether the warm session reproduced the cold sweep bit for bit.
    bit_identical: bool,
    /// Sustained-query loop length.
    queries: u64,
    /// Direct `Session::p_at` queries per second on the warm session.
    session_queries_per_s: f64,
    /// Full `serve_lines` round trips per second (parse + query + print).
    serve_requests_per_s: f64,
    /// Whether the speedup criterion held (always recorded; only
    /// enforced outside `--quick`).
    speedup_ok: bool,
}

impl_json_struct!(ServeReport {
    design,
    engine,
    threads,
    cold_build_s,
    warm_load_s,
    speedup,
    warm_source,
    bit_identical,
    queries,
    session_queries_per_s,
    serve_requests_per_s,
    speedup_ok
});

struct Options {
    out: String,
    design: Benchmark,
    threads: usize,
    queries: usize,
    quick: bool,
}

fn parse_options() -> Options {
    let mut opts = Options {
        out: "BENCH_serve.json".to_string(),
        design: Benchmark::C3,
        threads: 1,
        queries: 20_000,
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => {
                opts.quick = true;
                opts.design = Benchmark::C1;
                opts.queries = 2_000;
            }
            "--out" => opts.out = value("--out"),
            "--design" => {
                opts.design = Benchmark::parse(&value("--design")).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                opts.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("bad thread count");
                    std::process::exit(2);
                });
            }
            "--queries" => {
                opts.queries = value("--queries").parse().unwrap_or_else(|_| {
                    eprintln!("bad query count");
                    std::process::exit(2);
                });
                if opts.queries == 0 {
                    eprintln!("--queries: need at least one query");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Log-spaced times over the committed sweep bracket.
fn sweep_times() -> Vec<f64> {
    let (t_lo, t_hi, n) = SWEEP;
    let ratio = (t_hi / t_lo).ln();
    (0..n)
        .map(|i| t_lo * (ratio * i as f64 / (n - 1) as f64).exp())
        .collect()
}

fn main() {
    let opts = parse_options();
    let threads = (opts.threads > 0).then_some(opts.threads);
    let spec = AnalysisSpec::benchmark(opts.design)
        .with_engine(EngineKind::Hybrid)
        .with_threads(threads);

    // A scratch cache so the benchmark never reads (or pollutes) the
    // user's real artifact store.
    let scratch = std::env::temp_dir().join(format!("statobd-bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch cache dir");
    let cache = ArtifactCache::new(&scratch);

    // Cold: the first open compiles from scratch and persists the
    // artifact; warm: the second must deserialize it.
    let mut cold = Session::open(&spec, &cache).expect("cold open");
    let cold_build_s = cold.stats().build_s;
    assert_eq!(
        cold.stats().source.name(),
        "cold",
        "scratch cache was not empty"
    );
    let mut warm = Session::open(&spec, &cache).expect("warm open");
    let warm_load_s = warm.stats().build_s;
    let warm_source = warm.stats().source.name().to_string();
    let speedup = cold_build_s / warm_load_s.max(1e-12);

    // The committed sweep must be bit-identical across the two paths.
    let ts = sweep_times();
    let p_cold = cold.p_at_many(&ts).expect("cold sweep");
    let p_warm = warm.p_at_many(&ts).expect("warm sweep");
    let bit_identical = p_cold.len() == p_warm.len()
        && p_cold
            .iter()
            .zip(&p_warm)
            .all(|(a, b)| a.to_bits() == b.to_bits());

    // Sustained direct queries on the warm session.
    let query_start = Instant::now();
    let mut checksum = 0.0;
    for i in 0..opts.queries {
        checksum += warm.p_at(ts[i % ts.len()]).expect("query");
    }
    let query_s = query_start.elapsed().as_secs_f64();
    assert!(checksum.is_finite());

    // Full protocol round trips: open once from the warm cache, then
    // one p_at request per line. Request parsing, dispatch and reply
    // printing are all inside the timed region — this is what a serve
    // client actually observes per query.
    let mut script = format!(
        "{{\"op\": \"open\", \"session\": \"bench\", \"spec\": {}}}\n",
        spec.to_json().to_compact()
    );
    for i in 0..opts.queries {
        script.push_str(&format!(
            "{{\"op\": \"p_at\", \"session\": \"bench\", \"t_s\": {:e}}}\n",
            ts[i % ts.len()]
        ));
    }
    script.push_str("{\"op\": \"shutdown\"}\n");
    let config = ServeConfig {
        max_sessions: 2,
        cache: Some(ArtifactCache::new(&scratch)),
    };
    let mut replies = Vec::new();
    let serve_start = Instant::now();
    serve_lines(Cursor::new(script.as_bytes()), &mut replies, config).expect("serve loop");
    let serve_s = serve_start.elapsed().as_secs_f64();
    let reply_text = String::from_utf8(replies).expect("utf-8 replies");
    let all_ok = reply_text.lines().all(|l| l.contains("\"ok\":true"));

    let _ = std::fs::remove_dir_all(&scratch);

    let speedup_ok = speedup >= MIN_SPEEDUP && warm_source == "cache";
    let report = ServeReport {
        design: opts.design.name().to_string(),
        engine: EngineKind::Hybrid.name().to_string(),
        threads: opts.threads,
        cold_build_s,
        warm_load_s,
        speedup,
        warm_source: warm_source.clone(),
        bit_identical,
        queries: opts.queries as u64,
        session_queries_per_s: opts.queries as f64 / query_s.max(1e-12),
        serve_requests_per_s: (opts.queries + 2) as f64 / serve_s.max(1e-12),
        speedup_ok,
    };
    println!(
        "{} / {}: cold build {:.3}s, warm load {:.4}s  ({:.1}x, source {})",
        report.design, report.engine, cold_build_s, warm_load_s, speedup, warm_source
    );
    println!(
        "  sweep {}  |  {:.0} queries/s direct  |  {:.0} requests/s through serve",
        if bit_identical {
            "bit-identical"
        } else {
            "MISMATCH"
        },
        report.session_queries_per_s,
        report.serve_requests_per_s
    );
    std::fs::write(&opts.out, statobd_num::json::to_string_pretty(&report))
        .expect("report written");
    println!("wrote {}", opts.out);

    if warm_source != "cache" {
        eprintln!("ERROR: warm open did not come from the artifact cache");
        std::process::exit(1);
    }
    if !bit_identical {
        eprintln!("ERROR: warm session diverged from the cold build");
        std::process::exit(1);
    }
    if !all_ok {
        eprintln!("ERROR: a serve reply reported ok=false");
        std::process::exit(1);
    }
    if !opts.quick && !speedup_ok {
        eprintln!("ERROR: warm load speedup {speedup:.1}x is below {MIN_SPEEDUP}x");
        std::process::exit(1);
    }
}
