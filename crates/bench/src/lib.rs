//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every binary in this crate regenerates one table or figure of the
//! paper's evaluation; this library holds the shared plumbing: building
//! the thickness model for a design, timing engines, solving the
//! per-million lifetime criteria and formatting rows.

use statobd_circuits::BuiltDesign;
use statobd_core::{
    build_engine, solve_lifetime, ChipAnalysis, EngineSpec, GuardBand, GuardBandConfig,
    HybridConfig, HybridTables, MonteCarloConfig, Result as CoreResult, StMcConfig,
};
use statobd_device::ObdTechnology;
use statobd_variation::{CorrelationKernel, ThicknessModel, ThicknessModelBuilder, VarianceBudget};
use std::time::Instant;

pub mod timing;

/// Default lifetime search bracket (seconds).
pub const BRACKET: (f64, f64) = (1e6, 1e12);

/// Builds the Table II thickness model over a built design's grid with
/// relative correlation distance `rho`.
pub fn thickness_model_for(built: &BuiltDesign, rho: f64) -> ThicknessModel {
    ThicknessModelBuilder::new()
        .grid(built.grid)
        .nominal(statobd_core::params::NOMINAL_THICKNESS_NM)
        .budget(
            VarianceBudget::itrs_2008(statobd_core::params::NOMINAL_THICKNESS_NM)
                .expect("Table II budget is valid"),
        )
        .kernel(CorrelationKernel::Exponential { rel_distance: rho })
        .build()
        .expect("Table II model construction cannot fail")
}

/// Lifetime estimates of one method at the two per-million criteria plus
/// its runtime.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method abbreviation as used in the paper's tables.
    pub method: String,
    /// Lifetime (s) at 1 fault per million parts.
    pub t_1pm: f64,
    /// Lifetime (s) at 10 faults per million parts.
    pub t_10pm: f64,
    /// Wall-clock seconds spent (engine construction + both solves).
    pub runtime_s: f64,
}

impl MethodResult {
    /// Relative lifetime error (%) against a reference result.
    pub fn error_pct(&self, reference: &MethodResult) -> (f64, f64) {
        (
            100.0 * ((self.t_1pm - reference.t_1pm) / reference.t_1pm).abs(),
            100.0 * ((self.t_10pm - reference.t_10pm) / reference.t_10pm).abs(),
        )
    }
}

/// Times a closure that produces both per-million lifetimes.
fn timed(method: &str, f: impl FnOnce() -> CoreResult<(f64, f64)>) -> CoreResult<MethodResult> {
    let start = Instant::now();
    let (t_1pm, t_10pm) = f()?;
    Ok(MethodResult {
        method: method.to_string(),
        t_1pm,
        t_10pm,
        runtime_s: start.elapsed().as_secs_f64(),
    })
}

/// Runs any engine selected by an [`EngineSpec`] through the unified
/// factory: construction plus both per-million lifetime solves, timed.
pub fn run_engine(analysis: &ChipAnalysis, spec: &EngineSpec) -> CoreResult<MethodResult> {
    timed(spec.kind().name(), || {
        let mut e = build_engine(analysis, spec)?;
        Ok((
            solve_lifetime(e.as_mut(), statobd_core::params::ONE_PER_MILLION, BRACKET)?,
            solve_lifetime(e.as_mut(), statobd_core::params::TEN_PER_MILLION, BRACKET)?,
        ))
    })
}

/// Runs the `st_fast` method (engine construction + both solves).
pub fn run_st_fast(analysis: &ChipAnalysis) -> CoreResult<MethodResult> {
    run_engine(analysis, &EngineSpec::default())
}

/// Runs the `st_MC` method.
pub fn run_st_mc(analysis: &ChipAnalysis, config: StMcConfig) -> CoreResult<MethodResult> {
    run_engine(analysis, &EngineSpec::StMc(config))
}

/// Builds the hybrid tables (the one-time step) and then runs the
/// lookup-based method; returns `(build_seconds, query result)`.
pub fn run_hybrid(analysis: &ChipAnalysis) -> CoreResult<(f64, MethodResult)> {
    let start = Instant::now();
    let mut tables = HybridTables::build(analysis, HybridConfig::default())?;
    let build_s = start.elapsed().as_secs_f64();
    let result = timed("hybrid", || {
        Ok((
            solve_lifetime(&mut tables, statobd_core::params::ONE_PER_MILLION, BRACKET)?,
            solve_lifetime(&mut tables, statobd_core::params::TEN_PER_MILLION, BRACKET)?,
        ))
    })?;
    Ok((build_s, result))
}

/// Runs the guard-band corner method (closed form).
pub fn run_guard(analysis: &ChipAnalysis) -> CoreResult<MethodResult> {
    timed("guard", || {
        let g = GuardBand::new(analysis, GuardBandConfig::default())?;
        Ok((
            g.lifetime(statobd_core::params::ONE_PER_MILLION)?,
            g.lifetime(statobd_core::params::TEN_PER_MILLION)?,
        ))
    })
}

/// Runs the Monte-Carlo reference.
pub fn run_mc(analysis: &ChipAnalysis, config: MonteCarloConfig) -> CoreResult<MethodResult> {
    run_engine(analysis, &EngineSpec::MonteCarlo(config))
}

/// Characterizes a built design against a technology and thickness model.
pub fn analyze(
    built: &BuiltDesign,
    model: &ThicknessModel,
    tech: &dyn ObdTechnology,
) -> CoreResult<ChipAnalysis> {
    ChipAnalysis::new(built.spec.clone(), model.clone(), tech)
}

/// Compiles a benchmark design through the facade
/// [`AnalysisSpec`](statobd::AnalysisSpec)/[`Session`](statobd::Session)
/// path with relative correlation distance `rho` — the substrate
/// defaults match `DesignConfig::default()` plus the Table II model, so
/// the session's analysis is identical to the hand-assembled one. Use
/// `session.analysis()` to drive specific engines.
pub fn session_for(benchmark: statobd_circuits::Benchmark, rho: f64) -> statobd::Session {
    let mut spec = statobd::AnalysisSpec::benchmark(benchmark);
    spec.model.kernel = CorrelationKernel::Exponential { rel_distance: rho };
    statobd::Session::build(&spec).expect("benchmark designs compile")
}

/// Repetitions per [`measure_min`] measurement (the minimum is reported).
pub const MEASURE_REPS: usize = 5;

/// Measurements shorter than this are re-run in amplified batches so a
/// single repetition is long enough for the wall clock to resolve.
pub const MIN_MEASURE_S: f64 = 1e-3;

/// Times one code path for benchmarking: minimum over [`MEASURE_REPS`]
/// repetitions, each amplified to at least [`MIN_MEASURE_S`] of work,
/// returning seconds per single call of `f`. The first (probe) call also
/// serves as a warm-up for caches and lazy state inside `f`.
pub fn measure_min(mut f: impl FnMut()) -> f64 {
    let probe_start = Instant::now();
    f();
    let probe = probe_start.elapsed().as_secs_f64();
    let iters = if probe < MIN_MEASURE_S {
        ((MIN_MEASURE_S / probe.max(1e-9)).ceil() as usize).clamp(2, 10_000)
    } else {
        1
    };
    let mut best = probe;
    for _ in 0..MEASURE_REPS - 1 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

/// Formats seconds for table cells: sub-millisecond values in scientific
/// notation, the rest with three significant digits.
pub fn fmt_seconds(s: f64) -> String {
    if s < 1e-3 {
        format!("{s:.2e}")
    } else if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

/// Formats a lifetime in seconds with the year equivalent.
pub fn fmt_lifetime(t_s: f64) -> String {
    format!("{:.3e} s ({:.2} yr)", t_s, t_s / 3.156e7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_seconds_ranges() {
        assert!(fmt_seconds(1e-5).contains('e'));
        assert!(fmt_seconds(0.5).contains("ms"));
        assert!(fmt_seconds(2.0).contains('s'));
    }

    #[test]
    fn method_result_errors() {
        let a = MethodResult {
            method: "a".into(),
            t_1pm: 110.0,
            t_10pm: 90.0,
            runtime_s: 0.0,
        };
        let r = MethodResult {
            method: "r".into(),
            t_1pm: 100.0,
            t_10pm: 100.0,
            runtime_s: 0.0,
        };
        let (e1, e10) = a.error_pct(&r);
        assert!((e1 - 10.0).abs() < 1e-12);
        assert!((e10 - 10.0).abs() < 1e-12);
    }
}
