//! Quickstart: statistical OBD reliability of a small two-block chip.
//!
//! Builds the Table II process-variation model, describes a chip with a
//! hot core and a cool cache, and compares the statistical lifetime
//! estimate with the traditional guard-band corner.
//!
//! Run with: `cargo run --release --example quickstart`

use statobd::core::{
    params, BlockSpec, ChipSpec, GuardBand, GuardBandConfig, StFast, StFastConfig,
};
use statobd::{AnalysisSpec, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Chip description: two temperature-uniform blocks. The core runs
    //    at 95 C, the cache at 68 C; each block's devices are distributed
    //    over the correlation grids it overlaps.
    let mut spec = ChipSpec::new();
    spec.add_block(BlockSpec::new(
        "core",
        60_000.0, // normalized gate area A_j
        60_000,   // device count m_j
        368.15,   // worst-case block temperature (K)
        params::NOMINAL_VDD_V,
        vec![(0, 0.25), (1, 0.25), (10, 0.25), (11, 0.25)],
    )?)?;
    spec.add_block(BlockSpec::new(
        "cache",
        140_000.0,
        140_000,
        341.15,
        params::NOMINAL_VDD_V,
        vec![(44, 0.5), (45, 0.5)],
    )?)?;

    // 2. One declarative spec: the Table II process-variation model
    //    (2.2 nm nominal oxide, ITRS variance budget, exponential spatial
    //    correlation over a 10x10 grid), the 45 nm-class OBD technology
    //    and the paper's st_fast engine are all defaults.
    let aspec = AnalysisSpec::chip(spec).with_grid_side(10);

    // 3. Compile and solve the 1-fault-per-million lifetime. (For repeat
    //    runs, `Session::open` loads the compiled model from the artifact
    //    cache instead of rebuilding it.)
    let mut session = Session::build(&aspec)?;
    let t_stat = session.lifetime(params::ONE_PER_MILLION)?;
    let analysis = session.analysis();

    // 4. The traditional guard-band corner for comparison.
    let guard = GuardBand::new(analysis, GuardBandConfig::default())?;
    let t_guard = guard.lifetime(params::ONE_PER_MILLION)?;

    let years = |t: f64| t / 3.156e7;
    println!("1-fault-per-million lifetime estimates:");
    println!(
        "  statistical (st_fast): {t_stat:.3e} s = {:.2} years",
        years(t_stat)
    );
    println!(
        "  guard-band corner:     {t_guard:.3e} s = {:.2} years",
        years(t_guard)
    );
    println!(
        "  guard-band pessimism:  {:.0} %",
        100.0 * (1.0 - t_guard / t_stat)
    );

    // 5. Per-block contributions at the statistical lifetime: which block
    //    limits the chip? (Needs the concrete st_fast engine — the
    //    per-block breakdown is not part of the engine trait.)
    let breakdown = StFast::new(analysis, StFastConfig::default());
    println!("\nper-block failure probability at the chip lifetime:");
    for (j, block) in analysis.blocks().iter().enumerate() {
        let p = breakdown.block_failure_probability(j, t_stat)?;
        println!(
            "  {:<6} ({:>6.1} C): {:.2e}",
            block.spec().name(),
            block.spec().temperature_k() - 273.15,
            p
        );
    }
    Ok(())
}
