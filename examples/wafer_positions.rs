//! Wafer-level systematic variation: dies from different wafer positions
//! carry different deterministic thickness patterns (slanted or
//! bowl-shaped — the Cheng/Gupta-style extension the paper sketches in
//! Sec. II), and therefore different OBD reliability.
//!
//! This example sweeps a die across a bowl-shaped wafer pattern and shows
//! how the 1-ppm lifetime varies with wafer position — the kind of
//! position-dependent binning a product-engineering team would run.
//!
//! Run with: `cargo run --release --example wafer_positions`

use statobd::core::{params, BlockSpec, ChipSpec};
use statobd::variation::SystematicPattern;
use statobd::{AnalysisSpec, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simple one-hot-one-cool chip reused at every wafer position.
    let spec = {
        let mut s = ChipSpec::new();
        s.add_block(BlockSpec::new(
            "core",
            40_000.0,
            40_000,
            363.15,
            params::NOMINAL_VDD_V,
            vec![(0, 0.25), (1, 0.25), (8, 0.25), (9, 0.25)],
        )?)?;
        s.add_block(BlockSpec::new(
            "cache",
            60_000.0,
            60_000,
            341.15,
            params::NOMINAL_VDD_V,
            vec![(36, 0.5), (37, 0.5)],
        )?)?;
        s
    };

    // Wafer bowl: dies near the wafer edge grow thinner oxide. The die's
    // local gradient appears as a slanted pattern whose magnitude depends
    // on the wafer radius at the die position; the die-mean offset folds
    // into the nominal. Each position is one spec — the die-position
    // parameters live in `model.nominal_nm` and `model.systematic`.
    println!("1-ppm lifetime vs wafer position (bowl-shaped wafer pattern):");
    println!(
        "{:>14} {:>14} {:>14} {:>12}",
        "radial pos", "mean offset", "die gradient", "t_1pm (yr)"
    );
    let bowl_depth_nm = 0.020; // 20 pm center-to-edge on the wafer
    let mut lifetimes = Vec::new();
    for step in 0..=5 {
        let r = step as f64 / 5.0; // normalized wafer radius
                                   // Die-mean thickness offset: center of bowl is thinnest here
                                   // (r = 0 → −depth; r = 1 → 0), and the local gradient across one
                                   // die grows with radius.
        let mean_offset = bowl_depth_nm * (r * r - 1.0);
        let gradient = 2.0 * bowl_depth_nm * r * 0.1; // die is ~10% of wafer
        let mut aspec = AnalysisSpec::chip(spec.clone()).with_grid_side(8);
        aspec.model.nominal_nm = params::NOMINAL_THICKNESS_NM + mean_offset;
        aspec.model.budget = Some(statobd::variation::VarianceBudget::itrs_2008(
            params::NOMINAL_THICKNESS_NM,
        )?);
        aspec.model.systematic = SystematicPattern::Slanted {
            gx: gradient,
            gy: 0.0,
        };
        let mut session = Session::build(&aspec)?;
        let t = session.lifetime(params::ONE_PER_MILLION)?;
        lifetimes.push(t);
        println!(
            "{:>13.1}R {:>11.1} pm {:>11.1} pm {:>12.2}",
            r,
            mean_offset * 1e3,
            gradient * 1e3,
            t / 3.156e7
        );
    }
    let ratio = lifetimes.last().unwrap() / lifetimes.first().unwrap();
    println!("\nedge dies last {ratio:.2}x longer than center dies under this bowl");
    println!("(thinner oxide at the bowl minimum = shorter life; a wafer-position-");
    println!(" aware model avoids either scrapping good edge dies or shipping weak");
    println!(" center dies against a single wafer-blind spec)");
    Ok(())
}
