//! Fig. 1-style temperature maps of the bundled reference designs,
//! rendered as ASCII heat charts.
//!
//! Run with: `cargo run --release --example thermal_map`

use statobd::thermal::{
    alpha_ev6_floorplan, alpha_ev6_power, kelvin_to_celsius, many_core_floorplan, many_core_power,
    ThermalConfig, ThermalSolver,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let solver = ThermalSolver::new(ThermalConfig::default());

    println!("Alpha-processor-class design (15 functional modules):\n");
    let fp = alpha_ev6_floorplan()?;
    let pm = alpha_ev6_power()?;
    let map = solver.solve(&fp, &pm)?;
    println!("{}", map.ascii_render(64));
    println!(
        "min {:.1} C / mean {:.1} C / max {:.1} C  ({} leakage iterations)\n",
        kelvin_to_celsius(map.min_k()),
        kelvin_to_celsius(map.mean_k()),
        kelvin_to_celsius(map.max_k()),
        map.leakage_iterations()
    );

    println!("Many-core design, 5 of 16 cores active:\n");
    let fp = many_core_floorplan()?;
    let pm = many_core_power(&[1, 5, 6, 10, 14], 6.5)?;
    let map = solver.solve(&fp, &pm)?;
    println!("{}", map.ascii_render(64));
    println!(
        "min {:.1} C / mean {:.1} C / max {:.1} C",
        kelvin_to_celsius(map.min_k()),
        kelvin_to_celsius(map.mean_k()),
        kelvin_to_celsius(map.max_k())
    );

    println!("\nPer-core worst-case temperatures (the reliability model's input):");
    for k in 0..16 {
        let name = format!("core_{k}");
        let stats = map.block_stats(fp.block(&name).expect("core exists").rect());
        print!("{:>7.1}", kelvin_to_celsius(stats.max_k));
        if k % 4 == 3 {
            println!();
        }
    }
    Ok(())
}
