//! Device-level stress-to-breakdown simulation (the physics behind the
//! paper's Fig. 3 and the Weibull abstraction of eq. 4).
//!
//! Simulates several devices under accelerated stress, prints their
//! leakage traces and breakdown times, and cross-checks the Weibull slope
//! of the simulated SBD population against the `b·x` slope used by the
//! chip-level analysis.
//!
//! Run with: `cargo run --release --example degradation_trace`

use statobd::device::{
    ClosedFormTech, DegradationSimulator, DeviceObd, ObdTechnology, PercolationConfig,
};
use statobd_num::rng::Xoshiro256pp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = DegradationSimulator::new(PercolationConfig::default())?;
    let mut rng = Xoshiro256pp::seed_from_u64(3);

    println!("three stressed devices (percolation simulator):\n");
    for i in 0..3 {
        let trace = sim.simulate(&mut rng, 1.0, 6)?;
        println!(
            "device {}: SBD at {:.2e} s ({} traps), HBD at {:.2e} s",
            i + 1,
            trace.t_sbd_s,
            trace.traps_at_sbd,
            trace.t_hbd_s
        );
        // A compact leakage sparkline in decades.
        let marks: String = trace
            .times_s
            .iter()
            .zip(&trace.leakage_a)
            .map(|(t, i_a)| {
                if *t >= trace.t_hbd_s {
                    '@'
                } else if *t >= trace.t_sbd_s {
                    '#'
                } else if *i_a > 2.5e-9 {
                    '.'
                } else {
                    '_'
                }
            })
            .collect();
        println!("  leakage: {marks}  (_ baseline, . trap-assisted, # post-SBD, @ HBD)\n");
    }

    // Population statistics: the Weibull slope of the simulated SBD times
    // versus the chip model's β = b·x.
    let beta_sim = sim.estimate_weibull_slope(&mut rng, 1000)?;
    let tech = ClosedFormTech::nominal_45nm();
    let beta_model = tech.b(373.15) * 2.2;
    println!("Weibull slope comparison:");
    println!("  percolation simulation : beta = {beta_sim:.2}");
    println!("  chip-level model (b·x) : beta = {beta_model:.2}");

    // The same device in the chip-level abstraction: time-to-1%-failure
    // under use conditions.
    let device = DeviceObd::new(1.0, 2.2, tech.alpha(373.15, 1.2), tech.b(373.15))?;
    println!(
        "\nchip-model device at 100 C / 1.2 V: F(t) reaches 1% at {:.2e} s",
        device.quantile(0.01)?
    );
    println!(
        "characteristic life alpha = {:.2e} s; use-condition stress is ~{} orders below stress-test",
        device.alpha_s(),
        (device.alpha_s() / 1e5).log10().round()
    );
    Ok(())
}
