//! Application-phase analysis with the transient thermal solver: a
//! compute-heavy phase and a memory-heavy phase produce different thermal
//! maps; the reliability model takes each block's worst case across the
//! phases ("to ensure a correct operation throughout the entire life time
//! for any application profile", paper Sec. IV-A).
//!
//! Run with: `cargo run --release --example application_phases`

use statobd::core::{params, BlockSpec, ChipSpec};
use statobd::thermal::{
    alpha_ev6_floorplan, kelvin_to_celsius, BlockPower, PowerModel, ThermalConfig, ThermalSolver,
};
use statobd::variation::GridSpec;
use statobd::{AnalysisSpec, Session};

/// Power model for a compute-bound phase: integer/FP clusters hot.
fn compute_phase() -> Result<PowerModel, Box<dyn std::error::Error>> {
    let mut pm = PowerModel::new();
    for (name, dyn_w) in [
        ("l2_left", 1.5),
        ("l2_center", 3.0),
        ("l2_right", 1.5),
        ("icache", 5.5),
        ("dcache", 5.0),
        ("ldstq", 3.0),
        ("intq", 4.5),
        ("intreg", 5.5),
        ("intexec", 8.5),
        ("bpred", 3.5),
        ("tlb", 1.5),
        ("fpadd", 5.5),
        ("fpmul", 6.0),
        ("fpreg", 2.5),
        ("intmap", 4.0),
    ] {
        pm.set_block_power(name, BlockPower::new(dyn_w, dyn_w * 0.1)?)?;
    }
    Ok(pm)
}

/// Power model for a memory-bound phase: caches hot, execution idle.
fn memory_phase() -> Result<PowerModel, Box<dyn std::error::Error>> {
    let mut pm = PowerModel::new();
    for (name, dyn_w) in [
        ("l2_left", 5.0),
        ("l2_center", 10.0),
        ("l2_right", 5.0),
        ("icache", 4.0),
        ("dcache", 7.5),
        ("ldstq", 5.0),
        ("intq", 1.5),
        ("intreg", 2.0),
        ("intexec", 2.5),
        ("bpred", 1.5),
        ("tlb", 2.0),
        ("fpadd", 0.8),
        ("fpmul", 0.8),
        ("fpreg", 0.6),
        ("intmap", 1.5),
    ] {
        pm.set_block_power(name, BlockPower::new(dyn_w, dyn_w * 0.1)?)?;
    }
    Ok(pm)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fp = alpha_ev6_floorplan()?;
    let solver = ThermalSolver::new(ThermalConfig::default());

    // Transient: start from the compute phase's steady state, switch to
    // the memory phase, and watch the die re-equilibrate.
    let compute = compute_phase()?;
    let memory = memory_phase()?;
    let map_compute = solver.solve(&fp, &compute)?;
    let transient = solver.solve_transient(&fp, &memory, map_compute.mean_k(), 0.4, 4)?;
    println!("phase switch (compute -> memory), die mean temperature:");
    println!(
        "  compute steady state: {:.1} C",
        kelvin_to_celsius(map_compute.mean_k())
    );
    for (t, map) in &transient.snapshots {
        println!(
            "  t = {:.2} s after switch: {:.1} C",
            t,
            kelvin_to_celsius(map.mean_k())
        );
    }
    let map_memory = solver.solve(&fp, &memory)?;

    // Block-level worst case across both phases — the reliability model's
    // input for an "any application profile" guarantee.
    println!("\nper-block worst-case temperature across phases:");
    println!(
        "{:<12} {:>10} {:>10} {:>10}",
        "block", "compute C", "memory C", "worst C"
    );
    let mut worst = Vec::new();
    for b in fp.blocks() {
        let tc = map_compute.block_stats(b.rect()).max_k;
        let tm = map_memory.block_stats(b.rect()).max_k;
        let tw = tc.max(tm);
        worst.push((b.name().to_string(), b.rect().area(), tw));
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>10.1}",
            b.name(),
            kelvin_to_celsius(tc),
            kelvin_to_celsius(tm),
            kelvin_to_celsius(tw)
        );
    }

    // Reliability under the per-phase worst-case profile vs naive
    // chip-global worst case. The floorplan-aligned grid only assigns the
    // correlation-cell weights; the analyses themselves are compiled from
    // declarative specs over the same 15x15 grid.
    let grid = GridSpec::new(fp.die_w(), fp.die_h(), 15, 15)?;

    let devices_per_m2 = 840_000.0 / fp.die_area();
    let build_spec =
        |temps: &dyn Fn(usize) -> f64| -> Result<ChipSpec, Box<dyn std::error::Error>> {
            let mut spec = ChipSpec::new();
            for (i, b) in fp.blocks().iter().enumerate() {
                let r = b.rect();
                let m = (devices_per_m2 * r.area()).round().max(2.0);
                let overlaps = grid.rect_overlaps(r.x(), r.y(), r.x1(), r.y1());
                let total: f64 = overlaps.iter().map(|&(_, a)| a).sum();
                let weights: Vec<(usize, f64)> =
                    overlaps.iter().map(|&(g, a)| (g, a / total)).collect();
                spec.add_block(BlockSpec::new(
                    b.name(),
                    m,
                    m as u64,
                    temps(i),
                    params::NOMINAL_VDD_V,
                    weights,
                )?)?;
            }
            Ok(spec)
        };

    let per_block_spec = build_spec(&|i| worst[i].2)?;
    let chip_worst = worst.iter().map(|w| w.2).fold(0.0f64, f64::max);
    let global_spec = build_spec(&|_| chip_worst)?;

    let lifetime = |spec: ChipSpec| -> Result<f64, Box<dyn std::error::Error>> {
        let mut session = Session::build(&AnalysisSpec::chip(spec).with_grid_side(15))?;
        Ok(session.lifetime(params::ONE_PER_MILLION)?)
    };
    let t1 = lifetime(per_block_spec)?;
    let t2 = lifetime(global_spec)?;
    println!(
        "\n1-ppm lifetime, per-block worst-case temps: {:.2} years",
        t1 / 3.156e7
    );
    println!(
        "1-ppm lifetime, chip-global worst case:     {:.2} years",
        t2 / 3.156e7
    );
    println!(
        "temperature-aware margin recovered: {:.0}%",
        100.0 * (t1 - t2) / t2
    );
    Ok(())
}
