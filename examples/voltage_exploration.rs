//! Voltage/temperature margin exploration with the hybrid lookup engine —
//! the paper's motivating use-case: "oxide reliability is one of the key
//! factors that sets constraints on the operating supply voltage", so any
//! pessimism limits the maximum achievable performance.
//!
//! The hybrid tables are built **once**; every (VDD, temperature-profile)
//! combination is then evaluated by pure table lookup, exactly the
//! "repeatedly evaluate the same design with different setup and
//! application profiles" scenario of Sec. IV-E.
//!
//! Run with: `cargo run --release --example voltage_exploration`

use statobd::circuits::Benchmark;
use statobd::core::{
    params, solve_lifetime, ChipAnalysis, GuardBand, GuardBandConfig, HybridConfig, HybridTables,
};
use statobd::device::{ClosedFormTech, ObdTechnology};
use statobd::{AnalysisSpec, Session};

const TEN_YEARS_S: f64 = 3.156e8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Compile C3 once through the declarative spec; the session's
    // analysis is the input to the table build below.
    let session = Session::build(&AnalysisSpec::benchmark(Benchmark::C3))?;
    let analysis = session.analysis();
    let tech = ClosedFormTech::nominal_45nm();

    // Build the lookup tables once (the per-design preprocessing step).
    let start = std::time::Instant::now();
    let mut tables = HybridTables::build(analysis, HybridConfig::default())?;
    println!(
        "hybrid tables built in {:.2} s ({} blocks x 100 x 100 entries)\n",
        start.elapsed().as_secs_f64(),
        tables.n_blocks()
    );

    // Sweep VDD: at each voltage, update every block's operating point by
    // lookup-table reparameterization (no re-integration) and solve the
    // 1-per-million lifetime.
    println!(
        "{:>8} {:>14} {:>12}   guard-band-allowed?",
        "VDD (V)", "t_1pm (yr)", ">= 10 yr?"
    );
    let sweep_start = std::time::Instant::now();
    let mut max_vdd_stat = 0.0f64;
    let mut max_vdd_guard = 0.0f64;
    let mut evaluations = 0usize;
    for step in 0..=20 {
        let vdd = 1.10 + 0.01 * step as f64;
        for (j, block) in analysis.blocks().iter().enumerate() {
            let t_k = block.spec().temperature_k();
            tables.set_operating_point(j, tech.alpha(t_k, vdd), tech.b(t_k))?;
        }
        let t = solve_lifetime(&mut tables, params::ONE_PER_MILLION, (1e4, 1e13))?;
        evaluations += 1;

        // Guard-band verdict at the same voltage (closed form).
        let spec_v = analysis.spec().clone();
        let analysis_v = {
            // Rebind the analysis at this voltage for the guard corner.
            let mut s = statobd::core::ChipSpec::new();
            for b in spec_v.blocks() {
                s.add_block(statobd::core::BlockSpec::new(
                    b.name(),
                    b.area(),
                    b.m_devices(),
                    b.temperature_k(),
                    vdd,
                    b.grid_weights().to_vec(),
                )?)?;
            }
            ChipAnalysis::new(s, analysis.model().clone(), &tech)?
        };
        let guard = GuardBand::new(&analysis_v, GuardBandConfig::default())?;
        let t_guard = guard.lifetime(params::ONE_PER_MILLION)?;

        let stat_ok = t >= TEN_YEARS_S;
        let guard_ok = t_guard >= TEN_YEARS_S;
        if stat_ok {
            max_vdd_stat = max_vdd_stat.max(vdd);
        }
        if guard_ok {
            max_vdd_guard = max_vdd_guard.max(vdd);
        }
        println!(
            "{:>8.2} {:>14.2} {:>12}   {}",
            vdd,
            t / 3.156e7,
            if stat_ok { "yes" } else { "no" },
            if guard_ok { "yes" } else { "no" }
        );
    }
    println!(
        "\nsweep: {} voltage points in {:.1} ms (hybrid lookups)",
        evaluations,
        sweep_start.elapsed().as_secs_f64() * 1e3
    );
    println!(
        "max VDD for a 10-year 1-per-million lifetime: statistical {max_vdd_stat:.2} V vs guard-band {max_vdd_guard:.2} V"
    );
    println!(
        "=> the statistical analysis recovers {:.0} mV of supply-voltage headroom",
        (max_vdd_stat - max_vdd_guard) * 1e3
    );
    Ok(())
}
