//! Full-chip reliability of the Alpha-processor-class design (the paper's
//! C6): floorplan → architectural power → thermal solve → BLOD
//! characterization → all five reliability methods.
//!
//! Run with: `cargo run --release --example alpha_processor`

use statobd::circuits::{build_design, Benchmark, DesignConfig};
use statobd::core::{
    params, solve_lifetime, ChipAnalysis, GuardBand, GuardBandConfig, HybridConfig, HybridTables,
    MonteCarlo, MonteCarloConfig, StFast, StFastConfig, StMc, StMcConfig,
};
use statobd::device::ClosedFormTech;
use statobd::thermal::kelvin_to_celsius;
use statobd::variation::{CorrelationKernel, ThicknessModelBuilder, VarianceBudget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build C6: the 15-module Alpha-class design with 0.84 M devices.
    let built = build_design(Benchmark::C6, &DesignConfig::default())?;
    println!(
        "C6: {} blocks, {} devices, die {:.0} x {:.0} mm",
        built.spec.n_blocks(),
        built.spec.total_devices(),
        built.floorplan.die_w() * 1e3,
        built.floorplan.die_h() * 1e3
    );
    println!(
        "thermal profile: {:.1} C .. {:.1} C (spread {:.1} K)\n",
        kelvin_to_celsius(built.map.min_k()),
        kelvin_to_celsius(built.map.max_k()),
        built.map.max_k() - built.map.min_k()
    );

    // Process model over the design's correlation grid.
    let model = ThicknessModelBuilder::new()
        .grid(built.grid)
        .nominal(params::NOMINAL_THICKNESS_NM)
        .budget(VarianceBudget::itrs_2008(params::NOMINAL_THICKNESS_NM)?)
        .kernel(CorrelationKernel::Exponential {
            rel_distance: params::DEFAULT_CORRELATION_DISTANCE,
        })
        .build()?;

    let tech = ClosedFormTech::nominal_45nm();
    let analysis = ChipAnalysis::new(built.spec.clone(), model, &tech)?;
    let bracket = (1e6, 1e12);
    let p = params::ONE_PER_MILLION;
    let years = |t: f64| t / 3.156e7;

    // st_fast: the paper's main analytic method.
    let mut fast = StFast::new(&analysis, StFastConfig::default());
    let t_fast = solve_lifetime(&mut fast, p, bracket)?;
    println!("st_fast  1/million lifetime: {:.2} years", years(t_fast));

    // st_MC: numerical joint PDF.
    let mut smc = StMc::new(&analysis, StMcConfig::default())?;
    let t_smc = solve_lifetime(&mut smc, p, bracket)?;
    println!("st_MC    1/million lifetime: {:.2} years", years(t_smc));

    // hybrid: table lookup (built once, queried in microseconds).
    let mut hybrid = HybridTables::build(&analysis, HybridConfig::default())?;
    let t_hyb = solve_lifetime(&mut hybrid, p, bracket)?;
    println!("hybrid   1/million lifetime: {:.2} years", years(t_hyb));

    // guard: the traditional corner.
    let guard = GuardBand::new(&analysis, GuardBandConfig::default())?;
    let t_guard = guard.lifetime(p)?;
    println!("guard    1/million lifetime: {:.2} years", years(t_guard));

    // MC reference (500 chips here; the evaluation binaries use 1000).
    let mut mc = MonteCarlo::build(
        &analysis,
        MonteCarloConfig {
            n_chips: 500,
            ..Default::default()
        },
    )?;
    let t_mc = solve_lifetime(&mut mc, p, bracket)?;
    println!("MC       1/million lifetime: {:.2} years", years(t_mc));

    println!("\nerrors vs MC:");
    let err = |t: f64| 100.0 * ((t - t_mc) / t_mc).abs();
    println!("  st_fast {:5.2} %", err(t_fast));
    println!("  st_MC   {:5.2} %", err(t_smc));
    println!("  hybrid  {:5.2} %", err(t_hyb));
    println!(
        "  guard   {:5.1} %  (the pessimism of the traditional flow)",
        err(t_guard)
    );

    // The blocks that limit the design.
    println!("\nhottest blocks and their failure contribution at the lifetime:");
    let mut rows: Vec<(String, f64, f64)> = analysis
        .blocks()
        .iter()
        .enumerate()
        .map(|(j, b)| {
            let pj = fast.block_failure_probability(j, t_fast).unwrap_or(0.0);
            (b.spec().name().to_string(), b.spec().temperature_k(), pj)
        })
        .collect();
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));
    for (name, t_k, pj) in rows.iter().take(5) {
        println!(
            "  {:<10} {:>6.1} C   P_j = {:.2e}",
            name,
            kelvin_to_celsius(*t_k),
            pj
        );
    }
    Ok(())
}
