//! Full-chip reliability of the Alpha-processor-class design (the paper's
//! C6): floorplan → architectural power → thermal solve → BLOD
//! characterization → all five reliability methods.
//!
//! Run with: `cargo run --release --example alpha_processor`

use statobd::circuits::Benchmark;
use statobd::core::{
    build_engine, params, solve_lifetime, EngineKind, EngineSpec, MonteCarloConfig, StFast,
    StFastConfig,
};
use statobd::thermal::kelvin_to_celsius;
use statobd::{AnalysisSpec, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Compile C6: the 15-module Alpha-class design with 0.84 M devices.
    // One declarative spec runs the whole substrate pipeline (floorplan →
    // architectural power → thermal solve → BLOD characterization).
    let session = Session::build(&AnalysisSpec::benchmark(Benchmark::C6))?;
    let analysis = session.analysis();
    let spec = analysis.spec();
    let temps: Vec<f64> = spec.blocks().iter().map(|b| b.temperature_k()).collect();
    let (t_min, t_max) = temps
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &t| {
            (lo.min(t), hi.max(t))
        });
    println!(
        "C6: {} blocks, {} devices",
        spec.n_blocks(),
        spec.total_devices()
    );
    println!(
        "worst-case block temperatures: {:.1} C .. {:.1} C (spread {:.1} K)\n",
        kelvin_to_celsius(t_min),
        kelvin_to_celsius(t_max),
        t_max - t_min
    );

    let bracket = (1e6, 1e12);
    let p = params::ONE_PER_MILLION;
    let years = |t: f64| t / 3.156e7;

    // Solve every method through the unified engine factory. The MC
    // reference gets a reduced chip count here (500; the evaluation
    // binaries use 1000).
    let mut results: Vec<(EngineKind, f64)> = Vec::new();
    for kind in EngineKind::ALL {
        let spec = match kind {
            EngineKind::MonteCarlo => EngineSpec::MonteCarlo(MonteCarloConfig {
                n_chips: 500,
                ..Default::default()
            }),
            _ => kind.default_spec(),
        };
        let mut engine = build_engine(analysis, &spec)?;
        let t = solve_lifetime(engine.as_mut(), p, bracket)?;
        println!(
            "{:<9} 1/million lifetime: {:.2} years",
            kind.name(),
            years(t)
        );
        results.push((kind, t));
    }

    let lifetime_of = |k: EngineKind| {
        results
            .iter()
            .find(|(kind, _)| *kind == k)
            .expect("all engines solved")
            .1
    };
    let t_fast = lifetime_of(EngineKind::StFast);
    let t_mc = lifetime_of(EngineKind::MonteCarlo);

    println!("\nerrors vs MC:");
    let err = |t: f64| 100.0 * ((t - t_mc) / t_mc).abs();
    println!("  st_fast {:5.2} %", err(t_fast));
    println!("  st_MC   {:5.2} %", err(lifetime_of(EngineKind::StMc)));
    println!("  hybrid  {:5.2} %", err(lifetime_of(EngineKind::Hybrid)));
    println!(
        "  guard   {:5.1} %  (the pessimism of the traditional flow)",
        err(lifetime_of(EngineKind::GuardBand))
    );

    // The blocks that limit the design (per-block breakdown needs the
    // concrete st_fast engine — it is not part of the engine trait).
    let fast = StFast::new(analysis, StFastConfig::default());
    println!("\nhottest blocks and their failure contribution at the lifetime:");
    let mut rows: Vec<(String, f64, f64)> = analysis
        .blocks()
        .iter()
        .enumerate()
        .map(|(j, b)| {
            let pj = fast.block_failure_probability(j, t_fast).unwrap_or(0.0);
            (b.spec().name().to_string(), b.spec().temperature_k(), pj)
        })
        .collect();
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));
    for (name, t_k, pj) in rows.iter().take(5) {
        println!(
            "  {:<10} {:>6.1} C   P_j = {:.2e}",
            name,
            kelvin_to_celsius(*t_k),
            pj
        );
    }
    Ok(())
}
