//! Full-chip reliability of the Alpha-processor-class design (the paper's
//! C6): floorplan → architectural power → thermal solve → BLOD
//! characterization → all five reliability methods.
//!
//! Run with: `cargo run --release --example alpha_processor`

use statobd::circuits::{build_design, Benchmark, DesignConfig};
use statobd::core::{
    build_engine, params, solve_lifetime, ChipAnalysis, EngineKind, EngineSpec, MonteCarloConfig,
    StFast, StFastConfig,
};
use statobd::device::ClosedFormTech;
use statobd::thermal::kelvin_to_celsius;
use statobd::variation::{CorrelationKernel, ThicknessModelBuilder, VarianceBudget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build C6: the 15-module Alpha-class design with 0.84 M devices.
    let built = build_design(Benchmark::C6, &DesignConfig::default())?;
    println!(
        "C6: {} blocks, {} devices, die {:.0} x {:.0} mm",
        built.spec.n_blocks(),
        built.spec.total_devices(),
        built.floorplan.die_w() * 1e3,
        built.floorplan.die_h() * 1e3
    );
    println!(
        "thermal profile: {:.1} C .. {:.1} C (spread {:.1} K)\n",
        kelvin_to_celsius(built.map.min_k()),
        kelvin_to_celsius(built.map.max_k()),
        built.map.max_k() - built.map.min_k()
    );

    // Process model over the design's correlation grid.
    let model = ThicknessModelBuilder::new()
        .grid(built.grid)
        .nominal(params::NOMINAL_THICKNESS_NM)
        .budget(VarianceBudget::itrs_2008(params::NOMINAL_THICKNESS_NM)?)
        .kernel(CorrelationKernel::Exponential {
            rel_distance: params::DEFAULT_CORRELATION_DISTANCE,
        })
        .build()?;

    let tech = ClosedFormTech::nominal_45nm();
    let analysis = ChipAnalysis::new(built.spec.clone(), model, &tech)?;
    let bracket = (1e6, 1e12);
    let p = params::ONE_PER_MILLION;
    let years = |t: f64| t / 3.156e7;

    // Solve every method through the unified engine factory. The MC
    // reference gets a reduced chip count here (500; the evaluation
    // binaries use 1000).
    let mut results: Vec<(EngineKind, f64)> = Vec::new();
    for kind in EngineKind::ALL {
        let spec = match kind {
            EngineKind::MonteCarlo => EngineSpec::MonteCarlo(MonteCarloConfig {
                n_chips: 500,
                ..Default::default()
            }),
            _ => kind.default_spec(),
        };
        let mut engine = build_engine(&analysis, &spec)?;
        let t = solve_lifetime(engine.as_mut(), p, bracket)?;
        println!(
            "{:<9} 1/million lifetime: {:.2} years",
            kind.name(),
            years(t)
        );
        results.push((kind, t));
    }

    let lifetime_of = |k: EngineKind| {
        results
            .iter()
            .find(|(kind, _)| *kind == k)
            .expect("all engines solved")
            .1
    };
    let t_fast = lifetime_of(EngineKind::StFast);
    let t_mc = lifetime_of(EngineKind::MonteCarlo);

    println!("\nerrors vs MC:");
    let err = |t: f64| 100.0 * ((t - t_mc) / t_mc).abs();
    println!("  st_fast {:5.2} %", err(t_fast));
    println!("  st_MC   {:5.2} %", err(lifetime_of(EngineKind::StMc)));
    println!("  hybrid  {:5.2} %", err(lifetime_of(EngineKind::Hybrid)));
    println!(
        "  guard   {:5.1} %  (the pessimism of the traditional flow)",
        err(lifetime_of(EngineKind::GuardBand))
    );

    // The blocks that limit the design (per-block breakdown needs the
    // concrete st_fast engine — it is not part of the engine trait).
    let fast = StFast::new(&analysis, StFastConfig::default());
    println!("\nhottest blocks and their failure contribution at the lifetime:");
    let mut rows: Vec<(String, f64, f64)> = analysis
        .blocks()
        .iter()
        .enumerate()
        .map(|(j, b)| {
            let pj = fast.block_failure_probability(j, t_fast).unwrap_or(0.0);
            (b.spec().name().to_string(), b.spec().temperature_k(), pj)
        })
        .collect();
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));
    for (name, t_k, pj) in rows.iter().take(5) {
        println!(
            "  {:<10} {:>6.1} C   P_j = {:.2e}",
            name,
            kelvin_to_celsius(*t_k),
            pj
        );
    }
    Ok(())
}
