//! Burn-in screening analysis: does a burn-in program buy certified
//! service life for an OBD-limited product?
//!
//! Two forces compete. The ensemble mixes over process variation, so the
//! population's early hazard is enriched in thin-oxide outlier dies that
//! burn-in screens out; but each die's intrinsic hazard *increases* with
//! time (Weibull β ≈ 1.76), so burn-in also consumes life. This example
//! quantifies the trade-off for design C3: with the Table II variation
//! budget the wear-out term wins — burn-in costs service life at every
//! duration — which is exactly why OBD qualification relies on
//! *statistical* lifetime certification (this library) rather than
//! screening. The voltage-acceleration figures show what a real stress
//! program would look like if screening were wanted anyway (e.g. against
//! extrinsic defects outside this model).
//!
//! Run with: `cargo run --release --example burn_in`

use statobd::circuits::Benchmark;
use statobd::core::{
    burn_in_failure_probability, params, solve_lifetime, solve_lifetime_after_burn_in,
};
use statobd::device::{ClosedFormTech, ObdTechnology};
use statobd::{AnalysisSpec, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut session = Session::build(&AnalysisSpec::benchmark(Benchmark::C3))?;
    let tech = ClosedFormTech::nominal_45nm();
    let t_block0_k = session.analysis().blocks()[0].spec().temperature_k();

    // The burn-in free functions drive the raw engine with custom
    // brackets, outside the session's wrapped queries.
    let engine = session.engine_mut();

    // Context: each burn-in row reports the 1-ppm service life of the
    // surviving population and the fraction lost during burn-in.
    let p = params::ONE_PER_MILLION;
    let fresh = solve_lifetime(engine, p, (1e5, 1e12))?;
    let years = |t: f64| t / 3.156e7;
    println!("fresh-population 1-ppm lifetime: {:.2} years", years(fresh));
    println!();
    println!(
        "{:>16} {:>18} {:>22}",
        "burn-in", "1-ppm service life", "fallout during burn-in"
    );
    for frac in [0.001, 0.01, 0.05, 0.2, 1.0] {
        let t_burn = fresh * frac;
        let after = solve_lifetime_after_burn_in(engine, p, t_burn, (1e5, 1e12))?;
        let fallout = engine.failure_probability(t_burn)?;
        println!(
            "{:>13.3} yr {:>15.2} yr {:>18.2e} ppm",
            years(t_burn),
            years(after),
            fallout * 1e6
        );
    }
    println!();

    // An *accelerated* burn-in: elevated voltage shortens the required
    // burn time by the voltage-acceleration factor.
    let accel = tech.alpha(t_block0_k, 1.2) / tech.alpha(t_block0_k, 1.4);
    println!(
        "voltage acceleration 1.2 V -> 1.4 V: {accel:.0}x (a {:.1}-year equivalent burn-in takes {:.1} hours at stress)",
        years(fresh * 0.01),
        fresh * 0.01 / accel / 3600.0
    );

    // Sanity: the conditional probability formula.
    let p_cond = burn_in_failure_probability(engine, fresh * 0.01, fresh)?;
    println!("\nP(fail within the fresh-lifetime window | survived 1% burn-in) = {p_cond:.2e}");
    Ok(())
}
