//! Dynamic reliability management — the use-case behind the DATE-2010
//! title: a runtime manager that tracks *consumed* OBD life as the
//! workload (and therefore the thermal profile) changes, using the hybrid
//! lookup tables ("embedded into a dynamic system for reliability
//! monitoring that usually requires very fast response", paper
//! Sec. IV-E).
//!
//! The damage model is effective-age accumulation: under a time-varying
//! operating point, each block's Weibull hazard advances by
//! `dξ_j = dt / α_j(T(t), V(t))`; the block's failure probability at any
//! moment is the table entry at `γ_j = ln(ξ_j)` (the constant-condition
//! identity `γ = ln(t/α)` with `ξ = t/α` made cumulative). The chip-level
//! probability is weakest-link composed on log-survival — *not* a sum of
//! block probabilities — and the manager walks a DVFS ladder whenever the
//! projected end-of-service probability exceeds the budget.
//!
//! Run with: `cargo run --release --example reliability_manager`

use statobd::circuits::Benchmark;
use statobd::core::{params, EngineKind};
use statobd::device::ClosedFormTech;
use statobd::manager::{DamageState, DvfsLevel, ManagerConfig, PolicyConfig, ReliabilityManager};
use statobd::{AnalysisSpec, Session};

const MONTH_S: f64 = 2.63e6;
const LIFETIME_MONTHS: usize = 60; // 5-year service target
const BUDGET: f64 = params::ONE_PER_MILLION;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Compile the design once; the cheap closed-form engine suffices
    // because the manager drives its own hybrid tables (built once,
    // offline — the manager widens the table grid so the whole service
    // life stays on-grid).
    let aspec = AnalysisSpec::benchmark(Benchmark::C3).with_engine(EngineKind::StClosed);
    let mut session = Session::build(&aspec)?;
    let tech = ClosedFormTech::nominal_45nm();
    let n_blocks = session.analysis().n_blocks();
    let spec_temps: Vec<f64> = session
        .analysis()
        .blocks()
        .iter()
        .map(|b| b.spec().temperature_k())
        .collect();

    let policy = PolicyConfig {
        budget: BUDGET,
        service_life_s: LIFETIME_MONTHS as f64 * MONTH_S,
        hysteresis: 0.85,
        levels: vec![
            DvfsLevel {
                name: "turbo".to_string(),
                vdd_cap_v: 1.26,
                dt_when_capped_k: 0.0,
            },
            DvfsLevel {
                name: "nominal".to_string(),
                vdd_cap_v: 1.20,
                dt_when_capped_k: -6.0,
            },
            DvfsLevel {
                name: "eco".to_string(),
                vdd_cap_v: 1.10,
                dt_when_capped_k: -14.0,
            },
        ],
    };
    session.configure_manager(policy.clone(), ManagerConfig::default())?;
    let mgr = session.manager_mut()?;

    // Three workload regimes: per-block temperature offsets relative to
    // the design's nominal profile, and the voltage the workload asks for.
    let regimes = [
        ("idle", -12.0, 1.10),
        ("typical", 0.0, 1.20),
        ("turbo", 10.0, 1.26),
    ];

    println!("dynamic reliability manager: C3, 5-year service, budget 1 ppm\n");
    println!(
        "{:>6} {:>9} {:>8} {:>7} {:>13} {:>13}",
        "month", "regime", "level", "VDD", "P(now)", "P(projected)"
    );

    let mut checkpoint: Option<String> = None;
    let mut query_count = 0usize;
    let query_start = std::time::Instant::now();
    for month in 0..LIFETIME_MONTHS {
        // A bursty request pattern with turbo phases.
        let (name, dt_k, vdd_req) = match month % 12 {
            0..=2 => regimes[1],
            3..=4 => regimes[2],
            5..=8 => regimes[1],
            _ => regimes[0],
        };
        let temps: Vec<f64> = spec_temps.iter().map(|t| t + dt_k).collect();
        let report = mgr.step(MONTH_S, &temps, vdd_req)?;
        // One p_now sweep + one projection sweep per ladder walk.
        query_count += 2 * n_blocks;

        if month % 12 < 6 {
            println!(
                "{:>6} {:>9} {:>8} {:>7.2} {:>13.3e} {:>13.3e}{}",
                month,
                name,
                mgr.level_name(),
                report.vdd_v,
                report.p_now,
                report.p_projected,
                if report.capped { "  <- capped" } else { "" }
            );
        }
        // Mid-life: checkpoint the complete reliability state.
        if month == LIFETIME_MONTHS / 2 {
            checkpoint = Some(mgr.damage().to_json());
        }
    }
    let per_query = query_start.elapsed().as_secs_f64() / query_count as f64;

    // Pull the end-of-service numbers before the manager borrow ends.
    let p_final = mgr.failure_probability_now()?;
    let transitions = mgr.transitions();
    let off_grid = mgr.off_grid_queries();

    // The damage vector is the *complete* state: restoring the mid-life
    // checkpoint into a fresh manager reproduces the monitored value.
    let json = checkpoint.expect("mid-life checkpoint");
    let mut resumed = ReliabilityManager::new(
        session.analysis(),
        Box::new(tech),
        policy,
        ManagerConfig::default(),
    )?;
    resumed.restore(DamageState::from_json(&json)?)?;
    println!(
        "\nmid-life checkpoint: {} bytes of JSON, P on restore {:.3e}",
        json.len(),
        resumed.failure_probability_now()?
    );
    println!(
        "end of service: chip failure probability {p_final:.3e} (budget {BUDGET:.0e}), \
         {transitions} DVFS transitions, {off_grid} off-grid queries"
    );
    println!(
        "manager overhead: {} table queries at {:.1} µs each — cheap enough for a runtime monitor",
        query_count,
        per_query * 1e6
    );
    if p_final <= BUDGET {
        println!(
            "verdict: budget met{}",
            if transitions > 0 {
                " (after throttling)"
            } else {
                ""
            }
        );
    } else {
        println!("verdict: budget exceeded");
    }
    Ok(())
}
