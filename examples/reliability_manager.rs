//! Dynamic reliability management — the use-case behind the DATE-2010
//! title: a runtime manager that tracks *consumed* OBD life as the
//! workload (and therefore the thermal profile) changes, using the hybrid
//! lookup tables ("embedded into a dynamic system for reliability
//! monitoring that usually requires very fast response", paper
//! Sec. IV-E).
//!
//! The damage model is effective-age accumulation: under a time-varying
//! operating point, each block's Weibull hazard advances by
//! `dξ_j = dt / α_j(T(t), V(t))`; the block's failure probability at any
//! moment is the table entry at `γ_j = ln(ξ_j)` (the constant-condition
//! identity `γ = ln(t/α)` with `ξ = t/α` made cumulative). The manager
//! throttles the supply voltage when the projected end-of-life failure
//! probability exceeds the budget.
//!
//! Run with: `cargo run --release --example reliability_manager`

use statobd::circuits::{build_design, Benchmark, DesignConfig};
use statobd::core::{params, ChipAnalysis, HybridConfig, HybridTables};
use statobd::device::{ClosedFormTech, ObdTechnology};
use statobd::variation::{CorrelationKernel, ThicknessModelBuilder, VarianceBudget};

const MONTH_S: f64 = 2.63e6;
const LIFETIME_MONTHS: usize = 60; // 5-year service target
const BUDGET: f64 = params::ONE_PER_MILLION;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Design and tables (built once, offline).
    let built = build_design(Benchmark::C3, &DesignConfig::default())?;
    let model = ThicknessModelBuilder::new()
        .grid(built.grid)
        .nominal(params::NOMINAL_THICKNESS_NM)
        .budget(VarianceBudget::itrs_2008(params::NOMINAL_THICKNESS_NM)?)
        .kernel(CorrelationKernel::Exponential {
            rel_distance: params::DEFAULT_CORRELATION_DISTANCE,
        })
        .build()?;
    let tech = ClosedFormTech::nominal_45nm();
    let analysis = ChipAnalysis::new(built.spec.clone(), model, &tech)?;
    let mut tables = HybridTables::build(&analysis, HybridConfig::default())?;
    // Reparameterize every block to α = 1 so a query at time ξ_j reads the
    // table at γ_j = ln(ξ_j): cumulative effective age drives the tables.
    let n_blocks = analysis.n_blocks();

    // Three workload regimes: their per-block temperature offsets relative
    // to the design's nominal profile, and the voltage the manager picks.
    let regimes = [
        ("idle", -12.0, 1.10),
        ("typical", 0.0, 1.20),
        ("turbo", 10.0, 1.26),
    ];

    println!("dynamic reliability manager: C3, 5-year service, budget 1 ppm\n");
    println!(
        "{:>6} {:>9} {:>7} {:>13} {:>13}  action",
        "month", "regime", "VDD", "P(now)", "P(projected)"
    );

    let mut xi = vec![0.0_f64; n_blocks]; // per-block effective age (s)
    let mut throttled = false;
    let mut query_count = 0usize;
    let query_start = std::time::Instant::now();
    for month in 0..LIFETIME_MONTHS {
        // Pick the requested regime: a bursty pattern with turbo phases.
        let (name, dt_k, vdd_req) = match month % 12 {
            0..=2 => regimes[1],
            3..=4 => regimes[2],
            5..=8 => regimes[1],
            _ => regimes[0],
        };
        // The manager may override turbo if the budget projection fails.
        let (vdd, label) = if throttled && vdd_req > 1.2 {
            (1.2, "THROTTLED")
        } else {
            (vdd_req, "")
        };

        // Advance each block's effective age under this month's operating
        // point.
        for (j, block) in analysis.blocks().iter().enumerate() {
            let t_k = block.spec().temperature_k() + dt_k;
            let alpha = tech.alpha(t_k, vdd);
            xi[j] += MONTH_S / alpha;
        }

        // Current and end-of-life-projected failure probability, by table
        // lookup (α = 1, query at the effective ages).
        let mut p_now = 0.0;
        let mut p_proj = 0.0;
        let months_left = (LIFETIME_MONTHS - month - 1) as f64;
        for (j, block) in analysis.blocks().iter().enumerate() {
            tables.set_operating_point(j, 1.0, block.b_per_nm())?;
            p_now += tables.block_failure_probability(j, xi[j]);
            // Projection: remaining months at the typical operating point.
            let t_k = block.spec().temperature_k();
            let alpha_typ = tech.alpha(t_k, 1.2);
            let xi_proj = xi[j] + months_left * MONTH_S / alpha_typ;
            p_proj += tables.block_failure_probability(j, xi_proj);
            query_count += 2;
        }

        // Budget check drives the throttle state.
        let newly_throttled = !throttled && p_proj > BUDGET;
        if newly_throttled {
            throttled = true;
        }
        if month % 12 < 6 || newly_throttled {
            println!(
                "{:>6} {:>9} {:>7.2} {:>13.3e} {:>13.3e}  {}{}",
                month,
                name,
                vdd,
                p_now,
                p_proj,
                label,
                if newly_throttled {
                    " <- budget exceeded, disabling turbo"
                } else {
                    ""
                }
            );
        }
    }

    let per_query = query_start.elapsed().as_secs_f64() / query_count as f64;
    let p_final: f64 = (0..n_blocks)
        .map(|j| tables.block_failure_probability(j, xi[j]))
        .sum();
    println!(
        "\nend of service: accumulated failure probability {p_final:.3e} (budget {BUDGET:.0e})"
    );
    println!(
        "manager overhead: {} table queries at {:.1} µs each — cheap enough for a runtime monitor",
        query_count,
        per_query * 1e6
    );
    if p_final <= BUDGET {
        println!(
            "verdict: budget met{}",
            if throttled {
                " (after throttling turbo)"
            } else {
                ""
            }
        );
    } else {
        println!("verdict: budget exceeded");
    }
    Ok(())
}
