//! End-to-end tests of the `statobd` CLI binary.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_statobd")
}

#[test]
fn template_then_analyze_round_trip() {
    let dir = std::env::temp_dir().join("statobd_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("spec.json");

    let out = Command::new(bin())
        .args(["template", spec.to_str().unwrap()])
        .output()
        .expect("run template");
    assert!(out.status.success(), "template failed: {out:?}");
    assert!(spec.exists());

    let out = Command::new(bin())
        .args([
            "analyze",
            spec.to_str().unwrap(),
            "--grid",
            "6",
            "--l0",
            "6",
        ])
        .output()
        .expect("run analyze");
    assert!(out.status.success(), "analyze failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("st_fast lifetime"),
        "missing lifetime: {stdout}"
    );
    assert!(
        stdout.contains("guard-band corner"),
        "missing guard: {stdout}"
    );
    assert!(stdout.contains("per-block contributions"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_rejects_missing_file() {
    let out = Command::new(bin())
        .args(["analyze", "/nonexistent/spec.json"])
        .output()
        .expect("run analyze");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn usage_on_no_arguments() {
    let out = Command::new(bin()).output().expect("run bare");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn unknown_option_is_reported() {
    let out = Command::new(bin())
        .args(["bench", "C1", "--bogus", "1"])
        .output()
        .expect("run bench");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown option"), "{stderr}");
}

#[test]
fn tables_export_writes_valid_json() {
    let dir = std::env::temp_dir().join("statobd_cli_tables");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("spec.json");
    let tables = dir.join("tables.json");
    Command::new(bin())
        .args(["template", spec.to_str().unwrap()])
        .output()
        .expect("template");
    let out = Command::new(bin())
        .args([
            "analyze",
            spec.to_str().unwrap(),
            "--grid",
            "6",
            "--tables",
            tables.to_str().unwrap(),
        ])
        .output()
        .expect("analyze with tables");
    assert!(out.status.success(), "{out:?}");
    let json = std::fs::read_to_string(&tables).unwrap();
    // Must load back as hybrid tables.
    let restored = statobd::core::HybridTables::from_json(&json);
    assert!(restored.is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn thermal_subcommand_reports_block_temperatures() {
    use statobd::thermal::{Block, BlockPower, Floorplan, PowerModel, Rect};
    let dir = std::env::temp_dir().join("statobd_cli_thermal");
    std::fs::create_dir_all(&dir).unwrap();

    let mut fp = Floorplan::new(0.01, 0.01).unwrap();
    fp.add_block(Block::new("hot", Rect::new(0.0, 0.0, 0.004, 0.004).unwrap()).unwrap())
        .unwrap();
    let mut pm = PowerModel::new();
    pm.set_block_power("hot", BlockPower::new(6.0, 0.5).unwrap())
        .unwrap();
    let fp_path = dir.join("fp.json");
    let pm_path = dir.join("pm.json");
    std::fs::write(&fp_path, statobd::num::json::to_string(&fp)).unwrap();
    std::fs::write(&pm_path, statobd::num::json::to_string(&pm)).unwrap();

    let out = Command::new(bin())
        .args([
            "thermal",
            fp_path.to_str().unwrap(),
            pm_path.to_str().unwrap(),
        ])
        .output()
        .expect("run thermal");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("die: min"), "{stdout}");
    assert!(stdout.contains("hot"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}
