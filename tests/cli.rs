//! End-to-end tests of the `statobd` CLI binary.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_statobd")
}

#[test]
fn template_then_analyze_round_trip() {
    let dir = std::env::temp_dir().join("statobd_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("spec.json");

    let out = Command::new(bin())
        .args(["template", spec.to_str().unwrap()])
        .output()
        .expect("run template");
    assert!(out.status.success(), "template failed: {out:?}");
    assert!(spec.exists());

    let out = Command::new(bin())
        .args([
            "analyze",
            spec.to_str().unwrap(),
            "--grid",
            "6",
            "--l0",
            "6",
        ])
        .output()
        .expect("run analyze");
    assert!(out.status.success(), "analyze failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("st_fast lifetime"),
        "missing lifetime: {stdout}"
    );
    assert!(
        stdout.contains("guard-band corner"),
        "missing guard: {stdout}"
    );
    assert!(stdout.contains("per-block contributions"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_rejects_missing_file() {
    let out = Command::new(bin())
        .args(["analyze", "/nonexistent/spec.json"])
        .output()
        .expect("run analyze");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn usage_on_no_arguments() {
    let out = Command::new(bin()).output().expect("run bare");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn unknown_option_is_reported() {
    let out = Command::new(bin())
        .args(["bench", "C1", "--bogus", "1"])
        .output()
        .expect("run bench");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown option"), "{stderr}");
}

#[test]
fn tables_export_writes_valid_json() {
    let dir = std::env::temp_dir().join("statobd_cli_tables");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("spec.json");
    let tables = dir.join("tables.json");
    Command::new(bin())
        .args(["template", spec.to_str().unwrap()])
        .output()
        .expect("template");
    let out = Command::new(bin())
        .args([
            "analyze",
            spec.to_str().unwrap(),
            "--grid",
            "6",
            "--tables",
            tables.to_str().unwrap(),
        ])
        .output()
        .expect("analyze with tables");
    assert!(out.status.success(), "{out:?}");
    let json = std::fs::read_to_string(&tables).unwrap();
    // Must load back as hybrid tables.
    let restored = statobd::core::HybridTables::from_json(&json);
    assert!(restored.is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn degenerate_option_values_fail_fast() {
    // These used to parse fine and blow up (or mislead) deep inside the
    // analysis; now the CLI rejects them before building anything.
    for bad in [
        ["--l0", "0"],
        ["--grid", "0"],
        ["--rho", "0"],
        ["--rho", "-1"],
        ["--mc", "0"],
        ["--curve", "0"],
    ] {
        let out = Command::new(bin())
            .args(["bench", "C1"])
            .args(bad)
            .output()
            .expect("run bench");
        assert!(!out.status.success(), "{bad:?} should be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(bad[0]),
            "rejection for {bad:?} should mention the flag: {stderr}"
        );
    }
}

#[test]
fn manage_runs_a_schedule_and_checkpoints() {
    let dir = std::env::temp_dir().join("statobd_cli_manage");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("spec.json");
    let sched = dir.join("sched.json");
    let state = dir.join("state.json");

    let out = Command::new(bin())
        .args(["template", spec.to_str().unwrap()])
        .output()
        .expect("template");
    assert!(out.status.success(), "{out:?}");
    let out = Command::new(bin())
        .args(["manage", "template", sched.to_str().unwrap()])
        .output()
        .expect("manage template");
    assert!(out.status.success(), "{out:?}");

    let run = |extra: &[&str]| {
        Command::new(bin())
            .args([
                "manage",
                spec.to_str().unwrap(),
                sched.to_str().unwrap(),
                "--grid",
                "8",
                "--checkpoint",
                state.to_str().unwrap(),
            ])
            .args(extra)
            .output()
            .expect("manage")
    };
    let out = run(&[]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("pristine chip"), "{stdout}");
    assert!(stdout.contains("end of schedule"), "{stdout}");
    assert!(stdout.contains("verdict: budget"), "{stdout}");
    // The checkpoint was written and restores as a valid damage state.
    let json = std::fs::read_to_string(&state).unwrap();
    assert!(statobd::manager::DamageState::from_json(&json).is_ok());

    // A second run resumes from the accumulated damage.
    let out = run(&[]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("restored checkpoint"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn manage_rejects_bad_schedules() {
    let dir = std::env::temp_dir().join("statobd_cli_manage_bad");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("spec.json");
    Command::new(bin())
        .args(["template", spec.to_str().unwrap()])
        .output()
        .expect("template");
    // A schedule whose policy has an empty ladder must be rejected while
    // parsing, before any tables are built.
    let sched = dir.join("sched.json");
    std::fs::write(
        &sched,
        r#"{"policy": {"budget": 1e-6, "service_life_s": 1e8, "hysteresis": 0.8, "levels": []},
            "phases": [{"name": "p", "duration_s": 1e6, "dt_k": 0.0, "vdd_v": 1.2}],
            "steps_per_phase": 1, "repeat": 1}"#,
    )
    .unwrap();
    let out = Command::new(bin())
        .args(["manage", spec.to_str().unwrap(), sched.to_str().unwrap()])
        .output()
        .expect("manage");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ladder"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_answers_a_request_script_on_stdin() {
    use std::io::Write;

    let dir = std::env::temp_dir().join("statobd_cli_serve");
    std::fs::create_dir_all(&dir).unwrap();

    let mut child = Command::new(bin())
        .args(["serve", "--cache-dir", dir.to_str().unwrap()])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            concat!(
                r#"{"id": 1, "op": "open", "session": "c1", "spec": {"design": "C1", "grid_side": 6}}"#,
                "\n",
                r#"{"id": 2, "op": "p_at", "session": "c1", "t_s": 3.156e8}"#,
                "\n",
                r#"{"id": 3, "op": "lifetime", "session": "c1", "target": 1e-6}"#,
                "\n",
                r#"{"id": 4, "op": "p_at", "session": "nope", "t_s": 1e8}"#,
                "\n",
                r#"{"op": "shutdown"}"#,
                "\n",
            )
            .as_bytes(),
        )
        .expect("write requests");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "{out:?}");

    let stdout = String::from_utf8_lossy(&out.stdout);
    let replies: Vec<&str> = stdout.lines().collect();
    assert_eq!(replies.len(), 5, "one reply per request: {stdout}");
    assert!(replies[0].contains(r#""ok":true"#), "{stdout}");
    assert!(replies[0].contains(r#""source":"cold""#), "{stdout}");
    assert!(replies[1].contains(r#""p":"#), "{stdout}");
    assert!(replies[2].contains(r#""years":"#), "{stdout}");
    // Unknown session: a structured error, not a dead server.
    assert!(replies[3].contains(r#""ok":false"#), "{stdout}");
    assert!(replies[4].contains(r#""ok":true"#), "{stdout}");

    // A second server over the same cache dir opens the session warm.
    let mut child = Command::new(bin())
        .args(["serve", "--cache-dir", dir.to_str().unwrap()])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve again");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(
            concat!(
                r#"{"op": "open", "session": "c1", "spec": {"design": "C1", "grid_side": 6}}"#,
                "\n",
                r#"{"op": "shutdown"}"#,
                "\n",
            )
            .as_bytes(),
        )
        .expect("write requests");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(r#""source":"cache""#), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn thermal_subcommand_reports_block_temperatures() {
    use statobd::thermal::{Block, BlockPower, Floorplan, PowerModel, Rect};
    let dir = std::env::temp_dir().join("statobd_cli_thermal");
    std::fs::create_dir_all(&dir).unwrap();

    let mut fp = Floorplan::new(0.01, 0.01).unwrap();
    fp.add_block(Block::new("hot", Rect::new(0.0, 0.0, 0.004, 0.004).unwrap()).unwrap())
        .unwrap();
    let mut pm = PowerModel::new();
    pm.set_block_power("hot", BlockPower::new(6.0, 0.5).unwrap())
        .unwrap();
    let fp_path = dir.join("fp.json");
    let pm_path = dir.join("pm.json");
    std::fs::write(&fp_path, statobd::num::json::to_string(&fp)).unwrap();
    std::fs::write(&pm_path, statobd::num::json::to_string(&pm)).unwrap();

    let out = Command::new(bin())
        .args([
            "thermal",
            fp_path.to_str().unwrap(),
            pm_path.to_str().unwrap(),
        ])
        .output()
        .expect("run thermal");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("die: min"), "{stdout}");
    assert!(stdout.contains("hot"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleet_subcommand_streams_a_small_fleet() {
    let dir = std::env::temp_dir().join("statobd_cli_fleet");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("spec.json");
    let out = Command::new(bin())
        .args(["template", spec.to_str().unwrap()])
        .output()
        .expect("run template");
    assert!(out.status.success(), "template failed: {out:?}");

    let out = Command::new(bin())
        .args([
            "fleet",
            spec.to_str().unwrap(),
            "--chips",
            "500",
            "--grid",
            "6",
            "--seed",
            "7",
        ])
        .output()
        .expect("run fleet");
    assert!(out.status.success(), "fleet failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fleet:"), "{stdout}");
    assert!(stdout.contains("chips/s"), "{stdout}");
    assert!(stdout.contains("weakest"), "{stdout}");
    assert!(stdout.contains("quantile"), "{stdout}");

    // --json emits one machine-readable report that parses back.
    let out = Command::new(bin())
        .args([
            "fleet",
            spec.to_str().unwrap(),
            "--chips",
            "500",
            "--grid",
            "6",
            "--seed",
            "7",
            "--json",
        ])
        .output()
        .expect("run fleet --json");
    assert!(out.status.success(), "fleet --json failed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    use statobd::num::json::{FromJson, Json};
    let value = Json::parse(&stdout).expect("fleet --json output parses");
    let report = statobd::FleetReport::from_json(&value).expect("fleet report schema");
    assert_eq!(report.aggregates.chips, 500);
    assert_eq!(report.aggregates.seed, 7);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleet_rejects_degenerate_flags_at_parse_time() {
    for (flag, value) in [
        ("--chips", "0"),
        ("--shards", "0"),
        ("--threads", "0"),
        ("--budget", "0"),
        ("--budget", "1.5"),
        ("--grid", "0"),
    ] {
        let out = Command::new(bin())
            .args(["fleet", "C1", flag, value])
            .output()
            .expect("run fleet");
        assert!(!out.status.success(), "{flag} {value} accepted");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(flag), "{flag} {value}: {stderr}");
    }
}

#[test]
fn fleet_suggests_profiles_on_typo() {
    let out = Command::new(bin())
        .args(["fleet", "C1", "--profile", "datacentre"])
        .output()
        .expect("run fleet");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("did you mean"), "{stderr}");
    assert!(stderr.contains("datacenter"), "{stderr}");
}
