//! Property-based integration tests: invariants that must hold for *any*
//! valid configuration, not just the benchmark designs. Each property is
//! checked over many deterministic pseudo-random cases (seeded, so
//! failures reproduce exactly).

use statobd::core::{
    BlockSpec, BlodMoments, ChipAnalysis, ChipSpec, GuardBand, GuardBandConfig, ReliabilityEngine,
    StFast, StFastConfig,
};
use statobd::device::{ClosedFormTech, ObdTechnology};
use statobd::num::dist::ContinuousDistribution;
use statobd::num::rng::{Rng, Xoshiro256pp};
use statobd::variation::{CorrelationKernel, GridSpec, ThicknessModelBuilder, VarianceBudget};

const CASES: usize = 24;

fn kernel<R: Rng + ?Sized>(rng: &mut R) -> CorrelationKernel {
    let rel_distance = rng.gen_range(0.1..1.5);
    match rng.gen_index(3) {
        0 => CorrelationKernel::Exponential { rel_distance },
        1 => CorrelationKernel::Gaussian { rel_distance },
        _ => CorrelationKernel::Spherical { rel_distance },
    }
}

fn budget<R: Rng + ?Sized>(rng: &mut R) -> VarianceBudget {
    // Random variance split that sums to 1.
    let a = rng.gen_range(0.05..0.9);
    let b = rng.gen_range(0.05..0.9);
    let total = 1.0 + a + b;
    VarianceBudget::new(0.03, 1.0 / total, a / total, b / total).expect("valid split")
}

/// Any kernel/budget combination yields a valid PSD model whose per-grid
/// sigma reproduces the correlated budget.
#[test]
fn thickness_model_reproduces_budget() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xB01);
    for _ in 0..CASES {
        let kernel = kernel(&mut rng);
        let budget = budget(&mut rng);
        let side = 2 + rng.gen_index(5);
        let model = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(side).unwrap())
            .nominal(2.2)
            .budget(budget)
            .kernel(kernel)
            .build()
            .unwrap();
        let expected = (budget.sigma_global().powi(2) + budget.sigma_spatial().powi(2)).sqrt();
        for g in 0..model.n_grids() {
            let got = model.grid_sigma(g);
            assert!(
                (got - expected).abs() < 1e-8 + 1e-6 * expected,
                "grid {g}: {got} vs {expected}"
            );
        }
        // Covariance symmetry and bounds.
        let c01 = model.covariance(0, model.n_grids() - 1);
        let c10 = model.covariance(model.n_grids() - 1, 0);
        assert!((c01 - c10).abs() < 1e-12);
        assert!(c01 <= expected * expected + 1e-12);
    }
}

/// The χ² fit always matches the first two moments of the quadratic form
/// exactly (that is its definition).
#[test]
fn chi2_fit_matches_moments() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xB02);
    for _ in 0..CASES {
        let side = 3 + rng.gen_index(4);
        let rel = rng.gen_range(0.2..1.0);
        let w0 = rng.gen_range(0.05..0.95);
        let model = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(side).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: rel })
            .build()
            .unwrap();
        let n = model.n_grids();
        let block = BlockSpec::new(
            "b",
            1000.0,
            1000,
            350.0,
            1.2,
            vec![(0, w0), (n - 1, 1.0 - w0)],
        )
        .unwrap();
        let m = BlodMoments::characterize(&model, &block).expect("BLOD characterization");
        let v = m.v_dist();
        assert!((v.mean() - (m.v_floor() + m.q_trace())).abs() < 1e-12);
        assert!((v.variance() - 2.0 * m.q_trace_sq()).abs() < 1e-15);
    }
}

/// For any two-block chip, P(t) is monotone in t, bounded in [0,1], and
/// the guard-band lifetime never exceeds the statistical one.
#[test]
fn failure_probability_invariants() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xB03);
    for _ in 0..CASES {
        let t_hot = rng.gen_range(350.0..390.0);
        let dt = rng.gen_range(0.0..30.0);
        let m1 = 2_000 + rng.gen_index(18_000) as u64;
        let m2 = 2_000 + rng.gen_index(18_000) as u64;
        let model = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(4).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap();
        let mut spec = ChipSpec::new();
        spec.add_block(BlockSpec::new("hot", m1 as f64, m1, t_hot, 1.2, vec![(0, 1.0)]).unwrap())
            .unwrap();
        spec.add_block(
            BlockSpec::new(
                "cool",
                m2 as f64,
                m2,
                t_hot - dt,
                1.2,
                vec![(15, 0.5), (14, 0.5)],
            )
            .unwrap(),
        )
        .unwrap();
        let tech = ClosedFormTech::nominal_45nm();
        let analysis = ChipAnalysis::new(spec, model, &tech).unwrap();
        let mut engine = StFast::new(&analysis, StFastConfig::default());

        let mut prev = 0.0;
        for i in 0..10 {
            let t = 10f64.powf(5.0 + i as f64 * 0.8);
            let p = engine.failure_probability(t).unwrap();
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev - 1e-15);
            prev = p;
        }

        // Guard band is conservative at any target in the ppm regime.
        let guard = GuardBand::new(&analysis, GuardBandConfig::default()).unwrap();
        for &target in &[1e-6, 1e-5, 1e-4] {
            let t_guard = guard.lifetime(target).unwrap();
            let p_stat_at_guard = engine.failure_probability(t_guard).unwrap();
            assert!(
                p_stat_at_guard <= target * 1.05,
                "guard lifetime not conservative: P({t_guard:e}) = {p_stat_at_guard:e} > {target:e}"
            );
        }
    }
}

/// Technology monotonicity: hotter or higher-voltage operating points
/// never increase the characteristic life.
#[test]
fn technology_acceleration_is_monotone() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xB04);
    for _ in 0..CASES {
        let t1 = rng.gen_range(300.0..420.0);
        let dt = rng.gen_range(0.1..40.0);
        let v1 = rng.gen_range(0.9..1.4);
        let dv = rng.gen_range(0.01..0.2);
        let tech = ClosedFormTech::nominal_45nm();
        assert!(tech.alpha(t1 + dt, v1) < tech.alpha(t1, v1));
        assert!(tech.alpha(t1, v1 + dv) < tech.alpha(t1, v1));
        assert!(tech.b(t1) > 0.0);
    }
}

/// The BLOD u-distribution quantiles honour the Gaussian they claim to be.
#[test]
fn blod_u_distribution_quantiles() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xB05);
    for _ in 0..CASES {
        let w = rng.gen_range(0.1..0.9);
        let p = rng.gen_range(0.01..0.99);
        let model = ThicknessModelBuilder::new()
            .grid(GridSpec::square_unit(3).unwrap())
            .nominal(2.2)
            .budget(VarianceBudget::itrs_2008(2.2).unwrap())
            .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
            .build()
            .unwrap();
        let block =
            BlockSpec::new("b", 1000.0, 1000, 350.0, 1.2, vec![(0, w), (8, 1.0 - w)]).unwrap();
        let m = BlodMoments::characterize(&model, &block).expect("BLOD characterization");
        if let statobd::core::VarianceDist::ShiftedGamma { .. } = m.v_dist() {
            let q = m.v_dist().quantile(p).unwrap();
            assert!((m.v_dist().cdf(q) - p).abs() < 1e-7);
        }
        match m.u_dist() {
            statobd::core::MeanDist::Gaussian(n) => {
                let q = n.quantile(p).unwrap();
                assert!((n.cdf(q) - p).abs() < 1e-10);
            }
            statobd::core::MeanDist::Deterministic(_) => {}
        }
    }
}
