//! Downstream invariance of the spectral backend: a thickness model built
//! through the Lanczos top-k path must drive the analytic engine to the
//! same chip failure probabilities as the Jacobi-built model.
//!
//! Both models truncate at the same energy target, so they retain the
//! identical component set (the truncation rule is shared across solvers
//! and never splits a degenerate eigenvalue cluster); the engines consume
//! the model only through rotation-invariant quantities (per-block trace
//! moments and marginal sigmas), so P(t) must agree to solver precision.

use statobd::circuits::{build_design, Benchmark, DesignConfig};
use statobd::core::{build_engine, ChipAnalysis, EngineKind};
use statobd::device::ClosedFormTech;
use statobd::num::eigen::{SpectralOptions, SpectralSolver};
use statobd::variation::{CorrelationKernel, ThicknessModelBuilder, VarianceBudget};

/// Energy target for both builds: keeps a genuinely truncated component
/// set on the 12×12 correlation grid (the exponential kernel's flat tail
/// would defeat targets much closer to 1).
const ENERGY: f64 = 0.95;

fn analysis_with_solver(benchmark: Benchmark, solver: SpectralSolver) -> ChipAnalysis {
    let built = build_design(
        benchmark,
        &DesignConfig {
            correlation_grid_side: 12,
            ..DesignConfig::default()
        },
    )
    .expect("design");
    let model = ThicknessModelBuilder::new()
        .grid(built.grid)
        .nominal(statobd::core::params::NOMINAL_THICKNESS_NM)
        .budget(
            VarianceBudget::itrs_2008(statobd::core::params::NOMINAL_THICKNESS_NM).expect("budget"),
        )
        .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
        .spectral(SpectralOptions::energy(ENERGY).with_solver(solver))
        .build()
        .expect("model");
    ChipAnalysis::new(built.spec.clone(), model, &ClosedFormTech::nominal_45nm())
        .expect("characterization")
}

fn failure_curve(analysis: &ChipAnalysis) -> Vec<f64> {
    let mut engine = build_engine(analysis, &EngineKind::StFast.default_spec()).expect("engine");
    (0..7)
        .map(|i| {
            let t = 10f64.powf(6.0 + i as f64);
            engine.failure_probability(t).expect("P(t)")
        })
        .collect()
}

fn assert_curves_match(benchmark: Benchmark) {
    let jacobi = analysis_with_solver(benchmark, SpectralSolver::Jacobi);
    let lanczos = analysis_with_solver(benchmark, SpectralSolver::Lanczos);
    assert_eq!(
        jacobi.model().n_components(),
        lanczos.model().n_components(),
        "solvers retained different component sets"
    );

    let p_jac = failure_curve(&jacobi);
    let p_lan = failure_curve(&lanczos);
    assert!(
        p_jac.iter().any(|&p| p > 1e-6 && p < 1.0),
        "degenerate P(t) curve for {benchmark:?}"
    );
    for (i, (&a, &b)) in p_jac.iter().zip(&p_lan).enumerate() {
        let scale = a.abs().max(1e-300);
        let rel = (a - b).abs() / scale;
        assert!(
            rel <= 1e-9,
            "{benchmark:?} P(t[{i}]): Jacobi {a:e} vs Lanczos {b:e} (rel {rel:.3e})"
        );
    }
}

#[test]
fn lanczos_built_model_matches_jacobi_on_c1() {
    assert_curves_match(Benchmark::C1);
}

#[test]
fn lanczos_built_model_matches_jacobi_on_c3() {
    assert_curves_match(Benchmark::C3);
}
