//! Artifact-cache round-trip guarantees: a session opened from a cached
//! artifact must be indistinguishable — bit for bit — from the cold
//! build that produced it, for every engine; and an artifact that fails
//! any validation step must be rejected with a structured error, never
//! silently mis-loaded.

use statobd::circuits::Benchmark;
use statobd::{AnalysisSpec, ArtifactCache, EngineKind, Error, Session};

/// A scratch cache rooted in a unique temp dir, removed on drop.
struct Scratch {
    root: std::path::PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("statobd-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("scratch dir");
        Scratch { root }
    }

    fn cache(&self) -> ArtifactCache {
        ArtifactCache::new(&self.root)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Log-spaced query times spanning the interesting probability range.
fn sweep_times() -> Vec<f64> {
    (0..24).map(|i| 1e6 * 10f64.powf(i as f64 * 0.25)).collect()
}

/// Every engine on a benchmark design answers the committed sweep
/// bit-identically whether built cold or loaded from the cache.
fn roundtrip_all_engines(benchmark: Benchmark, grid_side: usize) {
    let scratch = Scratch::new("roundtrip");
    let cache = scratch.cache();
    let ts = sweep_times();
    for kind in EngineKind::ALL {
        let spec = AnalysisSpec::benchmark(benchmark)
            .with_grid_side(grid_side)
            .with_engine(kind)
            .with_threads(Some(1));
        let mut cold = Session::open(&spec, &cache).expect("cold open");
        assert_eq!(cold.stats().source.name(), "cold", "{}", kind.name());
        let mut warm = Session::open(&spec, &cache).expect("warm open");
        assert_eq!(warm.stats().source.name(), "cache", "{}", kind.name());

        let p_cold = cold.p_at_many(&ts).expect("cold sweep");
        let p_warm = warm.p_at_many(&ts).expect("warm sweep");
        for (i, (a, b)) in p_cold.iter().zip(&p_warm).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{} diverged at t={:.3e}: cold {a:e} vs warm {b:e}",
                kind.name(),
                ts[i]
            );
        }
    }
}

#[test]
fn c1_roundtrips_bit_identically_for_every_engine() {
    roundtrip_all_engines(Benchmark::C1, 8);
}

#[test]
fn c3_roundtrips_bit_identically_for_every_engine() {
    roundtrip_all_engines(Benchmark::C3, 8);
}

fn hybrid_spec() -> AnalysisSpec {
    AnalysisSpec::benchmark(Benchmark::C1)
        .with_grid_side(6)
        .with_engine(EngineKind::Hybrid)
        .with_threads(Some(1))
}

/// Seeds a scratch cache with one artifact and returns its file path.
fn seeded(scratch: &Scratch, spec: &AnalysisSpec) -> std::path::PathBuf {
    let cache = scratch.cache();
    Session::open(spec, &cache).expect("seed build");
    let path = cache.artifact_path(&spec.spec_hash().expect("hash"));
    assert!(path.exists(), "artifact not persisted");
    path
}

/// Flipping payload bytes must fail checksum validation at load.
#[test]
fn corrupted_payload_is_rejected() {
    let scratch = Scratch::new("corrupt");
    let spec = hybrid_spec();
    let path = seeded(&scratch, &spec);

    let mut text = std::fs::read_to_string(&path).expect("artifact");
    // Corrupt a byte deep inside the payload line without changing the
    // length (a parse error would also be caught, but the checksum must
    // catch value-level bit rot that still parses).
    let idx = text.len() - 100;
    let original = text.as_bytes()[idx];
    let replacement = if original == b'0' { b'1' } else { b'0' };
    // SAFETY-free byte swap via a Vec round trip.
    let mut bytes = text.into_bytes();
    bytes[idx] = replacement;
    text = String::from_utf8(bytes).expect("still utf-8");
    std::fs::write(&path, text).expect("rewrite");

    let err = scratch.cache().load(&spec).expect_err("must reject");
    match err {
        Error::Artifact(detail) => assert!(
            detail.contains("checksum"),
            "expected a checksum failure, got: {detail}"
        ),
        other => panic!("expected Error::Artifact, got {other}"),
    }
}

/// A version from a different (future or past) format is rejected before
/// any payload work.
#[test]
fn version_mismatch_is_rejected() {
    let scratch = Scratch::new("version");
    let spec = hybrid_spec();
    let path = seeded(&scratch, &spec);

    let text = std::fs::read_to_string(&path).expect("artifact");
    let bumped = text.replacen(
        &format!("\"format_version\":{}", statobd::FORMAT_VERSION),
        &format!("\"format_version\":{}", statobd::FORMAT_VERSION + 1),
        1,
    );
    assert_ne!(text, bumped, "version field not found in header");
    std::fs::write(&path, bumped).expect("rewrite");

    let err = scratch.cache().load(&spec).expect_err("must reject");
    match err {
        Error::Artifact(detail) => assert!(
            detail.contains("format version"),
            "expected a version failure, got: {detail}"
        ),
        other => panic!("expected Error::Artifact, got {other}"),
    }
}

/// A truncated artifact (interrupted write, pre-v2 leftovers) is rejected.
#[test]
fn truncated_artifact_is_rejected() {
    let scratch = Scratch::new("truncate");
    let spec = hybrid_spec();
    let path = seeded(&scratch, &spec);

    let text = std::fs::read_to_string(&path).expect("artifact");
    std::fs::write(&path, &text[..text.len() / 2]).expect("rewrite");

    assert!(matches!(
        scratch.cache().load(&spec).expect_err("must reject"),
        Error::Artifact(_)
    ));
}

/// `Session::open` over an invalid artifact rebuilds instead of failing,
/// and surfaces the rejection in the session stats.
#[test]
fn open_rebuilds_over_invalid_artifact() {
    let scratch = Scratch::new("rebuild");
    let spec = hybrid_spec();
    let path = seeded(&scratch, &spec);
    std::fs::write(&path, "not json\n{}\n").expect("rewrite");

    let session = Session::open(&spec, &scratch.cache()).expect("rebuild");
    assert_eq!(session.stats().source.name(), "cold");
    let note = session.stats().note.clone().expect("rejection note");
    assert!(note.contains("artifact"), "note: {note}");

    // The rebuild overwrote the bad artifact: the next open is warm.
    let again = Session::open(&spec, &scratch.cache()).expect("warm");
    assert_eq!(again.stats().source.name(), "cache");
}

/// The cache key separates engines: a hybrid artifact is not offered to
/// a spec that only differs in engine, but thread count is canonicalized
/// away.
#[test]
fn cache_key_respects_canonicalization() {
    let scratch = Scratch::new("canon");
    let cache = scratch.cache();
    let spec = hybrid_spec();
    seeded(&scratch, &spec);

    let other_engine = spec.clone().with_engine(EngineKind::StFast);
    assert!(!cache.contains(&other_engine).expect("contains"));

    let other_threads = spec.clone().with_threads(Some(7));
    assert!(cache.contains(&other_threads).expect("contains"));
    let warm = Session::open(&other_threads, &cache).expect("warm open");
    assert_eq!(warm.stats().source.name(), "cache");
}
