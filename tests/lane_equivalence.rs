//! Cross-lane-width equivalence: the engines rewired onto the
//! `num::simd` lane layer (StFast quadrature, hybrid `(γ, b)` tables,
//! the Monte-Carlo weight table) must agree across lane widths within
//! the layer's 1e-12 relative gate — width 1 reproduces the historical
//! scalar bits, widths 4 and 8 agree bitwise with each other — and the
//! StFast batched sweep must stay bit-identical to its scalar loop at
//! the default width.
//!
//! Width forcing is process-global, so every test serializes on one
//! mutex and restores the environment default before releasing.

use statobd::circuits::{build_design, Benchmark, DesignConfig};
use statobd::core::{
    build_engine, ChipAnalysis, EngineSpec, HybridConfig, HybridTables, MonteCarloConfig,
    ReliabilityEngine,
};
use statobd::device::ClosedFormTech;
use statobd::num::simd::{self, LaneWidth};
use statobd::variation::{CorrelationKernel, ThicknessModelBuilder, VarianceBudget};
use std::sync::{Mutex, MutexGuard};

static WIDTH_LOCK: Mutex<()> = Mutex::new(());

/// RAII width override holding the global lock; restores the
/// environment-derived default on drop even on panic.
struct ForcedWidth(#[allow(dead_code)] MutexGuard<'static, ()>);

impl ForcedWidth {
    fn new(w: LaneWidth) -> Self {
        let guard = WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        simd::force_width(Some(w));
        ForcedWidth(guard)
    }

    fn set(&self, w: LaneWidth) {
        simd::force_width(Some(w));
    }
}

impl Drop for ForcedWidth {
    fn drop(&mut self) {
        simd::force_width(None);
    }
}

fn c1_analysis() -> ChipAnalysis {
    let built = build_design(
        Benchmark::C1,
        &DesignConfig {
            correlation_grid_side: 8,
            ..DesignConfig::default()
        },
    )
    .expect("design");
    let model = ThicknessModelBuilder::new()
        .grid(built.grid)
        .nominal(statobd::core::params::NOMINAL_THICKNESS_NM)
        .budget(
            VarianceBudget::itrs_2008(statobd::core::params::NOMINAL_THICKNESS_NM).expect("budget"),
        )
        .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
        .build()
        .expect("model");
    ChipAnalysis::new(built.spec.clone(), model, &ClosedFormTech::nominal_45nm())
        .expect("characterization")
}

/// Log-spaced sweep times over the lifetime bracket the solvers use.
fn sweep_times(n: usize) -> Vec<f64> {
    let (t_lo, t_hi) = (1e6f64, 1e12f64);
    let ratio = (t_hi / t_lo).ln();
    (0..n)
        .map(|i| t_lo * (ratio * i as f64 / (n - 1) as f64).exp())
        .collect()
}

fn max_rel_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            if x == y {
                0.0
            } else {
                (x - y).abs() / y.abs().max(f64::MIN_POSITIVE)
            }
        })
        .fold(0.0, f64::max)
}

fn assert_bitwise(a: &[f64], b: &[f64], what: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what} idx {i}: {x:e} vs {y:e}");
    }
}

/// Evaluates one batched sweep at a forced width.
fn sweep_at(
    guard: &ForcedWidth,
    w: LaneWidth,
    analysis: &ChipAnalysis,
    spec: &EngineSpec,
    ts: &[f64],
) -> Vec<f64> {
    guard.set(w);
    let mut engine = build_engine(analysis, spec).expect("engine");
    engine.failure_probabilities(ts).expect("batched sweep")
}

#[test]
fn st_fast_widths_agree_within_gate() {
    let analysis = c1_analysis();
    let ts = sweep_times(40);
    let spec = EngineSpec::default().with_threads(Some(1));
    let guard = ForcedWidth::new(LaneWidth::W1);
    let p1 = sweep_at(&guard, LaneWidth::W1, &analysis, &spec, &ts);
    let p4 = sweep_at(&guard, LaneWidth::W4, &analysis, &spec, &ts);
    let p8 = sweep_at(&guard, LaneWidth::W8, &analysis, &spec, &ts);
    assert!(p1.iter().any(|&p| p > 1e-9), "sweep covers the rising edge");
    assert!(
        max_rel_err(&p4, &p1) < 1e-12,
        "w4 vs w1: {:e}",
        max_rel_err(&p4, &p1)
    );
    assert!(
        max_rel_err(&p8, &p1) < 1e-12,
        "w8 vs w1: {:e}",
        max_rel_err(&p8, &p1)
    );
    assert_bitwise(&p4, &p8, "st_fast w4 vs w8");
}

#[test]
fn st_fast_scalar_and_batched_stay_bit_identical_per_width() {
    let analysis = c1_analysis();
    let ts = sweep_times(17);
    let spec = EngineSpec::default().with_threads(Some(1));
    let guard = ForcedWidth::new(LaneWidth::W1);
    for w in [LaneWidth::W1, LaneWidth::W4, LaneWidth::W8] {
        guard.set(w);
        let mut engine = build_engine(&analysis, &spec).expect("engine");
        let scalar: Vec<f64> = ts
            .iter()
            .map(|&t| engine.failure_probability(t).expect("scalar"))
            .collect();
        let batched = engine.failure_probabilities(&ts).expect("batched");
        assert_bitwise(&scalar, &batched, &format!("{w:?} scalar vs batched"));
    }
}

#[test]
fn hybrid_tables_widths_agree_within_gate() {
    let analysis = c1_analysis();
    let ts = sweep_times(24);
    let config = HybridConfig {
        n_gamma: 24,
        n_b: 24,
        ..HybridConfig::default()
    };
    let guard = ForcedWidth::new(LaneWidth::W1);
    let build = |w: LaneWidth| -> Vec<f64> {
        guard.set(w);
        let mut tables = HybridTables::build(&analysis, config).expect("tables");
        tables.failure_probabilities(&ts).expect("sweep")
    };
    let p1 = build(LaneWidth::W1);
    let p4 = build(LaneWidth::W4);
    let p8 = build(LaneWidth::W8);
    // The 1e-12 kernel gate compounds through table interpolation only
    // linearly; the table fill itself is the gated quadrature.
    assert!(
        max_rel_err(&p4, &p1) < 1e-11,
        "w4 vs w1: {:e}",
        max_rel_err(&p4, &p1)
    );
    assert!(
        max_rel_err(&p8, &p1) < 1e-11,
        "w8 vs w1: {:e}",
        max_rel_err(&p8, &p1)
    );
    assert_bitwise(&p4, &p8, "hybrid w4 vs w8");
}

#[test]
fn monte_carlo_weight_table_widths_agree_within_gate() {
    let analysis = c1_analysis();
    let ts = sweep_times(12);
    let spec = EngineSpec::MonteCarlo(MonteCarloConfig {
        n_chips: 200,
        ..MonteCarloConfig::default()
    })
    .with_threads(Some(1));
    let guard = ForcedWidth::new(LaneWidth::W1);
    let p1 = sweep_at(&guard, LaneWidth::W1, &analysis, &spec, &ts);
    let p4 = sweep_at(&guard, LaneWidth::W4, &analysis, &spec, &ts);
    let p8 = sweep_at(&guard, LaneWidth::W8, &analysis, &spec, &ts);
    assert!(
        max_rel_err(&p4, &p1) < 1e-12,
        "w4 vs w1: {:e}",
        max_rel_err(&p4, &p1)
    );
    assert!(
        max_rel_err(&p8, &p1) < 1e-12,
        "w8 vs w1: {:e}",
        max_rel_err(&p8, &p1)
    );
    assert_bitwise(&p4, &p8, "mc w4 vs w8");
}
