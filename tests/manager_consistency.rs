//! Cross-validation of the dynamic reliability manager against the
//! static engines — the correctness anchors of the damage model.
//!
//! * Under a **constant** operating point the effective-age identity
//!   `ξ = t/α` makes the manager's accumulated-damage P(t) reduce to the
//!   static table query at the same `t`: it must agree with a direct
//!   `Hybrid` engine built from the same table configuration to ≤1e-9
//!   relative (in practice the only difference is `Σ(dt/α)` vs `(Σdt)/α`
//!   float rounding), and with `StFast` to table-interpolation accuracy.
//! * Under a **two-phase** schedule the manager must agree with a
//!   piecewise reference: a chip whose technology model reports the
//!   harmonic-mix equivalent Weibull scale
//!   `1/α_eq = f_a/α_a + f_b/α_b` sees exactly the same per-block
//!   effective ages, so its static analysis (both the analytic `StFast`
//!   and a Monte-Carlo population) is the ground truth for the
//!   time-varying run.
//!
//! The throttle-hysteresis and checkpoint round-trip properties are unit
//! tests inside `statobd-manager` itself.

use statobd::circuits::{build_design, Benchmark, DesignConfig};
use statobd::core::{
    build_engine, params, ChipAnalysis, EngineKind, EngineSpec, HybridTables, MonteCarloConfig,
    ReliabilityEngine,
};
use statobd::device::{ClosedFormTech, ObdTechnology};
use statobd::manager::{ManagerConfig, OperatingPhase, PolicyConfig, ReliabilityManager};
use statobd::variation::{CorrelationKernel, ThicknessModelBuilder, VarianceBudget};

const YEAR_S: f64 = 3.156e7;

fn design_parts(
    benchmark: Benchmark,
    grid_side: usize,
) -> (statobd::core::ChipSpec, statobd::variation::ThicknessModel) {
    let built = build_design(
        benchmark,
        &DesignConfig {
            correlation_grid_side: grid_side,
            ..DesignConfig::default()
        },
    )
    .unwrap();
    let model = ThicknessModelBuilder::new()
        .grid(built.grid)
        .nominal(params::NOMINAL_THICKNESS_NM)
        .budget(VarianceBudget::itrs_2008(params::NOMINAL_THICKNESS_NM).unwrap())
        .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
        .build()
        .unwrap();
    (built.spec, model)
}

fn design_analysis(benchmark: Benchmark, grid_side: usize) -> ChipAnalysis {
    let (spec, model) = design_parts(benchmark, grid_side);
    ChipAnalysis::new(spec, model, &ClosedFormTech::nominal_45nm()).unwrap()
}

/// Constant-point equivalence on a benchmark design: manager P(t) vs the
/// direct `Hybrid` engine on the manager's own (widened) tables, and vs
/// `StFast`.
fn constant_point_case(benchmark: Benchmark) {
    let analysis = design_analysis(benchmark, 10);
    let tech = ClosedFormTech::nominal_45nm();
    let mut mgr = ReliabilityManager::new(
        &analysis,
        Box::new(tech),
        PolicyConfig::monitoring_only(1.0, 12.0 * YEAR_S),
        ManagerConfig::default(),
    )
    .unwrap();
    let temps: Vec<f64> = analysis
        .blocks()
        .iter()
        .map(|b| b.spec().temperature_k())
        .collect();
    let vdd = analysis.blocks()[0].spec().voltage_v();
    // Many unequal steps, so the accumulated Σ(dt/α) exercises real
    // floating-point accumulation rather than one lucky division.
    let steps = 37;
    let total_s = 9.0 * YEAR_S;
    for i in 0..steps {
        let w = 0.5 + (i % 5) as f64; // 0.5..4.5, sums to 92.5 half-units
        let dt = total_s * w / 92.5;
        mgr.step(dt, &temps, vdd).unwrap();
    }
    let t_s = mgr.damage().elapsed_s();
    let p_mgr = mgr.failure_probability_now().unwrap();

    // Direct Hybrid engine on the *same* table configuration: identical
    // grids, so the ≤1e-9 criterion is meaningful.
    let mut hybrid = HybridTables::build(&analysis, *mgr.tables().config()).unwrap();
    let p_hybrid = hybrid.failure_probability(t_s).unwrap();
    let rel = ((p_mgr - p_hybrid) / p_hybrid).abs();
    assert!(
        rel <= 1e-9,
        "{}: manager {p_mgr:.12e} vs hybrid {p_hybrid:.12e}, rel {rel:.3e}",
        benchmark.name()
    );

    // StFast evaluates the same integral without tables; agreement is
    // bounded by the bilinear interpolation error.
    let mut st_fast = build_engine(&analysis, &EngineKind::StFast.default_spec()).unwrap();
    let p_fast = st_fast.failure_probability(t_s).unwrap();
    let rel_fast = ((p_mgr - p_fast) / p_fast).abs();
    assert!(
        rel_fast < 0.02,
        "{}: manager {p_mgr:.6e} vs st_fast {p_fast:.6e}, rel {rel_fast:.3e}",
        benchmark.name()
    );
    assert_eq!(mgr.off_grid_queries(), 0);
}

#[test]
fn constant_point_matches_direct_engines_on_c1() {
    constant_point_case(Benchmark::C1);
}

#[test]
fn constant_point_matches_direct_engines_on_c3() {
    constant_point_case(Benchmark::C3);
}

/// A technology whose reported Weibull scale is the harmonic mix of the
/// base technology over a two-phase operating pattern, so a *static*
/// analysis of it is the exact reference for the manager's *time-varying*
/// run over the same pattern.
#[derive(Debug)]
struct PiecewiseEquivalentTech {
    base: ClosedFormTech,
    /// Fraction of the total time spent in phase A.
    frac_a: f64,
    /// Phase-A temperature offset (K) over the queried (phase-B) point.
    dt_a_k: f64,
    vdd_a: f64,
    vdd_b: f64,
}

impl ObdTechnology for PiecewiseEquivalentTech {
    fn alpha(&self, t_k: f64, _vdd_v: f64) -> f64 {
        let inv_a = self.frac_a / self.base.alpha(t_k + self.dt_a_k, self.vdd_a);
        let inv_b = (1.0 - self.frac_a) / self.base.alpha(t_k, self.vdd_b);
        1.0 / (inv_a + inv_b)
    }

    fn b(&self, t_k: f64) -> f64 {
        self.base.b(t_k)
    }
}

#[test]
fn two_phase_schedule_matches_piecewise_references() {
    let (spec, model) = design_parts(Benchmark::C1, 8);
    let base = ClosedFormTech::nominal_45nm();
    let analysis = ChipAnalysis::new(spec.clone(), model.clone(), &base).unwrap();
    let spec_temps: Vec<f64> = analysis
        .blocks()
        .iter()
        .map(|b| b.spec().temperature_k())
        .collect();
    let vdd = analysis.blocks()[0].spec().voltage_v();

    // Phase A: hot turbo burst. Phase B: the specification point, last,
    // so the manager's final `b` ordinate matches the static reference.
    let total_s = 8.0 * YEAR_S;
    let frac_a = 0.3;
    let dt_a_k = 12.0;
    let vdd_a = vdd * 1.05;
    let phase_a = OperatingPhase {
        name: "turbo".to_string(),
        duration_s: frac_a * total_s,
        temps_k: spec_temps.iter().map(|t| t + dt_a_k).collect(),
        vdd_v: vdd_a,
    };
    let phase_b = OperatingPhase {
        name: "typical".to_string(),
        duration_s: (1.0 - frac_a) * total_s,
        temps_k: spec_temps.clone(),
        vdd_v: vdd,
    };

    let mut mgr = ReliabilityManager::new(
        &analysis,
        Box::new(base),
        PolicyConfig::monitoring_only(1.0, 12.0 * YEAR_S),
        ManagerConfig::default(),
    )
    .unwrap();
    mgr.run_phase(&phase_a, 7).unwrap();
    mgr.run_phase(&phase_b, 11).unwrap();
    let p_mgr = mgr.failure_probability_now().unwrap();

    // The equivalent static chip: same spec and variation model, but the
    // technology reports the two-phase harmonic-mix α. Its per-block
    // effective age at `total_s` is identical to the manager's.
    let eq_tech = PiecewiseEquivalentTech {
        base,
        frac_a,
        dt_a_k,
        vdd_a,
        vdd_b: vdd,
    };
    let eq_analysis = ChipAnalysis::new(spec, model, &eq_tech).unwrap();
    for (mgr_xi, block) in mgr
        .damage()
        .effective_ages()
        .iter()
        .zip(eq_analysis.blocks())
    {
        let eq_xi = total_s / block.alpha_s();
        let rel = ((mgr_xi - eq_xi) / eq_xi).abs();
        assert!(
            rel < 1e-12,
            "effective-age mismatch: manager {mgr_xi:.9e} vs equivalent {eq_xi:.9e}"
        );
    }

    // Analytic piecewise reference.
    let mut st_fast = build_engine(&eq_analysis, &EngineKind::StFast.default_spec()).unwrap();
    let p_fast = st_fast.failure_probability(total_s).unwrap();
    let rel_fast = ((p_mgr - p_fast) / p_fast).abs();
    assert!(
        rel_fast < 0.02,
        "manager {p_mgr:.6e} vs piecewise st_fast {p_fast:.6e}, rel {rel_fast:.3e}"
    );

    // Monte-Carlo piecewise reference: a sampled chip population under
    // the equivalent technology.
    let mc_spec = EngineSpec::MonteCarlo(MonteCarloConfig {
        n_chips: 2000,
        ..Default::default()
    });
    let mut mc = build_engine(&eq_analysis, &mc_spec).unwrap();
    let p_mc = mc.failure_probability(total_s).unwrap();
    let rel_mc = ((p_mgr - p_mc) / p_mc).abs();
    assert!(
        rel_mc < 0.15,
        "manager {p_mgr:.6e} vs piecewise MC {p_mc:.6e}, rel {rel_mc:.3e}"
    );
}
