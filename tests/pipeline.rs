//! End-to-end integration tests: floorplan → power → thermal → variation
//! model → BLOD → reliability engines, across all workspace crates.

use statobd::circuits::{build_design, Benchmark, DesignConfig};
use statobd::core::{
    params, solve_lifetime, ChipAnalysis, GuardBand, GuardBandConfig, HybridConfig, HybridTables,
    MonteCarlo, MonteCarloConfig, ReliabilityEngine, StClosed, StFast, StFastConfig, StMc,
    StMcConfig,
};
use statobd::device::{ClosedFormTech, TableTech};
use statobd::thermal::ThermalConfig;
use statobd::variation::{
    CorrelationKernel, ThicknessModel, ThicknessModelBuilder, VarianceBudget,
};

fn quick_design_config() -> DesignConfig {
    DesignConfig {
        correlation_grid_side: 8,
        thermal: ThermalConfig {
            nx: 32,
            ny: 32,
            ..ThermalConfig::default()
        },
        ..DesignConfig::default()
    }
}

fn model_for(built: &statobd::circuits::BuiltDesign) -> ThicknessModel {
    ThicknessModelBuilder::new()
        .grid(built.grid)
        .nominal(params::NOMINAL_THICKNESS_NM)
        .budget(VarianceBudget::itrs_2008(params::NOMINAL_THICKNESS_NM).unwrap())
        .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
        .build()
        .unwrap()
}

/// A small analysis used by most tests (kept light: these run in debug).
fn small_analysis() -> ChipAnalysis {
    let built = build_design(Benchmark::C1, &quick_design_config()).unwrap();
    // Shrink the device counts 10x for debug-speed MC while keeping the
    // block structure.
    let mut spec = statobd::core::ChipSpec::new();
    for b in built.spec.blocks() {
        spec.add_block(
            statobd::core::BlockSpec::new(
                b.name(),
                b.area() / 10.0,
                (b.m_devices() / 10).max(2),
                b.temperature_k(),
                b.voltage_v(),
                b.grid_weights().to_vec(),
            )
            .unwrap(),
        )
        .unwrap();
    }
    let model = model_for(&built);
    ChipAnalysis::new(spec, model, &ClosedFormTech::nominal_45nm()).unwrap()
}

#[test]
fn full_pipeline_produces_consistent_engines() {
    let analysis = small_analysis();
    let mut fast = StFast::new(&analysis, StFastConfig::default());
    let mut closed = StClosed::new(&analysis);
    let mut smc = StMc::new(
        &analysis,
        StMcConfig {
            n_samples: 5000,
            ..Default::default()
        },
    )
    .unwrap();
    let mut hybrid = HybridTables::build(
        &analysis,
        HybridConfig {
            n_gamma: 60,
            n_b: 20,
            ..Default::default()
        },
    )
    .unwrap();

    // All statistical engines agree on P(t) within a few percent over the
    // lifetime window.
    for &t in &[1e8, 1e9, 5e9] {
        let p_fast = fast.failure_probability(t).unwrap();
        let p_closed = closed.failure_probability(t).unwrap();
        let p_smc = smc.failure_probability(t).unwrap();
        let p_hyb = hybrid.failure_probability(t).unwrap();
        assert!(p_fast > 0.0);
        for (name, p) in [("st_closed", p_closed), ("st_MC", p_smc), ("hybrid", p_hyb)] {
            let rel = ((p - p_fast) / p_fast).abs();
            assert!(rel < 0.08, "{name} at t={t:e}: {p:e} vs st_fast {p_fast:e}");
        }
    }
}

#[test]
fn statistical_lifetime_matches_monte_carlo_reference() {
    let analysis = small_analysis();
    let mut fast = StFast::new(&analysis, StFastConfig::default());
    let mut mc = MonteCarlo::build(
        &analysis,
        MonteCarloConfig {
            n_chips: 300,
            ..Default::default()
        },
    )
    .unwrap();
    let t_fast = solve_lifetime(&mut fast, params::TEN_PER_MILLION, (1e6, 1e12)).unwrap();
    let t_mc = solve_lifetime(&mut mc, params::TEN_PER_MILLION, (1e6, 1e12)).unwrap();
    let rel = ((t_fast - t_mc) / t_mc).abs();
    assert!(
        rel < 0.05,
        "st_fast {t_fast:e} vs MC {t_mc:e} (rel {rel:.3})"
    );
}

#[test]
fn guard_band_is_most_pessimistic_temp_unaware_in_between() {
    // The Fig. 10 ordering: guard < temp-unaware < temp-aware ≈ truth.
    let analysis = small_analysis();
    let mut fast = StFast::new(&analysis, StFastConfig::default());
    let t_aware = solve_lifetime(&mut fast, params::TEN_PER_MILLION, (1e6, 1e12)).unwrap();

    let unaware_spec = analysis.spec().with_uniform_worst_temperature().unwrap();
    let unaware = ChipAnalysis::new(
        unaware_spec,
        analysis.model().clone(),
        &ClosedFormTech::nominal_45nm(),
    )
    .unwrap();
    let mut fast_unaware = StFast::new(&unaware, StFastConfig::default());
    let t_unaware =
        solve_lifetime(&mut fast_unaware, params::TEN_PER_MILLION, (1e6, 1e12)).unwrap();

    let guard = GuardBand::new(&analysis, GuardBandConfig::default()).unwrap();
    let t_guard = guard.lifetime(params::TEN_PER_MILLION).unwrap();

    assert!(
        t_guard < t_unaware && t_unaware < t_aware,
        "ordering violated: guard {t_guard:e}, unaware {t_unaware:e}, aware {t_aware:e}"
    );
}

#[test]
fn table_tech_reproduces_closed_form_through_the_whole_pipeline() {
    let built = build_design(Benchmark::C1, &quick_design_config()).unwrap();
    let model = model_for(&built);
    let cf = ClosedFormTech::nominal_45nm();
    let table = TableTech::from_model(&cf, 300.0, 430.0, 261, 1.2, 40.0).unwrap();

    let a_cf = ChipAnalysis::new(built.spec.clone(), model.clone(), &cf).unwrap();
    let a_tab = ChipAnalysis::new(built.spec.clone(), model, &table).unwrap();
    let mut e_cf = StFast::new(&a_cf, StFastConfig::default());
    let mut e_tab = StFast::new(&a_tab, StFastConfig::default());
    let t = 1e9;
    let p_cf = e_cf.failure_probability(t).unwrap();
    let p_tab = e_tab.failure_probability(t).unwrap();
    let rel = ((p_cf - p_tab) / p_cf).abs();
    assert!(rel < 0.02, "closed-form {p_cf:e} vs table {p_tab:e}");
}

#[test]
fn hybrid_tables_survive_disk_round_trip() {
    let analysis = small_analysis();
    let mut tables = HybridTables::build(
        &analysis,
        HybridConfig {
            n_gamma: 40,
            n_b: 10,
            ..Default::default()
        },
    )
    .unwrap();
    let json = tables.to_json().unwrap();
    let dir = std::env::temp_dir().join("statobd_test_tables.json");
    std::fs::write(&dir, &json).unwrap();
    let loaded = std::fs::read_to_string(&dir).unwrap();
    std::fs::remove_file(&dir).ok();
    let mut restored = HybridTables::from_json(&loaded).unwrap();
    for &t in &[1e8, 1e9, 1e10] {
        let a = tables.failure_probability(t).unwrap();
        let b = restored.failure_probability(t).unwrap();
        assert!(((a - b) / a.max(1e-300)).abs() < 1e-9);
    }
}

#[test]
fn temperature_feeds_through_to_reliability() {
    // Hotter thermal environment (higher ambient) must shorten the
    // statistical lifetime.
    let cool_cfg = quick_design_config();
    let mut hot_cfg = quick_design_config();
    hot_cfg.thermal.ambient_k += 15.0;

    let tech = ClosedFormTech::nominal_45nm();
    let mut lifetimes = Vec::new();
    for cfg in [cool_cfg, hot_cfg] {
        let built = build_design(Benchmark::C1, &cfg).unwrap();
        let model = model_for(&built);
        let analysis = ChipAnalysis::new(built.spec.clone(), model, &tech).unwrap();
        let mut fast = StFast::new(&analysis, StFastConfig::default());
        lifetimes.push(solve_lifetime(&mut fast, 1e-6, (1e5, 1e12)).unwrap());
    }
    assert!(
        lifetimes[1] < lifetimes[0],
        "hotter ambient should shorten lifetime: {lifetimes:?}"
    );
}

#[test]
fn voltage_feeds_through_to_reliability() {
    let built = build_design(Benchmark::C1, &quick_design_config()).unwrap();
    let model = model_for(&built);
    let tech = ClosedFormTech::nominal_45nm();
    let mut lifetimes = Vec::new();
    for vdd in [1.2, 1.26] {
        let cfg = DesignConfig {
            vdd_v: vdd,
            ..quick_design_config()
        };
        let built_v = build_design(Benchmark::C1, &cfg).unwrap();
        let analysis = ChipAnalysis::new(built_v.spec.clone(), model.clone(), &tech).unwrap();
        let mut fast = StFast::new(&analysis, StFastConfig::default());
        lifetimes.push(solve_lifetime(&mut fast, 1e-6, (1e4, 1e12)).unwrap());
    }
    // 5% more VDD with a ~40x power law => far shorter life.
    assert!(lifetimes[1] < lifetimes[0] * 0.5, "{lifetimes:?}");
    let _ = built;
}
