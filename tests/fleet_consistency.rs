//! Fleet-simulation consistency: the sharded streaming reducer must agree
//! chip-by-chip with a direct evaluation through the public per-instance
//! APIs, and its aggregates must be bit-identical across every thread and
//! shard layout — at every lane width, with the lane-tiled path agreeing
//! with the scalar reference within the 1e-12 cross-path gate.
//!
//! Lane-width forcing is process-global, so every test serializes on one
//! mutex and restores the environment default before releasing.

use statobd::core::{conditional_block_failure, Composition, GCoefficients, WeakestLink};
use statobd::device::{ClosedFormTech, ObdTechnology};
use statobd::manager::MissionProfile;
use statobd::num::json;
use statobd::num::rng::{Rng, Xoshiro256pp};
use statobd::num::simd::{self, LaneWidth};
use statobd::variation::FieldSampler;
use statobd::{chip_outcomes, run_fleet, AnalysisSpec, FleetConfig, Session, FLEET_LIFE_BRACKET_S};
use std::sync::{Mutex, MutexGuard};

static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn width_guard() -> MutexGuard<'static, ()> {
    WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII width override holding the global lock; restores the
/// environment-derived default on drop even on panic.
struct ForcedWidth(#[allow(dead_code)] MutexGuard<'static, ()>);

impl ForcedWidth {
    fn new(w: LaneWidth) -> Self {
        let guard = width_guard();
        simd::force_width(Some(w));
        ForcedWidth(guard)
    }

    fn set(&self, w: LaneWidth) {
        simd::force_width(Some(w));
    }
}

impl Drop for ForcedWidth {
    fn drop(&mut self) {
        simd::force_width(None);
    }
}

fn session() -> Session {
    let mut chip = statobd::core::ChipSpec::new();
    chip.add_block(
        statobd::core::BlockSpec::new(
            "core",
            50_000.0,
            50_000,
            368.15,
            1.2,
            vec![(0, 0.4), (7, 0.6)],
        )
        .unwrap(),
    )
    .unwrap();
    chip.add_block(
        statobd::core::BlockSpec::new("cache", 90_000.0, 90_000, 341.15, 1.2, vec![(20, 1.0)])
            .unwrap(),
    )
    .unwrap();
    Session::build(&AnalysisSpec::chip(chip).with_grid_side(6)).unwrap()
}

fn config(chips: u64) -> FleetConfig {
    FleetConfig {
        chips,
        profile: MissionProfile::datacenter(),
        seed: 2718,
        threads: Some(1),
        ..FleetConfig::default()
    }
}

/// Per-block mission constants derived independently of the fleet module,
/// straight from the public technology and profile APIs.
struct RefBlock {
    coeff_mission: GCoefficients,
    ln_rate: f64,
    b_eff: f64,
    area: f64,
}

fn reference_blocks(session: &Session, config: &FleetConfig) -> Vec<RefBlock> {
    let tech = ClosedFormTech::nominal_45nm();
    let mission_s = config.profile.mission_s();
    session
        .analysis()
        .blocks()
        .iter()
        .map(|block| {
            let t_spec = block.spec().temperature_k();
            let mut xi = 0.0;
            let mut t_weighted = 0.0;
            for phase in config.profile.phases() {
                let t_k = t_spec + phase.dt_k;
                xi += phase.duration_s / tech.alpha(t_k, phase.vdd_v);
                t_weighted += phase.duration_s * t_k;
            }
            let b_eff = tech.b(t_weighted / mission_s);
            RefBlock {
                coeff_mission: GCoefficients::from_gamma(xi.ln(), b_eff),
                ln_rate: (xi / mission_s).ln(),
                b_eff,
                area: block.spec().area(),
            }
        })
        .collect()
}

/// The chip log-survival at age `t_s` under steady mission repetition —
/// the quantity the fleet's lifetime solve bisects.
fn ln_survival_at(t_s: f64, u: &[f64], v: &[f64], blocks: &[RefBlock]) -> f64 {
    let x = t_s.ln();
    let mut s = 0.0;
    for (j, b) in blocks.iter().enumerate() {
        let gamma = b.ln_rate + x;
        let ln_g = gamma * (b.b_eff * u[j]) + 0.5 * gamma * gamma * (b.b_eff * b.b_eff * v[j]);
        let p = -(-b.area * ln_g.exp()).exp_m1();
        s += (-p.clamp(0.0, 1.0)).ln_1p();
    }
    s
}

/// Replays the documented sampling contract through the public APIs and
/// checks every fleet outcome against it: mission-end probability within
/// `1e-12` relative, exact weakest-block index, censoring flags pinned to
/// the bracket edges, and uncensored lifetimes sitting on the budget.
/// Run at each lane width this is the tiled-vs-scalar gate — the replay
/// *is* the scalar reference computation.
fn check_outcomes_against_direct(session: &Session, config: &FleetConfig, chips: u64, what: &str) {
    let tech = ClosedFormTech::nominal_45nm();
    let outcomes = chip_outcomes(session.analysis(), &tech, config, chips).unwrap();
    assert_eq!(outcomes.len(), chips as usize);

    let blocks = reference_blocks(session, config);
    let model = session.analysis().model();
    let base = Xoshiro256pp::seed_from_u64(config.seed);
    let mut censored_seen = 0;
    for (chip, outcome) in outcomes.iter().enumerate() {
        // Replay the documented draw order: wafer position, then the
        // principal components — through the allocating sample_die path,
        // which is draw-for-draw identical to the fleet's sample_z_into.
        let mut rng = base.substream(chip as u64);
        let x = rng.gen_range(0.0..1.0);
        let y = rng.gen_range(0.0..1.0);
        let offset = config.wafer.offset(x, y);
        let die = FieldSampler::new(model).sample_die(&mut rng);

        let mut weakest_link = WeakestLink::new();
        let mut weakest = (0usize, f64::NEG_INFINITY);
        let mut u_blocks = Vec::new();
        let mut v_blocks = Vec::new();
        for (j, (block, rb)) in session.analysis().blocks().iter().zip(&blocks).enumerate() {
            let (u, v) = block.moments().uv_given_z(&die.z);
            let u = u + offset;
            let p = conditional_block_failure(rb.area, rb.coeff_mission.g(u, v));
            weakest_link.absorb(p);
            if p > weakest.1 {
                weakest = (j, p);
            }
            u_blocks.push(u);
            v_blocks.push(v);
        }
        let p_ref = weakest_link.failure_probability();
        let rel = ((outcome.p_mission - p_ref) / p_ref.max(f64::MIN_POSITIVE)).abs();
        assert!(
            rel <= 1e-12,
            "{what} chip {chip}: fleet P {} vs direct {} (rel {rel:.3e})",
            outcome.p_mission,
            p_ref
        );
        assert_eq!(
            outcome.weakest_block, weakest.0,
            "{what} chip {chip}: weakest-block index"
        );

        // The reported lifetime must put the chip exactly at the budget
        // (unless censored at a bracket edge).
        if outcome.censored_low || outcome.censored_high {
            censored_seen += 1;
            let edge = if outcome.censored_low {
                FLEET_LIFE_BRACKET_S.0
            } else {
                FLEET_LIFE_BRACKET_S.1
            };
            assert_eq!(
                outcome.lifetime_s, edge,
                "{what} chip {chip}: censored edge"
            );
        } else {
            let target = (-config.budget).ln_1p();
            let at_life = ln_survival_at(outcome.lifetime_s, &u_blocks, &v_blocks, &blocks);
            let rel = ((at_life - target) / target).abs();
            assert!(
                rel <= 1e-9,
                "{what} chip {chip}: ln-survival at reported lifetime {} deviates {rel:.3e}",
                outcome.lifetime_s
            );
            assert!(outcome.lifetime_s > FLEET_LIFE_BRACKET_S.0);
            assert!(outcome.lifetime_s < FLEET_LIFE_BRACKET_S.1);
        }
    }
    // The tiny fleet exercises the uncensored path at minimum; censoring
    // is allowed but must have been consistent when it appeared.
    assert!(
        censored_seen < chips,
        "{what}: every chip censored — solve is broken"
    );
}

/// The per-chip cross-check at every lane width: width 1 is the scalar
/// reference itself; widths 4 and 8 run the lane-tiled path (67 chips
/// leaves a ragged 3-chip scalar tail at width 8) and must agree with
/// the direct replay chip by chip, censoring flags and weakest-block
/// index included.
#[test]
fn fleet_matches_direct_per_chip_evaluation_at_every_width() {
    let session = session();
    let config = config(67);
    let guard = ForcedWidth::new(LaneWidth::W1);
    for w in [LaneWidth::W1, LaneWidth::W4, LaneWidth::W8] {
        guard.set(w);
        check_outcomes_against_direct(&session, &config, 67, &format!("{w:?}"));
    }
}

#[test]
fn streaming_aggregates_match_per_chip_outcomes() {
    let _width = width_guard();
    let session = session();
    let config = config(300);
    let tech = ClosedFormTech::nominal_45nm();
    let outcomes = chip_outcomes(session.analysis(), &tech, &config, 300).unwrap();
    let report = run_fleet(session.analysis(), &tech, &config).unwrap();
    let a = &report.aggregates;

    let exceed = outcomes
        .iter()
        .filter(|o| o.p_mission > config.budget)
        .count() as u64;
    assert_eq!(a.exceed_budget, exceed);
    assert_eq!(
        a.censored_low,
        outcomes.iter().filter(|o| o.censored_low).count() as u64
    );
    assert_eq!(
        a.censored_high,
        outcomes.iter().filter(|o| o.censored_high).count() as u64
    );
    for (j, count) in a.weakest_counts.iter().enumerate() {
        let direct = outcomes.iter().filter(|o| o.weakest_block == j).count() as u64;
        assert_eq!(*count, direct, "weakest count of block {j}");
    }
    let life_min = outcomes
        .iter()
        .map(|o| o.lifetime_s)
        .fold(f64::MAX, f64::min);
    let life_max = outcomes
        .iter()
        .map(|o| o.lifetime_s)
        .fold(f64::MIN, f64::max);
    assert_eq!(a.lifetime_min_s.to_bits(), life_min.to_bits());
    assert_eq!(a.lifetime_max_s.to_bits(), life_max.to_bits());

    // Quantiles come from histogram counts: each reported quantile must
    // sit within one (log-space) bin of the exact order statistic.
    let mut lives: Vec<f64> = outcomes.iter().map(|o| o.lifetime_s.log10()).collect();
    lives.sort_by(f64::total_cmp);
    for (q, est) in a.quantile_levels.iter().zip(&a.lifetime_quantiles_s) {
        let idx = ((q * lives.len() as f64) as usize).min(lives.len() - 1);
        let exact = lives[idx];
        assert!(
            (est.log10() - exact).abs() <= 0.1,
            "lifetime q={q}: {} vs exact 10^{exact}",
            est
        );
    }
}

/// At every fixed lane width the aggregates must be bit-identical over
/// the full 3×3 thread × shard matrix — the tiled path inherits the
/// scalar path's layout-independence because tile membership is a pure
/// function of `(chip, chips, W)`, never of the shard boundaries.
#[test]
fn aggregates_are_bit_identical_across_threads_and_shards_at_every_width() {
    let session = session();
    let tech = ClosedFormTech::nominal_45nm();
    let guard = ForcedWidth::new(LaneWidth::W1);
    for w in [LaneWidth::W1, LaneWidth::W4, LaneWidth::W8] {
        guard.set(w);
        let mut reference: Option<String> = None;
        for threads in [1usize, 2, 8] {
            for shards in [1usize, 2, 5] {
                let config = FleetConfig {
                    threads: Some(threads),
                    shards: Some(shards),
                    ..config(1000)
                };
                let report = run_fleet(session.analysis(), &tech, &config).unwrap();
                assert!(
                    report.workspaces_created <= report.shards,
                    "{w:?} threads={threads} shards={shards}: allocated per chip"
                );
                assert_eq!(report.lane_width, w.lanes() as u64);
                let rendered = json::to_string(&report.aggregates);
                match &reference {
                    None => reference = Some(rendered),
                    Some(r) => assert_eq!(
                        r, &rendered,
                        "aggregates diverged at {w:?} threads={threads} shards={shards}"
                    ),
                }
            }
        }
    }
}

/// Cross-width agreement on the aggregate surface: float statistics
/// within 1e-12 relative, discrete counts exactly equal (this seed puts
/// no chip within the gate of the budget threshold), and the lane-tile
/// count reflecting the dispatch.
#[test]
fn aggregates_agree_across_lane_widths() {
    let session = session();
    let tech = ClosedFormTech::nominal_45nm();
    // 1003 chips: ragged tails at both width 4 (3 chips) and width 8
    // (3 chips after 125 tiles), exercising tile + scalar mixing.
    let config = config(1003);
    let guard = ForcedWidth::new(LaneWidth::W1);
    let report_at = |w: LaneWidth| {
        guard.set(w);
        run_fleet(session.analysis(), &tech, &config).unwrap()
    };
    let r1 = report_at(LaneWidth::W1);
    let r4 = report_at(LaneWidth::W4);
    let r8 = report_at(LaneWidth::W8);
    assert_eq!(r1.lane_tiles, 0, "width 1 runs no lane tiles");
    assert_eq!(r4.lane_tiles, 1003 / 4);
    assert_eq!(r8.lane_tiles, 1003 / 8);

    let rel = |a: f64, b: f64| {
        if a == b {
            0.0
        } else {
            (a - b).abs() / b.abs().max(f64::MIN_POSITIVE)
        }
    };
    for r in [&r4, &r8] {
        let (a, b) = (&r.aggregates, &r1.aggregates);
        assert_eq!(a.exceed_budget, b.exceed_budget);
        assert_eq!(a.censored_low, b.censored_low);
        assert_eq!(a.censored_high, b.censored_high);
        assert_eq!(a.weakest_counts, b.weakest_counts);
        for (x, y) in [
            (a.lifetime_min_s, b.lifetime_min_s),
            (a.lifetime_max_s, b.lifetime_max_s),
            (a.p_mission_min, b.p_mission_min),
            (a.p_mission_max, b.p_mission_max),
        ] {
            assert!(rel(x, y) <= 1e-12, "extreme {x:e} vs {y:e}");
        }
        for (x, y) in a.lifetime_quantiles_s.iter().zip(&b.lifetime_quantiles_s) {
            assert!(rel(*x, *y) <= 1e-9, "lifetime quantile {x:e} vs {y:e}");
        }
        for (x, y) in a.p_mission_quantiles.iter().zip(&b.p_mission_quantiles) {
            assert!(rel(*x, *y) <= 1e-9, "p quantile {x:e} vs {y:e}");
        }
    }
}

/// With one spare over the two blocks, every chip's mission-end failure
/// probability must equal the analytic 1-out-of-2 Poisson-binomial of
/// the replayed per-block probabilities — and the grouped run must hold
/// the scalar dispatch even under a forced wide lane width, which is
/// what makes its aggregates lane-width-independent.
#[test]
fn spares_outcomes_match_direct_composition_and_stay_scalar() {
    let session = session();
    let tech = ClosedFormTech::nominal_45nm();
    let config = FleetConfig {
        spares: 1,
        ..config(67)
    };
    let guard = ForcedWidth::new(LaneWidth::W8);

    let report = run_fleet(session.analysis(), &tech, &config).unwrap();
    assert_eq!(report.lane_width, 1, "grouped runs must dispatch scalar");
    assert_eq!(report.lane_tiles, 0);

    let outcomes = chip_outcomes(session.analysis(), &tech, &config, 67).unwrap();
    let blocks = reference_blocks(&session, &config);
    let model = session.analysis().model();
    let base = Xoshiro256pp::seed_from_u64(config.seed);
    let composition = Composition::uniform_spares(blocks.len(), 1);
    for (chip, outcome) in outcomes.iter().enumerate() {
        let mut rng = base.substream(chip as u64);
        let x = rng.gen_range(0.0..1.0);
        let y = rng.gen_range(0.0..1.0);
        let offset = config.wafer.offset(x, y);
        let die = FieldSampler::new(model).sample_die(&mut rng);

        let mut weakest_link = WeakestLink::new();
        let mut ps = Vec::new();
        for (block, rb) in session.analysis().blocks().iter().zip(&blocks) {
            let (u, v) = block.moments().uv_given_z(&die.z);
            let p = conditional_block_failure(rb.area, rb.coeff_mission.g(u + offset, v));
            weakest_link.absorb(p);
            ps.push(p);
        }
        let p_grouped = composition.compose(&ps);
        let rel = ((outcome.p_mission - p_grouped) / p_grouped.max(f64::MIN_POSITIVE)).abs();
        assert!(
            rel <= 1e-12,
            "chip {chip}: fleet grouped P {} vs direct {} (rel {rel:.3e})",
            outcome.p_mission,
            p_grouped
        );
        assert!(
            outcome.p_mission <= weakest_link.failure_probability(),
            "chip {chip}: a spare cannot raise the failure probability"
        );
    }
    drop(guard);
}

/// Two blocks with identical geometry, environment and grid weights tie
/// exactly in mission-end failure probability on every chip; the
/// weakest-block argmax must resolve to the lowest index on the scalar
/// and the lane-tiled path alike.
#[test]
fn weakest_block_ties_resolve_to_lowest_index_at_every_width() {
    let mut chip = statobd::core::ChipSpec::new();
    for name in ["twin_a", "twin_b"] {
        chip.add_block(
            statobd::core::BlockSpec::new(name, 70_000.0, 70_000, 358.15, 1.2, vec![(8, 1.0)])
                .unwrap(),
        )
        .unwrap();
    }
    let session = Session::build(&AnalysisSpec::chip(chip).with_grid_side(6)).unwrap();
    let tech = ClosedFormTech::nominal_45nm();
    let config = config(96);
    let guard = ForcedWidth::new(LaneWidth::W1);
    for w in [LaneWidth::W1, LaneWidth::W4, LaneWidth::W8] {
        guard.set(w);
        let report = run_fleet(session.analysis(), &tech, &config).unwrap();
        assert_eq!(
            report.aggregates.weakest_counts,
            vec![96, 0],
            "{w:?}: tie must resolve to block 0 on every chip"
        );
    }
}
