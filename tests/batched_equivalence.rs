//! Batched-vs-scalar equivalence: for every engine kind,
//! `failure_probabilities(ts)` must be **bit-identical** to the scalar
//! `failure_probability` loop — at any worker-thread count. This is the
//! contract that lets `solve_lifetime`, `failure_rate_curve` and the
//! benchmarks route everything through the batched API without changing a
//! single reported number.

use statobd::circuits::{build_design, Benchmark, DesignConfig};
use statobd::core::{build_engine, ChipAnalysis, EngineKind, EngineSpec, MonteCarloConfig};
use statobd::device::ClosedFormTech;
use statobd::variation::{CorrelationKernel, ThicknessModelBuilder, VarianceBudget};

fn c1_analysis() -> ChipAnalysis {
    let built = build_design(
        Benchmark::C1,
        &DesignConfig {
            correlation_grid_side: 8,
            ..DesignConfig::default()
        },
    )
    .expect("design");
    let model = ThicknessModelBuilder::new()
        .grid(built.grid)
        .nominal(statobd::core::params::NOMINAL_THICKNESS_NM)
        .budget(
            VarianceBudget::itrs_2008(statobd::core::params::NOMINAL_THICKNESS_NM).expect("budget"),
        )
        .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
        .build()
        .expect("model");
    ChipAnalysis::new(built.spec.clone(), model, &ClosedFormTech::nominal_45nm())
        .expect("characterization")
}

/// A small Monte-Carlo configuration keeps the six-engine × three-thread
/// sweep fast while still exercising the chunked parallel evaluation.
fn spec_for(kind: EngineKind, threads: usize) -> EngineSpec {
    let spec = match kind {
        EngineKind::MonteCarlo => EngineSpec::MonteCarlo(MonteCarloConfig {
            n_chips: 300,
            ..Default::default()
        }),
        other => other.default_spec(),
    };
    spec.with_threads(Some(threads))
}

#[test]
fn batched_matches_scalar_loop_for_every_engine_at_any_thread_count() {
    let analysis = c1_analysis();
    // Log-spaced sweep wide enough to hit P ~ 0 and P ~ 1 regions, with an
    // awkward length (not a multiple of any internal chunking).
    let ts: Vec<f64> = (0..37).map(|i| 10f64.powf(5.0 + i as f64 * 0.2)).collect();

    for kind in EngineKind::ALL {
        // Scalar reference at one thread.
        let mut reference = build_engine(&analysis, &spec_for(kind, 1)).expect("engine");
        let scalar: Vec<f64> = ts
            .iter()
            .map(|&t| reference.failure_probability(t).expect("scalar P(t)"))
            .collect();
        assert!(
            scalar.iter().any(|&p| p > 0.0),
            "{kind}: degenerate scalar curve"
        );

        for threads in [1usize, 2, 8] {
            let mut engine = build_engine(&analysis, &spec_for(kind, threads)).expect("engine");
            let batched = engine.failure_probabilities(&ts).expect("batched P(t)");
            assert_eq!(batched.len(), ts.len(), "{kind}: wrong batch length");
            for (i, (&a, &b)) in scalar.iter().zip(&batched).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "{kind}: P(t[{i}]) differs at {threads} threads: scalar {a:e} vs batched {b:e}"
                );
            }
        }
    }
}

/// Degenerate sweeps must behave: empty input, a single point, and
/// repeated identical points.
#[test]
fn batched_handles_degenerate_sweeps() {
    let analysis = c1_analysis();
    for kind in EngineKind::ALL {
        let mut engine = build_engine(&analysis, &spec_for(kind, 2)).expect("engine");
        assert!(
            engine.failure_probabilities(&[]).expect("empty").is_empty(),
            "{kind}: empty sweep"
        );
        let single = engine.failure_probabilities(&[1e9]).expect("single");
        let scalar = engine.failure_probability(1e9).expect("scalar");
        assert_eq!(single.len(), 1);
        assert!(
            single[0].to_bits() == scalar.to_bits(),
            "{kind}: single-point batch differs from scalar"
        );
        let repeated = engine.failure_probabilities(&[1e9; 5]).expect("repeated");
        assert!(
            repeated.iter().all(|p| p.to_bits() == scalar.to_bits()),
            "{kind}: repeated points differ"
        );
    }
}
