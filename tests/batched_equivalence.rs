//! Batched-vs-scalar equivalence: for every engine kind,
//! `failure_probabilities(ts)` must be **bit-identical** to the scalar
//! `failure_probability` loop — at any worker-thread count. This is the
//! contract that lets `solve_lifetime`, `failure_rate_curve` and the
//! benchmarks route everything through the batched API without changing a
//! single reported number.

use statobd::circuits::{build_design, Benchmark, DesignConfig};
use statobd::core::{build_engine, ChipAnalysis, EngineKind, EngineSpec, MonteCarloConfig};
use statobd::core::{ReliabilityEngine, StMc, StMcConfig};
use statobd::device::ClosedFormTech;
use statobd::num::simd::{self, LaneWidth};
use statobd::variation::{CorrelationKernel, ThicknessModelBuilder, VarianceBudget};
use std::sync::{Mutex, MutexGuard};

/// Lane-width forcing is process-global, so the cross-width test holds
/// this lock while overriding and every other test holds it plainly —
/// otherwise a width flip mid-test could change an engine's lane
/// dispatch between its scalar reference and batched evaluation.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

fn width_guard() -> MutexGuard<'static, ()> {
    WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII width override; restores the environment default on drop.
struct ForcedWidth(#[allow(dead_code)] MutexGuard<'static, ()>);

impl ForcedWidth {
    fn new(w: LaneWidth) -> Self {
        let guard = width_guard();
        simd::force_width(Some(w));
        ForcedWidth(guard)
    }

    fn set(&self, w: LaneWidth) {
        simd::force_width(Some(w));
    }
}

impl Drop for ForcedWidth {
    fn drop(&mut self) {
        simd::force_width(None);
    }
}

fn c1_analysis() -> ChipAnalysis {
    let built = build_design(
        Benchmark::C1,
        &DesignConfig {
            correlation_grid_side: 8,
            ..DesignConfig::default()
        },
    )
    .expect("design");
    let model = ThicknessModelBuilder::new()
        .grid(built.grid)
        .nominal(statobd::core::params::NOMINAL_THICKNESS_NM)
        .budget(
            VarianceBudget::itrs_2008(statobd::core::params::NOMINAL_THICKNESS_NM).expect("budget"),
        )
        .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
        .build()
        .expect("model");
    ChipAnalysis::new(built.spec.clone(), model, &ClosedFormTech::nominal_45nm())
        .expect("characterization")
}

/// A small Monte-Carlo configuration keeps the six-engine × three-thread
/// sweep fast while still exercising the chunked parallel evaluation.
fn spec_for(kind: EngineKind, threads: usize) -> EngineSpec {
    let spec = match kind {
        EngineKind::MonteCarlo => EngineSpec::MonteCarlo(MonteCarloConfig {
            n_chips: 300,
            ..Default::default()
        }),
        other => other.default_spec(),
    };
    spec.with_threads(Some(threads))
}

#[test]
fn batched_matches_scalar_loop_for_every_engine_at_any_thread_count() {
    let _width = width_guard();
    let analysis = c1_analysis();
    // Log-spaced sweep wide enough to hit P ~ 0 and P ~ 1 regions, with an
    // awkward length (not a multiple of any internal chunking).
    let ts: Vec<f64> = (0..37).map(|i| 10f64.powf(5.0 + i as f64 * 0.2)).collect();

    for kind in EngineKind::ALL {
        // Scalar reference at one thread.
        let mut reference = build_engine(&analysis, &spec_for(kind, 1)).expect("engine");
        let scalar: Vec<f64> = ts
            .iter()
            .map(|&t| reference.failure_probability(t).expect("scalar P(t)"))
            .collect();
        assert!(
            scalar.iter().any(|&p| p > 0.0),
            "{kind}: degenerate scalar curve"
        );

        for threads in [1usize, 2, 8] {
            let mut engine = build_engine(&analysis, &spec_for(kind, threads)).expect("engine");
            let batched = engine.failure_probabilities(&ts).expect("batched P(t)");
            assert_eq!(batched.len(), ts.len(), "{kind}: wrong batch length");
            for (i, (&a, &b)) in scalar.iter().zip(&batched).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "{kind}: P(t[{i}]) differs at {threads} threads: scalar {a:e} vs batched {b:e}"
                );
            }
        }
    }
}

/// Degenerate sweeps must behave: empty input, a single point, and
/// repeated identical points.
#[test]
fn batched_handles_degenerate_sweeps() {
    let _width = width_guard();
    let analysis = c1_analysis();
    for kind in EngineKind::ALL {
        let mut engine = build_engine(&analysis, &spec_for(kind, 2)).expect("engine");
        assert!(
            engine.failure_probabilities(&[]).expect("empty").is_empty(),
            "{kind}: empty sweep"
        );
        let single = engine.failure_probabilities(&[1e9]).expect("single");
        let scalar = engine.failure_probability(1e9).expect("scalar");
        assert_eq!(single.len(), 1);
        assert!(
            single[0].to_bits() == scalar.to_bits(),
            "{kind}: single-point batch differs from scalar"
        );
        let repeated = engine.failure_probabilities(&[1e9; 5]).expect("repeated");
        assert!(
            repeated.iter().all(|p| p.to_bits() == scalar.to_bits()),
            "{kind}: repeated points differ"
        );
    }
}

/// The `st_MC` joint-PDF construction fills its sample chunks through
/// the SoA `uv_given_z_tile` kernel; every lane accumulates in the same
/// component order as the scalar fill, so the engine must be
/// **bit-identical** across lane widths {1, 4, 8} — including the ragged
/// tile tail an awkward sample count leaves in the final chunk.
#[test]
fn st_mc_chunk_fill_bit_identical_across_lane_widths() {
    let analysis = c1_analysis();
    let ts: Vec<f64> = (0..9).map(|i| 10f64.powf(7.0 + i as f64 * 0.5)).collect();
    // 1037 = 4 full 256-sample chunks + 13: the last chunk exercises one
    // full width-8 tile plus a 5-sample scalar tail (and a 1-sample tail
    // at width 4), on top of the 2-thread chunk partitioning.
    let config = StMcConfig {
        n_samples: 1037,
        threads: Some(2),
        ..StMcConfig::default()
    };
    let guard = ForcedWidth::new(LaneWidth::W1);
    let curve_at = |w: LaneWidth| -> Vec<f64> {
        guard.set(w);
        let mut engine = StMc::new(&analysis, config).expect("st_MC build");
        engine.failure_probabilities(&ts).expect("batched P(t)")
    };
    let p1 = curve_at(LaneWidth::W1);
    let p4 = curve_at(LaneWidth::W4);
    let p8 = curve_at(LaneWidth::W8);
    assert!(p1.iter().any(|&p| p > 1e-9), "degenerate st_MC curve");
    for (i, ((&a, &b), &c)) in p1.iter().zip(&p4).zip(&p8).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "w4 differs at t[{i}]: {a:e} vs {b:e}"
        );
        assert_eq!(
            a.to_bits(),
            c.to_bits(),
            "w8 differs at t[{i}]: {a:e} vs {c:e}"
        );
    }
}
