//! Integration tests asserting the paper's headline qualitative claims on
//! reduced-size workloads (these run in debug mode under
//! `cargo test --workspace`, so sizes are kept moderate; the full-size
//! reproductions live in the `statobd-bench` binaries).

use statobd::core::{params, BlockSpec, BlodMoments, ChipSpec};
use statobd::device::{DegradationSimulator, PercolationConfig};
use statobd::num::dist::{ContinuousDistribution, Normal};
use statobd::num::hist::{Histogram1d, Histogram2d};
use statobd::num::rng::NormalSampler;
use statobd::num::stats::{ks_distance, mean, mutual_information, r_squared, sample_variance};
use statobd::variation::{
    CorrelationKernel, FieldSampler, GridSpec, ThicknessModel, ThicknessModelBuilder,
    VarianceBudget,
};
use statobd_num::rng::Xoshiro256pp;

fn model(side: usize) -> ThicknessModel {
    ThicknessModelBuilder::new()
        .grid(GridSpec::square_unit(side).unwrap())
        .nominal(params::NOMINAL_THICKNESS_NM)
        .budget(VarianceBudget::itrs_2008(params::NOMINAL_THICKNESS_NM).unwrap())
        .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
        .build()
        .unwrap()
}

#[test]
fn fig4_blod_histogram_is_gaussian() {
    // Paper Fig. 4: BLOD histograms fit a Gaussian with R² > 99 %.
    let m = model(10);
    let mut sampler = FieldSampler::new(&m);
    let mut rng = Xoshiro256pp::seed_from_u64(4);
    let die = sampler.sample_die(&mut rng);
    for n_devices in [5_000usize, 20_000] {
        let xs = sampler.sample_devices(&mut rng, &die, 55, n_devices);
        let hist = Histogram1d::from_data(&xs, 30).unwrap();
        let fit = Normal::new(mean(&xs), sample_variance(&xs).sqrt()).unwrap();
        let density = hist.density();
        let modeled: Vec<f64> = (0..hist.bins())
            .map(|i| fit.pdf(hist.bin_center(i)))
            .collect();
        let r2 = r_squared(&density, &modeled).unwrap();
        assert!(r2 > 0.97, "R² = {r2:.4} for {n_devices} devices");
    }
}

#[test]
fn fig7_u_v_dependence_is_weak() {
    // Paper Fig. 6/7: the joint PDF of (u, v) is close to the product of
    // marginals — small mutual information, small normalized error.
    let m = model(10);
    let weights: Vec<(usize, f64)> = (0..10).map(|i| (30 + i, 0.1)).collect();
    let block = BlockSpec::new("b", 10_000.0, 10_000, 350.0, 1.2, weights).unwrap();
    let moments = BlodMoments::characterize(&m, &block).expect("BLOD characterization");

    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let mut normal = NormalSampler::new();
    let mut z = vec![0.0; m.n_components()];
    let n = 60_000;
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            normal.fill(&mut rng, &mut z);
            moments.uv_given_z(&z)
        })
        .collect();
    let (ulo, uhi) = pairs
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(u, _)| {
            (lo.min(u), hi.max(u))
        });
    let (vlo, vhi) = pairs
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &(_, v)| {
            (lo.min(v), hi.max(v))
        });
    let mut hist = Histogram2d::new(
        (ulo, uhi + 1e-9 * (uhi - ulo).abs(), 20),
        (vlo, vhi + 1e-9 * (vhi - vlo).abs(), 20),
    )
    .unwrap();
    for &(u, v) in &pairs {
        hist.add(u, v);
    }
    let mi = mutual_information(&hist);
    // With 20x20 bins and 60k samples the estimator bias alone is
    // ~bins²/(2n) ≈ 0.003; the paper quotes 0.003 for the signal. Assert
    // the combined value stays small.
    assert!(mi < 0.02, "mutual information {mi:.4}");

    // Normalized error between joint and product of marginals.
    let joint = hist.joint_probabilities();
    let mu = hist.marginal_x();
    let mv = hist.marginal_y();
    let peak = joint.iter().cloned().fold(0.0, f64::max);
    let mut max_err = 0.0f64;
    for i in 0..20 {
        for j in 0..20 {
            max_err = max_err.max((joint[i * 20 + j] - mu[i] * mv[j]).abs() / peak);
        }
    }
    assert!(max_err < 0.12, "max normalized error {max_err:.3}");
}

#[test]
fn fig8_chi2_approximation_tracks_quadratic_form() {
    // Paper Fig. 8: the χ² two-moment fit tracks the CDF of the quadratic
    // normal form.
    let m = model(10);
    let weights: Vec<(usize, f64)> = (0..20).map(|i| (i * 5, 0.05)).collect();
    let block = BlockSpec::new("b", 10_000.0, 10_000, 350.0, 1.2, weights).unwrap();
    let moments = BlodMoments::characterize(&m, &block).expect("BLOD characterization");
    let vd = moments.v_dist();

    let mut rng = Xoshiro256pp::seed_from_u64(8);
    let mut normal = NormalSampler::new();
    let mut z = vec![0.0; m.n_components()];
    let mut samples: Vec<f64> = (0..20_000)
        .map(|_| {
            normal.fill(&mut rng, &mut z);
            moments.uv_given_z(&z).1
        })
        .collect();
    let ks = ks_distance(&mut samples, |v| vd.cdf(v)).unwrap();
    assert!(ks < 0.08, "KS distance {ks:.4}");
}

#[test]
fn fig3_degradation_shows_sbd_then_hbd() {
    // Paper Fig. 3: leakage rises monotonically, jumps 10-20x at SBD,
    // reaches HBD later.
    let sim = DegradationSimulator::new(PercolationConfig::default()).unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(3);
    for _ in 0..5 {
        let trace = sim.simulate(&mut rng, 1.0, 12).unwrap();
        assert!(trace.t_sbd_s < trace.t_hbd_s);
        for w in trace.leakage_a.windows(2) {
            assert!(w[1] >= w[0] - 1e-18);
        }
    }
}

#[test]
fn blod_dimensionality_reduction_matches_definitions() {
    // The core projection claim: millions of per-device random variables
    // reduce to two numbers per block whose distributions match sampling.
    let m = model(8);
    let block = BlockSpec::new(
        "b",
        5_000.0,
        5_000,
        350.0,
        1.2,
        vec![(0, 0.5), (9, 0.3), (18, 0.2)],
    )
    .unwrap();
    let moments = BlodMoments::characterize(&m, &block).expect("BLOD characterization");
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    let mut sampler = FieldSampler::new(&m);
    let mut u_err_worst = 0.0f64;
    for _ in 0..20 {
        let die = sampler.sample_die(&mut rng);
        // Devices drawn per grid with the block weights: sample mean must
        // approach u(z) as m grows.
        let mut acc = 0.0;
        let mut count = 0;
        for &(g, w) in block.grid_weights() {
            let n = (w * 6000.0) as usize;
            let xs = sampler.sample_devices(&mut rng, &die, g, n);
            acc += xs.iter().sum::<f64>();
            count += n;
        }
        let sample_mean = acc / count as f64;
        let (u, _v) = moments.uv_given_z(&die.z);
        u_err_worst = u_err_worst.max((sample_mean - u).abs());
    }
    // Sampling noise of the mean is σ_ind/√m ≈ 2e-4.
    assert!(u_err_worst < 1.5e-3, "worst u error {u_err_worst:.2e}");
}

#[test]
fn chip_spec_serialization_round_trips() {
    let mut spec = ChipSpec::new();
    spec.add_block(BlockSpec::new("core", 1000.0, 1000, 360.0, 1.2, vec![(0, 1.0)]).unwrap())
        .unwrap();
    let json = statobd::num::json::to_string_pretty(&spec);
    let back: ChipSpec = statobd::num::json::from_str(&json).unwrap();
    assert_eq!(spec, back);
}
