//! Cross-engine consistency: the analytic engines and the Monte-Carlo
//! reference must agree on a small design, and the parallel Monte-Carlo
//! fan-out must be bit-identical at any thread count.

use statobd::circuits::{build_design, Benchmark, DesignConfig};
use statobd::core::{
    build_engine, solve_lifetime, ChipAnalysis, EngineKind, EngineSpec, MonteCarloConfig,
};
use statobd::device::ClosedFormTech;
use statobd::variation::{CorrelationKernel, ThicknessModelBuilder, VarianceBudget};

fn c1_analysis() -> ChipAnalysis {
    let built = build_design(
        Benchmark::C1,
        &DesignConfig {
            correlation_grid_side: 8,
            ..DesignConfig::default()
        },
    )
    .expect("design");
    let model = ThicknessModelBuilder::new()
        .grid(built.grid)
        .nominal(statobd::core::params::NOMINAL_THICKNESS_NM)
        .budget(
            VarianceBudget::itrs_2008(statobd::core::params::NOMINAL_THICKNESS_NM).expect("budget"),
        )
        .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
        .build()
        .expect("model");
    ChipAnalysis::new(built.spec.clone(), model, &ClosedFormTech::nominal_45nm())
        .expect("characterization")
}

/// The paper's analytic engines and the per-device Monte-Carlo reference
/// must produce lifetimes within tolerance of each other on C1.
#[test]
fn st_fast_st_closed_and_monte_carlo_agree_on_c1() {
    let analysis = c1_analysis();
    let bracket = (1e5, 1e13);
    let target = 1e-4;

    let solve = |spec: &EngineSpec| {
        let mut engine = build_engine(&analysis, spec).expect("engine");
        solve_lifetime(engine.as_mut(), target, bracket).expect("lifetime")
    };

    let t_fast = solve(&EngineKind::StFast.default_spec());
    let t_closed = solve(&EngineKind::StClosed.default_spec());
    let t_mc = solve(&EngineSpec::MonteCarlo(MonteCarloConfig {
        n_chips: 2000,
        ..Default::default()
    }));

    // The two analytic evaluations of the same model agree tightly.
    let closed_err = ((t_closed - t_fast) / t_fast).abs();
    assert!(
        closed_err < 0.05,
        "st_closed vs st_fast: {t_closed:e} vs {t_fast:e} ({:.1} %)",
        100.0 * closed_err
    );

    // The Monte-Carlo reference carries sampling noise in the thickness
    // draws; the paper reports single-digit-percent errors for st_fast.
    let mc_err = ((t_fast - t_mc) / t_mc).abs();
    assert!(
        mc_err < 0.15,
        "st_fast vs MC: {t_fast:e} vs {t_mc:e} ({:.1} %)",
        100.0 * mc_err
    );
}

/// The scoped-thread Monte-Carlo fan-out uses per-chip counter-based RNG
/// streams and fixed chunk boundaries, so the result must be bit-identical
/// no matter how many worker threads run it.
#[test]
fn monte_carlo_is_bit_identical_across_thread_counts() {
    let analysis = c1_analysis();
    let times: Vec<f64> = (0..8).map(|i| 10f64.powf(6.0 + i as f64 * 0.7)).collect();

    let curve = |threads: usize| -> Vec<f64> {
        let spec = EngineSpec::MonteCarlo(MonteCarloConfig {
            n_chips: 400,
            threads: Some(threads),
            ..Default::default()
        });
        let mut engine = build_engine(&analysis, &spec).expect("engine");
        times
            .iter()
            .map(|&t| engine.failure_probability(t).expect("P(t)"))
            .collect()
    };

    let serial = curve(1);
    assert!(serial.iter().any(|&p| p > 0.0), "degenerate P(t) curve");
    for threads in [2, 8] {
        let parallel = curve(threads);
        for (i, (&a, &b)) in serial.iter().zip(&parallel).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "P(t[{i}]) differs at {threads} threads: {a:e} vs {b:e}"
            );
        }
    }
}
