//! Cross-engine consistency: the analytic engines and the Monte-Carlo
//! reference must agree on a small design, the parallel Monte-Carlo
//! fan-out must be bit-identical at any thread count, and the
//! redundancy-aware composition must hold across every engine — the
//! log-space Poisson-binomial against brute-force subset enumeration,
//! and spare-less groups bit-identical to the weakest-link default.

use statobd::circuits::{build_design, Benchmark, DesignConfig};
use statobd::core::{
    build_engine, solve_lifetime, ChipAnalysis, Composition, EngineKind, EngineSpec,
    MonteCarloConfig, RedundancyGroup, StFast,
};
use statobd::device::ClosedFormTech;
use statobd::variation::{CorrelationKernel, ThicknessModelBuilder, VarianceBudget};

fn bench_analysis(benchmark: Benchmark) -> ChipAnalysis {
    let built = build_design(
        benchmark,
        &DesignConfig {
            correlation_grid_side: 8,
            ..DesignConfig::default()
        },
    )
    .expect("design");
    let model = ThicknessModelBuilder::new()
        .grid(built.grid)
        .nominal(statobd::core::params::NOMINAL_THICKNESS_NM)
        .budget(
            VarianceBudget::itrs_2008(statobd::core::params::NOMINAL_THICKNESS_NM).expect("budget"),
        )
        .kernel(CorrelationKernel::Exponential { rel_distance: 0.5 })
        .build()
        .expect("model");
    ChipAnalysis::new(built.spec.clone(), model, &ClosedFormTech::nominal_45nm())
        .expect("characterization")
}

fn c1_analysis() -> ChipAnalysis {
    bench_analysis(Benchmark::C1)
}

/// The paper's analytic engines and the per-device Monte-Carlo reference
/// must produce lifetimes within tolerance of each other on C1.
#[test]
fn st_fast_st_closed_and_monte_carlo_agree_on_c1() {
    let analysis = c1_analysis();
    let bracket = (1e5, 1e13);
    let target = 1e-4;

    let solve = |spec: &EngineSpec| {
        let mut engine = build_engine(&analysis, spec).expect("engine");
        solve_lifetime(engine.as_mut(), target, bracket).expect("lifetime")
    };

    let t_fast = solve(&EngineKind::StFast.default_spec());
    let t_closed = solve(&EngineKind::StClosed.default_spec());
    let t_mc = solve(&EngineSpec::MonteCarlo(MonteCarloConfig {
        n_chips: 2000,
        ..Default::default()
    }));

    // The two analytic evaluations of the same model agree tightly.
    let closed_err = ((t_closed - t_fast) / t_fast).abs();
    assert!(
        closed_err < 0.05,
        "st_closed vs st_fast: {t_closed:e} vs {t_fast:e} ({:.1} %)",
        100.0 * closed_err
    );

    // The Monte-Carlo reference carries sampling noise in the thickness
    // draws; the paper reports single-digit-percent errors for st_fast.
    let mc_err = ((t_fast - t_mc) / t_mc).abs();
    assert!(
        mc_err < 0.15,
        "st_fast vs MC: {t_fast:e} vs {t_mc:e} ({:.1} %)",
        100.0 * mc_err
    );
}

/// The scoped-thread Monte-Carlo fan-out uses per-chip counter-based RNG
/// streams and fixed chunk boundaries, so the result must be bit-identical
/// no matter how many worker threads run it.
#[test]
fn monte_carlo_is_bit_identical_across_thread_counts() {
    let analysis = c1_analysis();
    let times: Vec<f64> = (0..8).map(|i| 10f64.powf(6.0 + i as f64 * 0.7)).collect();

    let curve = |threads: usize| -> Vec<f64> {
        let spec = EngineSpec::MonteCarlo(MonteCarloConfig {
            n_chips: 400,
            threads: Some(threads),
            ..Default::default()
        });
        let mut engine = build_engine(&analysis, &spec).expect("engine");
        times
            .iter()
            .map(|&t| engine.failure_probability(t).expect("P(t)"))
            .collect()
    };

    let serial = curve(1);
    assert!(serial.iter().any(|&p| p > 0.0), "degenerate P(t) curve");
    for threads in [2, 8] {
        let parallel = curve(threads);
        for (i, (&a, &b)) in serial.iter().zip(&parallel).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "P(t[{i}]) differs at {threads} threads: {a:e} vs {b:e}"
            );
        }
    }
}

/// Brute-force k-out-of-n reference: enumerate every subset with more
/// failures than the spare budget and sum that failure mass directly —
/// summing the *failure* side keeps the deep tail representable (the
/// survival side would round to 1.0 and cancel to zero).
fn brute_force_group_failure(ps: &[f64], spares: usize) -> f64 {
    let n = ps.len();
    assert!(n <= 20, "subset enumeration only for small groups");
    let mut fail = 0.0;
    for mask in 0u32..(1u32 << n) {
        if (mask.count_ones() as usize) <= spares {
            continue;
        }
        let mut prob = 1.0;
        for (j, &p) in ps.iter().enumerate() {
            prob *= if mask & (1 << j) != 0 { p } else { 1.0 - p };
        }
        fail += prob;
    }
    fail
}

/// Chip failure across independent groups, composed on log-survival so a
/// tiny per-group tail is not lost to `1 − (1 − ε)` rounding.
fn brute_force_chip_failure(ps: &[f64], groups: &[RedundancyGroup]) -> f64 {
    let ln_survival: f64 = groups
        .iter()
        .map(|group| {
            let group_ps: Vec<f64> = group.blocks.iter().map(|&j| ps[j]).collect();
            (-brute_force_group_failure(&group_ps, group.spares)).ln_1p()
        })
        .sum();
    -ln_survival.exp_m1()
}

/// The log-space Poisson-binomial DP behind [`Composition::compose`]
/// must match brute-force subset enumeration to ≤ 1e-9 relative on
/// per-block probabilities taken from the C1 and C3 benchmarks — over
/// uniform spare budgets and a split two-group layout, across ages
/// spanning deep-tail to near-certain failure regimes.
#[test]
fn analytic_composition_matches_brute_force_on_c1_and_c3() {
    let mut worst: f64 = 0.0;
    for benchmark in [Benchmark::C1, Benchmark::C3] {
        let analysis = bench_analysis(benchmark);
        let n = analysis.n_blocks();
        let engine = StFast::new(&analysis, Default::default());
        for t_s in [3e7, 1e9, 3e10, 1e12] {
            let ps: Vec<f64> = (0..n)
                .map(|j| engine.block_failure_probability(j, t_s).expect("block P"))
                .collect();
            let mut configs = vec![
                Composition::uniform_spares(n, 1),
                Composition::uniform_spares(n, 2),
            ];
            // A split layout: the first half tolerates one failure, the
            // rest is a plain weakest-link group.
            configs.push(Composition::Groups(vec![
                RedundancyGroup::new((0..n / 2).collect(), 1),
                RedundancyGroup::new((n / 2..n).collect(), 0),
            ]));
            for comp in &configs {
                comp.validate(n).expect("valid grouping");
                let analytic = comp.compose(&ps);
                let brute = match comp {
                    Composition::WeakestLink => unreachable!(),
                    Composition::Groups(groups) => brute_force_chip_failure(&ps, groups),
                };
                let rel = ((analytic - brute) / brute.max(f64::MIN_POSITIVE)).abs();
                assert!(
                    rel <= 1e-9,
                    "{benchmark:?} t={t_s:e} {comp:?}: analytic {analytic:e} \
                     vs brute-force {brute:e} (rel {rel:.3e})"
                );
                worst = worst.max(rel);
            }
        }
    }
    eprintln!("analytic vs brute-force composition: worst rel {worst:.3e}");
}

/// A single spare-less group spanning every block is the weakest-link
/// composition written as a k-out-of-n degenerate case. The accumulator
/// engines produce bit-identical failure probabilities for the two
/// spellings (the spare-less DP finalizes through the same log-survival
/// sum); GuardBand and MonteCarlo take algebraically equal but
/// differently ordered routes when grouped — the whole-chip worst-case
/// closed form vs per-block corners, the hazard sum vs the per-chip
/// linear-space spare simulation — so they get the 1e-9 relative gate
/// (the linear-space pass carries an ulp of *absolute* rounding, which
/// at deep-tail probabilities is relative error well above ulp level).
#[test]
fn spareless_group_is_bit_identical_to_weakest_link_in_every_engine() {
    let weakest = c1_analysis();
    let n = weakest.n_blocks();
    let grouped = weakest
        .clone()
        .with_composition(Composition::Groups(vec![RedundancyGroup::new(
            (0..n).collect(),
            0,
        )]))
        .expect("spare-less group");

    let times: Vec<f64> = (0..6).map(|i| 10f64.powf(7.0 + i as f64)).collect();
    for kind in EngineKind::ALL {
        let spec = match kind {
            EngineKind::MonteCarlo => EngineSpec::MonteCarlo(MonteCarloConfig {
                n_chips: 200,
                ..Default::default()
            }),
            other => other.default_spec(),
        };
        let mut wl = build_engine(&weakest, &spec).expect("engine");
        let mut gr = build_engine(&grouped, &spec).expect("engine");
        let exact = !matches!(kind, EngineKind::GuardBand | EngineKind::MonteCarlo);
        for &t in &times {
            let a = wl.failure_probability(t).expect("P(t)");
            let b = gr.failure_probability(t).expect("P(t)");
            if exact {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "{kind:?} at t={t:e}: weakest-link {a:e} vs spare-less group {b:e}"
                );
            } else {
                let rel = ((a - b) / a.max(f64::MIN_POSITIVE)).abs();
                assert!(
                    rel <= 1e-9,
                    "{kind:?} at t={t:e}: weakest-link {a:e} vs spare-less group {b:e} \
                     (rel {rel:.3e})"
                );
            }
        }
    }
}

/// With one spare over C1's blocks the engines must still agree with
/// each other: the analytic engines tightly, the per-device Monte-Carlo
/// reference (which simulates the spares directly on every sampled
/// chip) within its sampling noise — and redundancy must extend the
/// solved lifetime relative to weakest-link.
#[test]
fn grouped_engines_agree_on_c1_with_one_spare() {
    let weakest = c1_analysis();
    let n = weakest.n_blocks();
    let grouped = weakest
        .clone()
        .with_composition(Composition::uniform_spares(n, 1))
        .expect("grouped analysis");
    let bracket = (1e5, 1e13);
    let target = 1e-4;

    let solve = |analysis: &ChipAnalysis, spec: &EngineSpec| {
        let mut engine = build_engine(analysis, spec).expect("engine");
        solve_lifetime(engine.as_mut(), target, bracket).expect("lifetime")
    };

    let t_fast = solve(&grouped, &EngineKind::StFast.default_spec());
    let t_closed = solve(&grouped, &EngineKind::StClosed.default_spec());
    let t_mc = solve(
        &grouped,
        &EngineSpec::MonteCarlo(MonteCarloConfig {
            n_chips: 2000,
            ..Default::default()
        }),
    );
    let t_weakest = solve(&weakest, &EngineKind::StFast.default_spec());

    assert!(
        t_fast > t_weakest,
        "one spare must extend the lifetime: {t_fast:e} vs weakest-link {t_weakest:e}"
    );
    let closed_err = ((t_closed - t_fast) / t_fast).abs();
    assert!(
        closed_err < 0.05,
        "grouped st_closed vs st_fast: {t_closed:e} vs {t_fast:e} ({:.1} %)",
        100.0 * closed_err
    );
    let mc_err = ((t_fast - t_mc) / t_mc).abs();
    assert!(
        mc_err < 0.15,
        "grouped st_fast vs MC: {t_fast:e} vs {t_mc:e} ({:.1} %)",
        100.0 * mc_err
    );
    eprintln!(
        "grouped C1, 1 spare: st_fast {t_fast:.3e}s, st_closed {t_closed:.3e}s \
         ({:.2} %), MC {t_mc:.3e}s ({:.2} %), weakest-link {t_weakest:.3e}s",
        100.0 * closed_err,
        100.0 * mc_err
    );
}
