//! Cross-solver consistency of the thermal fast path: every linear-solver
//! tier (plain CG, Jacobi-PCG, IC(0)-PCG, MGCG) must produce the same
//! temperature field on the reference profiles, warm starting must change
//! the cost but not the fixed point, and the transient stepper must
//! amortize one operator build over all steps.

use statobd::thermal::{
    alpha_ev6_floorplan, alpha_ev6_power, many_core_floorplan, many_core_power, Floorplan,
    PowerModel, TemperatureMap, ThermalConfig, ThermalSolver, ThermalSolverKind,
};

const KINDS: [ThermalSolverKind; 4] = [
    ThermalSolverKind::PlainCg,
    ThermalSolverKind::JacobiPcg,
    ThermalSolverKind::Ic0Pcg,
    ThermalSolverKind::Mgcg,
];

fn solve_with(kind: ThermalSolverKind, fp: &Floorplan, pm: &PowerModel) -> TemperatureMap {
    let solver = ThermalSolver::new(ThermalConfig {
        solver: kind,
        ..ThermalConfig::default()
    });
    solver.solve(fp, pm).expect("solve")
}

/// Per-cell fields must agree to 1e-8 relative, block temperatures to
/// 1e-6 K — the contract that lets any tier feed the reliability model.
fn assert_fields_agree(reference: &TemperatureMap, other: &TemperatureMap, label: &str) {
    for (a, b) in other.temps().iter().zip(reference.temps()) {
        assert!(
            (a - b).abs() < 1e-8 * b.abs(),
            "{label}: cell {a} vs reference {b}"
        );
    }
}

fn assert_blocks_agree(fp: &Floorplan, reference: &TemperatureMap, other: &TemperatureMap) {
    for block in fp.blocks() {
        let r = reference.block_stats(block.rect());
        let o = other.block_stats(block.rect());
        assert!(
            (r.mean_k - o.mean_k).abs() < 1e-6 && (r.max_k - o.max_k).abs() < 1e-6,
            "block {}: mean {} vs {}, max {} vs {}",
            block.name(),
            o.mean_k,
            r.mean_k,
            o.max_k,
            r.max_k
        );
    }
}

#[test]
fn all_solver_tiers_agree_on_alpha_profile() {
    let fp = alpha_ev6_floorplan().unwrap();
    let pm = alpha_ev6_power().unwrap();
    let reference = solve_with(KINDS[0], &fp, &pm);
    for &kind in &KINDS[1..] {
        let map = solve_with(kind, &fp, &pm);
        assert_fields_agree(&reference, &map, kind.name());
        assert_blocks_agree(&fp, &reference, &map);
    }
}

#[test]
fn all_solver_tiers_agree_on_many_core_profile() {
    let fp = many_core_floorplan().unwrap();
    let pm = many_core_power(&[0, 3, 5, 10, 12, 15], 9.0).unwrap();
    let reference = solve_with(KINDS[0], &fp, &pm);
    for &kind in &KINDS[1..] {
        let map = solve_with(kind, &fp, &pm);
        assert_fields_agree(&reference, &map, kind.name());
        assert_blocks_agree(&fp, &reference, &map);
    }
}

#[test]
fn warm_start_reaches_same_fixed_point_with_fewer_cg_iterations() {
    let fp = alpha_ev6_floorplan().unwrap();
    let pm = alpha_ev6_power().unwrap();
    let base = ThermalConfig {
        solver: ThermalSolverKind::Ic0Pcg,
        ..ThermalConfig::default()
    };
    let warm = ThermalSolver::new(base)
        .solve(&fp, &pm)
        .expect("warm solve");
    let cold = ThermalSolver::new(ThermalConfig {
        warm_start: false,
        ..base
    })
    .solve(&fp, &pm)
    .expect("cold solve");
    assert_fields_agree(&cold, &warm, "warm vs cold");
    assert!(
        warm.total_cg_iterations() < cold.total_cg_iterations(),
        "warm {} vs cold {} total CG iterations",
        warm.total_cg_iterations(),
        cold.total_cg_iterations()
    );
    // The later fixed-point iterations should be nearly free when warm
    // started: strictly fewer CG iterations than the cold first solve.
    let first = warm.cg_iterations()[0];
    for &later in &warm.cg_iterations()[1..] {
        assert!(later < first, "iteration cost {later} vs first {first}");
    }
}

#[test]
fn auto_dispatch_reports_the_resolved_tier() {
    let fp = alpha_ev6_floorplan().unwrap();
    let pm = alpha_ev6_power().unwrap();
    let small = ThermalSolver::new(ThermalConfig {
        nx: 32,
        ny: 32,
        ..ThermalConfig::default()
    })
    .solve(&fp, &pm)
    .unwrap();
    assert_eq!(small.breakdown().solver, "ic0_pcg");
    let large = ThermalSolver::new(ThermalConfig::default())
        .solve(&fp, &pm)
        .unwrap();
    assert_eq!(large.breakdown().solver, "mgcg");
}

#[test]
fn transient_amortizes_one_operator_over_all_steps() {
    let fp = alpha_ev6_floorplan().unwrap();
    let pm = alpha_ev6_power().unwrap();
    let cfg = ThermalConfig {
        nx: 32,
        ny: 32,
        ..ThermalConfig::default()
    };
    let tau_v = cfg.r_package * cfg.c_volumetric * cfg.die_thickness;
    let result = ThermalSolver::new(cfg)
        .solve_transient(&fp, &pm, cfg.ambient_k, 2.0 * tau_v, 4)
        .expect("transient");
    let s = &result.stats;
    assert_eq!(s.operator_assemblies, 1);
    assert_eq!(s.preconditioner_builds, 1);
    assert!(s.steps >= 4);
    // Warm-started implicit steps must stay cheap: far below what
    // re-assembling or cold-starting every step would cost.
    assert!(
        s.total_cg_iterations < s.steps * 40,
        "{} CG iterations over {} steps",
        s.total_cg_iterations,
        s.steps
    );
}
